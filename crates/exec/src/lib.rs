#![warn(missing_docs)]

//! # micco-exec
//!
//! A multi-threaded CPU execution engine that *actually runs* a scheduled
//! contraction stream with the real `micco-tensor` kernels — one worker
//! thread per simulated device, a shared tensor store behind a
//! `parking_lot::RwLock`, and `crossbeam` scoped threads with per-stage
//! barriers mirroring the stage semantics of the simulator.
//!
//! The simulator (`micco-gpusim`) answers "how long would this placement
//! take on the modelled hardware"; this crate answers "does the placement
//! actually compute the right thing, in parallel, on this host". Its
//! headline guarantee, enforced by tests: **the computed correlation
//! checksum is bit-identical for every scheduler, every placement, and
//! every worker count** — scheduling decides time, never values.

pub mod engine;
pub mod store;

pub use engine::{
    execute_assignments, execute_plan, ExecError, ExecOptions, ExecOutcome, TensorShape,
};
pub use store::TensorStore;

// Re-exported so chaos-testing callers don't need a direct gpusim
// dependency just to describe the faults they inject.
pub use micco_gpusim::{FaultKind, FaultPlan};
// Re-exported so callers can wire a telemetry sink without a direct
// micco-obs dependency.
pub use micco_obs::{Recorder, TraceSink};
