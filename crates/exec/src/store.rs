//! Shared tensor store: concurrent interning of leaf tensors and
//! registration of computed intermediates.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use micco_tensor::{BatchedMatrix, Complex64};
use micco_workload::TensorId;

/// Deterministic leaf generator (splitmix64 keyed by tensor id and seed).
fn leaf(id: TensorId, batch: usize, dim: usize, seed: u64) -> BatchedMatrix {
    let mut state = id.0 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    BatchedMatrix::from_fn(batch, dim, |_, _, _| {
        let re = (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        let im = (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        Complex64::new(re, im)
    })
}

/// Concurrent tensor store. Leaves are generated on first touch (double-
/// checked under the write lock so concurrent first touches agree);
/// intermediates are inserted by the worker that computed them.
pub struct TensorStore {
    batch: usize,
    dim: usize,
    seed: u64,
    map: RwLock<HashMap<TensorId, Arc<BatchedMatrix>>>,
}

impl TensorStore {
    /// Store for uniform-shape streams.
    pub fn new(batch: usize, dim: usize, seed: u64) -> Self {
        TensorStore {
            batch,
            dim,
            seed,
            map: RwLock::new(HashMap::new()),
        }
    }

    /// Fetch a tensor, generating the deterministic leaf if absent.
    pub fn fetch(&self, id: TensorId) -> Arc<BatchedMatrix> {
        if let Some(t) = self.map.read().get(&id) {
            return Arc::clone(t);
        }
        let mut w = self.map.write();
        // double-checked: another worker may have generated it meanwhile
        Arc::clone(
            w.entry(id)
                .or_insert_with(|| Arc::new(leaf(id, self.batch, self.dim, self.seed))),
        )
    }

    /// Register a computed intermediate. Re-registration must be identical
    /// (checked in debug builds) — it can happen when two schedulers' task
    /// sets overlap.
    pub fn insert(&self, id: TensorId, value: Arc<BatchedMatrix>) {
        let mut w = self.map.write();
        if let Some(prev) = w.get(&id) {
            debug_assert_eq!(**prev, *value, "conflicting values for {id:?}");
            return;
        }
        w.insert(id, value);
    }

    /// Whether `id` is currently materialised.
    pub fn contains(&self, id: TensorId) -> bool {
        self.map.read().contains_key(&id)
    }

    /// Number of materialised tensors.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when nothing is materialised.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_are_deterministic_and_cached() {
        let s = TensorStore::new(2, 4, 7);
        let a = s.fetch(TensorId(1));
        let b = s.fetch(TensorId(1));
        assert!(Arc::ptr_eq(&a, &b), "second fetch must hit the cache");
        let other = TensorStore::new(2, 4, 7);
        assert_eq!(*a, *other.fetch(TensorId(1)), "same (id, seed) ⇒ same leaf");
        assert_ne!(*a, *other.fetch(TensorId(2)));
        let reseeded = TensorStore::new(2, 4, 8);
        assert_ne!(*a, *reseeded.fetch(TensorId(1)));
    }

    #[test]
    fn insert_then_fetch() {
        let s = TensorStore::new(2, 4, 0);
        let m = Arc::new(micco_tensor::BatchedMatrix::identity(2, 4));
        s.insert(TensorId(50), Arc::clone(&m));
        assert!(s.contains(TensorId(50)));
        assert!(Arc::ptr_eq(&s.fetch(TensorId(50)), &m));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn concurrent_first_touch_agrees() {
        let s = std::sync::Arc::new(TensorStore::new(2, 8, 3));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || s.fetch(TensorId(42)).frobenius_norm())
            })
            .collect();
        let norms: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(norms.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(s.len(), 1);
    }
}
