//! The stage-parallel execution engine.

use std::sync::Arc;
use std::time::Instant;

use micco_core::Assignment;
use micco_tensor::Complex64;
use micco_workload::TensorPairStream;

use crate::store::TensorStore;

/// Shape of the tensors in a uniform stream (the synthetic generator and
/// the per-correlator pipelines both produce uniform shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorShape {
    /// Batch count.
    pub batch: usize,
    /// Mode length.
    pub dim: usize,
}

/// Result of executing a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Wall-clock seconds of the parallel execution.
    pub wall_secs: f64,
    /// Kernels computed per worker.
    pub per_worker_tasks: Vec<usize>,
    /// Order-independent checksum: per-task output traces summed in task
    /// order (bit-identical across schedulers and worker counts).
    pub checksum: Complex64,
    /// Total kernels computed.
    pub kernels: usize,
}

/// Execute `stream` with real kernels on `workers` threads, following the
/// per-task device `assignments` (one per task, in stream task order —
/// exactly what [`micco_core::ScheduleReport::assignments`] provides).
/// Devices map to worker threads; stages are barriers, as on the simulated
/// machine.
///
/// # Examples
///
/// ```
/// use micco_core::{run_schedule, MiccoScheduler, ReuseBounds};
/// use micco_exec::{execute_stream, TensorShape};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let shape = TensorShape { batch: 2, dim: 8 };
/// let stream = WorkloadSpec::new(4, shape.dim).with_batch(shape.batch).with_vectors(2).generate();
/// let report = run_schedule(
///     &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
///     &stream,
///     &MachineConfig::mi100_like(2),
/// ).unwrap();
/// let out = execute_stream(&stream, &report.assignments, 2, shape, 7);
/// assert_eq!(out.kernels, stream.total_tasks());
/// assert!(out.checksum.is_finite());
/// ```
///
/// # Panics
///
/// Panics if `assignments` does not cover every task of `stream`, or if an
/// assignment names a device ≥ `workers`.
pub fn execute_stream(
    stream: &TensorPairStream,
    assignments: &[Assignment],
    workers: usize,
    shape: TensorShape,
    seed: u64,
) -> ExecOutcome {
    assert!(workers > 0, "need at least one worker");
    assert_eq!(
        assignments.len(),
        stream.total_tasks(),
        "assignments must cover every task"
    );
    let store = TensorStore::new(shape.batch, shape.dim, seed);
    let t0 = Instant::now();
    let mut per_worker_tasks = vec![0usize; workers];
    // per-task traces, collected in global task order so the final
    // checksum reduction is order-fixed regardless of thread interleaving
    let mut traces: Vec<Complex64> = vec![Complex64::ZERO; stream.total_tasks()];
    let mut offset = 0usize;

    for vector in &stream.vectors {
        let stage_assign = &assignments[offset..offset + vector.len()];
        // partition this stage's task indices per worker
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (i, a) in stage_assign.iter().enumerate() {
            assert!(a.gpu.0 < workers, "assignment to device {} ≥ {workers}", a.gpu.0);
            debug_assert_eq!(a.task, vector.tasks[i].id, "assignment order must match stream");
            buckets[a.gpu.0].push(i);
        }
        for (w, b) in buckets.iter().enumerate() {
            per_worker_tasks[w] += b.len();
        }
        // one scoped thread per non-empty bucket; the scope join is the
        // stage barrier
        let trace_slices = split_by_buckets(&mut traces[offset..offset + vector.len()], &buckets);
        crossbeam::thread::scope(|scope| {
            for (bucket, slots) in buckets.iter().zip(trace_slices) {
                if bucket.is_empty() {
                    continue;
                }
                let store = &store;
                scope.spawn(move |_| {
                    for (&i, slot) in bucket.iter().zip(slots) {
                        let task = &vector.tasks[i];
                        let a = store.fetch(task.a.id);
                        let b = store.fetch(task.b.id);
                        let out = a.matmul(&b).expect("uniform shapes");
                        // sequential per-element trace: no cross-thread
                        // reduction ⇒ bitwise determinism
                        let mut tr = Complex64::ZERO;
                        for bi in 0..out.batch() {
                            tr += out.element(bi).trace();
                        }
                        *slot = tr;
                        store.insert(task.out.id, Arc::new(out));
                    }
                });
            }
        })
        .expect("worker panicked");
        offset += vector.len();
    }

    let checksum = traces.iter().copied().sum();
    ExecOutcome {
        wall_secs: t0.elapsed().as_secs_f64(),
        per_worker_tasks,
        checksum,
        kernels: stream.total_tasks(),
    }
}

/// Split `slice` into per-bucket mutable views: bucket `w` receives one
/// `&mut Complex64` per entry, in order. Implemented with `split_first_mut`
/// walking the slice once per bucket ordering — buckets index disjoint
/// positions, so we hand out raw disjoint sub-borrows via sorting.
fn split_by_buckets<'a>(
    slice: &'a mut [Complex64],
    buckets: &[Vec<usize>],
) -> Vec<Vec<&'a mut Complex64>> {
    // Decorate every slot with its bucket, then walk the slice once,
    // routing each &mut to its bucket — safe disjoint splitting without
    // unsafe code.
    let mut owner: Vec<usize> = vec![usize::MAX; slice.len()];
    for (w, bucket) in buckets.iter().enumerate() {
        for &i in bucket {
            owner[i] = w;
        }
    }
    let mut out: Vec<Vec<&mut Complex64>> = (0..buckets.len()).map(|_| Vec::new()).collect();
    for (slot, &w) in slice.iter_mut().zip(&owner) {
        if w != usize::MAX {
            out[w].push(slot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use micco_core::{run_schedule, GrouteScheduler, MiccoScheduler, ReuseBounds, RoundRobinScheduler, Scheduler};
    use micco_gpusim::MachineConfig;
    use micco_workload::WorkloadSpec;

    const SHAPE: TensorShape = TensorShape { batch: 2, dim: 8 };

    fn stream() -> TensorPairStream {
        WorkloadSpec::new(12, SHAPE.dim)
            .with_batch(SHAPE.batch)
            .with_repeat_rate(0.6)
            .with_vectors(3)
            .with_seed(21)
            .generate()
    }

    fn assignments_for(s: &mut dyn Scheduler, stream: &TensorPairStream, gpus: usize) -> Vec<Assignment> {
        run_schedule(s, stream, &MachineConfig::mi100_like(gpus))
            .expect("fits")
            .assignments
    }

    #[test]
    fn executes_and_counts() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 4);
        let out = execute_stream(&stream, &assignments, 4, SHAPE, 5);
        assert_eq!(out.kernels, stream.total_tasks());
        assert_eq!(out.per_worker_tasks.iter().sum::<usize>(), stream.total_tasks());
        assert!(out.checksum.is_finite());
        assert!(out.wall_secs >= 0.0);
    }

    #[test]
    fn checksum_is_scheduler_invariant() {
        let stream = stream();
        let mut checksums = Vec::new();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(GrouteScheduler::new()),
            Box::new(RoundRobinScheduler::new()),
            Box::new(MiccoScheduler::new(ReuseBounds::new(0, 2, 0))),
            Box::new(MiccoScheduler::new(ReuseBounds::unbounded())),
        ];
        for s in schedulers.iter_mut() {
            let assignments = assignments_for(s.as_mut(), &stream, 4);
            checksums.push(execute_stream(&stream, &assignments, 4, SHAPE, 5).checksum);
        }
        for w in checksums.windows(2) {
            assert_eq!(w[0], w[1], "placement must never change the physics");
        }
    }

    #[test]
    fn checksum_is_worker_count_invariant() {
        let stream = stream();
        let mut reference = None;
        for gpus in [1usize, 2, 3, 8] {
            let assignments =
                assignments_for(&mut RoundRobinScheduler::new(), &stream, gpus);
            let out = execute_stream(&stream, &assignments, gpus, SHAPE, 5);
            if let Some(r) = reference {
                assert_eq!(out.checksum, r, "{gpus} workers changed the checksum");
            } else {
                reference = Some(out.checksum);
            }
        }
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let stream = stream();
        let assignments = assignments_for(&mut MiccoScheduler::naive(), &stream, 3);
        let a = execute_stream(&stream, &assignments, 3, SHAPE, 9).checksum;
        let b = execute_stream(&stream, &assignments, 3, SHAPE, 9).checksum;
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_checksum() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let a = execute_stream(&stream, &assignments, 2, SHAPE, 1).checksum;
        let b = execute_stream(&stream, &assignments, 2, SHAPE, 2).checksum;
        assert_ne!(a, b);
    }

    #[test]
    fn matches_single_threaded_reference() {
        // hand-rolled sequential reference over the same leaf generator
        let stream = WorkloadSpec::new(4, SHAPE.dim)
            .with_batch(SHAPE.batch)
            .with_repeat_rate(0.0)
            .with_vectors(1)
            .with_seed(2)
            .generate();
        let store = crate::store::TensorStore::new(SHAPE.batch, SHAPE.dim, 77);
        let mut expect = Complex64::ZERO;
        for t in &stream.vectors[0].tasks {
            let out = store.fetch(t.a.id).matmul(&store.fetch(t.b.id)).unwrap();
            // group per task exactly as the engine does — float addition is
            // not associative, and the test demands bit equality
            let mut tr = Complex64::ZERO;
            for bi in 0..out.batch() {
                tr += out.element(bi).trace();
            }
            expect += tr;
        }
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let got = execute_stream(&stream, &assignments, 2, SHAPE, 77).checksum;
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "cover every task")]
    fn short_assignments_panic() {
        let stream = stream();
        execute_stream(&stream, &[], 2, SHAPE, 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panic() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 1);
        execute_stream(&stream, &assignments, 0, SHAPE, 0);
    }
}
