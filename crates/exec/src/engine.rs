//! The stage-parallel execution engine.
//!
//! Two execution modes share the same checksum contract:
//!
//! - **static** (the default): each worker runs exactly the tasks its
//!   device was assigned, in order — a faithful replay of the schedule.
//! - **work stealing** ([`ExecOptions::steal`]): per-worker deques with
//!   *reuse-aware* intra-stage stealing — an idle worker may only take a
//!   victim's task when it already holds both operands (the tasks a
//!   device could run without extra transfers), mirroring the
//!   data-centric placement rule the schedulers optimise for.
//!
//! Either way the per-task outputs are identical, so the order-fixed
//! checksum reduction is bit-identical across modes, schedulers, and
//! worker counts.

use std::any::Any;
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use micco_core::{Assignment, PlanError, SchedulePlan};
use micco_gpusim::FaultPlan;
use micco_tensor::{Complex64, TensorError};
use micco_workload::{TensorId, TensorPairStream, Vector};

use crate::store::TensorStore;

/// Shape of the tensors in a uniform stream (the synthetic generator and
/// the per-correlator pipelines both produce uniform shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorShape {
    /// Batch count.
    pub batch: usize,
    /// Mode length.
    pub dim: usize,
}

/// Tuning knobs for [`execute_stream_opts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Reuse-aware intra-stage work stealing: idle workers take tasks from
    /// the back of other workers' queues, but only tasks whose operands
    /// they already hold (no extra transfers on the modelled device).
    pub steal: bool,
    /// Overlap operand staging with compute: a per-stage prefetch thread
    /// warms the tensor store with the stage's operands while workers
    /// crunch — the execution-engine analogue of the simulator's
    /// asynchronous copy engine.
    pub prefetch: bool,
    /// Maximum attempts per kernel under transient faults. `0` and `1`
    /// both mean "no retry": the first transient failure is final.
    pub max_attempts: u32,
    /// Base delay of the exponential backoff between retry attempts:
    /// attempt `n` waits `base_delay · 2^(n-1)`, capped at 100 ms.
    pub base_delay: Duration,
}

impl ExecOptions {
    /// Options with stealing enabled.
    pub fn with_steal(mut self) -> Self {
        self.steal = true;
        self
    }

    /// Options with operand prefetch enabled.
    pub fn with_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }

    /// Options with bounded-backoff retry: up to `max_attempts` attempts
    /// per kernel, sleeping `base_delay · 2^(attempt-1)` between attempts.
    pub fn retry(mut self, max_attempts: u32, base_delay: Duration) -> Self {
        self.max_attempts = max_attempts;
        self.base_delay = base_delay;
        self
    }
}

/// Why the execution engine refused to run a schedule.
///
/// These used to be `panic!`/`assert!` contract violations; they are now
/// typed errors so callers (the CLI in particular) can report them without
/// aborting the process.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// `workers == 0` — there is nobody to run the kernels.
    NoWorkers,
    /// The assignment slice does not cover the stream's tasks.
    AssignmentShortfall {
        /// Tasks in the stream.
        expected: usize,
        /// Assignments provided.
        got: usize,
    },
    /// An assignment names a device outside the worker pool.
    DeviceOutOfRange {
        /// Offending device index.
        gpu: usize,
        /// Worker-pool size.
        workers: usize,
    },
    /// A [`SchedulePlan`] failed validation against the stream.
    Plan(PlanError),
    /// A kernel rejected its operands — the stream fed it incompatible
    /// shapes.
    ShapeMismatch {
        /// Task whose contraction failed.
        task: u64,
        /// Left operand (batch, dim).
        lhs: (usize, usize),
        /// Right operand (batch, dim).
        rhs: (usize, usize),
    },
    /// A worker thread failed: it panicked, or a transient fault outlived
    /// the retry budget. A panic is caught at the join and reported here
    /// instead of aborting the process.
    WorkerFailed {
        /// Device index of the failed worker, when attributable.
        gpu: Option<usize>,
        /// Task being executed when the worker failed, when known.
        task: Option<u64>,
        /// Human-readable failure cause (panic payload or fault detail).
        cause: String,
    },
    /// Every worker was lost before `stage` — nobody left to drain it.
    AllWorkersLost {
        /// First stage with no surviving worker.
        stage: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoWorkers => write!(f, "need at least one worker"),
            ExecError::AssignmentShortfall { expected, got } => write!(
                f,
                "assignments must cover every task: stream has {expected}, got {got}"
            ),
            ExecError::DeviceOutOfRange { gpu, workers } => {
                write!(f, "assignment to device {gpu} ≥ {workers} workers")
            }
            ExecError::Plan(e) => write!(f, "invalid plan: {e}"),
            ExecError::ShapeMismatch { task, lhs, rhs } => write!(
                f,
                "task {task}: shape mismatch lhs (batch {}, dim {}) vs rhs (batch {}, dim {})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            ExecError::WorkerFailed { gpu, task, cause } => {
                write!(f, "worker")?;
                if let Some(g) = gpu {
                    write!(f, " {g}")?;
                }
                if let Some(t) = task {
                    write!(f, " (task {t})")?;
                }
                write!(f, " failed: {cause}")
            }
            ExecError::AllWorkersLost { stage } => {
                write!(f, "all workers lost before stage {stage}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::Plan(e)
    }
}

/// Result of executing a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Wall-clock seconds of the parallel execution.
    pub wall_secs: f64,
    /// Kernels *assigned* per worker by the schedule (the conformance
    /// contract against `ScheduleReport.assignments` — independent of
    /// stealing).
    pub per_worker_tasks: Vec<usize>,
    /// Kernels actually *executed* per worker. Equal to
    /// `per_worker_tasks` unless stealing moved work.
    pub per_worker_executed: Vec<usize>,
    /// Tasks that ran on a different worker than assigned.
    pub steals: usize,
    /// Order-independent checksum: per-task output traces summed in task
    /// order (bit-identical across schedulers, worker counts, and
    /// execution modes).
    pub checksum: Complex64,
    /// Total kernels computed.
    pub kernels: usize,
    /// Injected faults that fired during execution (kernel faults and
    /// transfer timeouts; device losses are counted in `lost_workers`).
    pub faults: u64,
    /// Retried attempts after transient faults.
    pub retries: u64,
    /// Workers that were lost — transiently or permanently — in at least
    /// one stage of the run.
    pub lost_workers: usize,
}

/// Execute `stream` with real kernels on `workers` threads, following the
/// per-task device `assignments` (one per task, in stream task order —
/// exactly what [`micco_core::ScheduleReport::assignments`] provides).
/// Devices map to worker threads; stages are barriers, as on the simulated
/// machine.
///
/// # Examples
///
/// ```
/// use micco_core::{run_schedule, MiccoScheduler, ReuseBounds};
/// use micco_exec::{execute_stream, TensorShape};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let shape = TensorShape { batch: 2, dim: 8 };
/// let stream = WorkloadSpec::new(4, shape.dim).with_batch(shape.batch).with_vectors(2).generate();
/// let report = run_schedule(
///     &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
///     &stream,
///     &MachineConfig::mi100_like(2),
/// ).unwrap();
/// let out = execute_stream(&stream, &report.assignments, 2, shape, 7).unwrap();
/// assert_eq!(out.kernels, stream.total_tasks());
/// assert!(out.checksum.is_finite());
/// ```
///
/// # Errors
///
/// Returns [`ExecError`] if `assignments` does not cover every task of
/// `stream`, if an assignment names a device ≥ `workers`, or if
/// `workers == 0`.
pub fn execute_stream(
    stream: &TensorPairStream,
    assignments: &[Assignment],
    workers: usize,
    shape: TensorShape,
    seed: u64,
) -> Result<ExecOutcome, ExecError> {
    execute_stream_opts(
        stream,
        assignments,
        workers,
        shape,
        seed,
        ExecOptions::default(),
    )
}

/// [`execute_stream`] with explicit [`ExecOptions`] — the entry point for
/// work stealing and operand prefetch.
///
/// # Examples
///
/// ```
/// use micco_core::{run_schedule, MiccoScheduler, ReuseBounds};
/// use micco_exec::{execute_stream, execute_stream_opts, ExecOptions, TensorShape};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let shape = TensorShape { batch: 2, dim: 8 };
/// let stream = WorkloadSpec::new(6, shape.dim).with_batch(shape.batch).with_vectors(2).generate();
/// let report = run_schedule(
///     &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
///     &stream,
///     &MachineConfig::mi100_like(2),
/// ).unwrap();
/// let opts = ExecOptions::default().with_steal().with_prefetch();
/// let stolen = execute_stream_opts(&stream, &report.assignments, 2, shape, 7, opts).unwrap();
/// let replayed = execute_stream(&stream, &report.assignments, 2, shape, 7).unwrap();
/// // stealing may move work between workers but never changes the physics
/// assert_eq!(stolen.checksum, replayed.checksum);
/// assert_eq!(stolen.per_worker_tasks, replayed.per_worker_tasks);
/// ```
///
/// # Errors
///
/// Fails under the same conditions as [`execute_stream`].
pub fn execute_stream_opts(
    stream: &TensorPairStream,
    assignments: &[Assignment],
    workers: usize,
    shape: TensorShape,
    seed: u64,
    opts: ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    execute_stream_faults(
        stream,
        assignments,
        workers,
        shape,
        seed,
        opts,
        &FaultPlan::none(),
    )
}

/// [`execute_stream_opts`] under a deterministic [`FaultPlan`] — the chaos
/// entry point. Injected transfer timeouts re-stage operands, transient
/// kernel faults burn attempts from the retry budget
/// ([`ExecOptions::retry`]), and device losses remove workers (their
/// queued tasks drain through the stealing path, so the checksum of a run
/// with at least one surviving worker is bit-identical to the fault-free
/// run).
///
/// # Errors
///
/// Fails under the same conditions as [`execute_stream`], plus
/// [`ExecError::WorkerFailed`] when a transient fault outlives the retry
/// budget and [`ExecError::AllWorkersLost`] when no worker survives a
/// stage.
#[allow(clippy::too_many_arguments)]
pub fn execute_stream_faults(
    stream: &TensorPairStream,
    assignments: &[Assignment],
    workers: usize,
    shape: TensorShape,
    seed: u64,
    opts: ExecOptions,
    faults: &FaultPlan,
) -> Result<ExecOutcome, ExecError> {
    if workers == 0 {
        return Err(ExecError::NoWorkers);
    }
    if assignments.len() != stream.total_tasks() {
        return Err(ExecError::AssignmentShortfall {
            expected: stream.total_tasks(),
            got: assignments.len(),
        });
    }
    if let Some(a) = assignments.iter().find(|a| a.gpu.0 >= workers) {
        return Err(ExecError::DeviceOutOfRange {
            gpu: a.gpu.0,
            workers,
        });
    }
    execute_unchecked(stream, assignments, workers, shape, seed, opts, faults)
}

/// Execute a validated [`SchedulePlan`] with real kernels — the plan-IR
/// entry point of the engine. The plan's device count sizes the worker
/// pool, and [`SchedulePlan::validate`] runs first, so a stale or foreign
/// plan is a typed error instead of a panic deep in a worker thread.
///
/// # Examples
///
/// ```
/// use micco_core::{plan_schedule, MiccoScheduler, ReuseBounds};
/// use micco_exec::{execute_plan, TensorShape};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let shape = TensorShape { batch: 2, dim: 8 };
/// let stream = WorkloadSpec::new(4, shape.dim).with_batch(shape.batch).with_vectors(2).generate();
/// let plan = plan_schedule(
///     &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
///     &stream,
///     &MachineConfig::mi100_like(2),
/// ).unwrap();
/// let out = execute_plan(&stream, &plan, shape, 7).unwrap();
/// assert_eq!(out.kernels, stream.total_tasks());
/// ```
///
/// # Errors
///
/// Returns [`ExecError::Plan`] when the plan does not validate against
/// `stream`, and [`ExecError::NoWorkers`] for a zero-device plan.
pub fn execute_plan(
    stream: &TensorPairStream,
    plan: &SchedulePlan,
    shape: TensorShape,
    seed: u64,
) -> Result<ExecOutcome, ExecError> {
    execute_plan_opts(stream, plan, shape, seed, ExecOptions::default())
}

/// [`execute_plan`] with explicit [`ExecOptions`].
///
/// # Errors
///
/// Fails under the same conditions as [`execute_plan`].
pub fn execute_plan_opts(
    stream: &TensorPairStream,
    plan: &SchedulePlan,
    shape: TensorShape,
    seed: u64,
    opts: ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    execute_plan_faults(stream, plan, shape, seed, opts, &FaultPlan::none())
}

/// [`execute_plan_opts`] under a deterministic [`FaultPlan`] — the plan-IR
/// chaos entry point.
///
/// # Errors
///
/// Fails under the same conditions as [`execute_plan`] and
/// [`execute_stream_faults`].
pub fn execute_plan_faults(
    stream: &TensorPairStream,
    plan: &SchedulePlan,
    shape: TensorShape,
    seed: u64,
    opts: ExecOptions,
    faults: &FaultPlan,
) -> Result<ExecOutcome, ExecError> {
    plan.validate(stream)?;
    if plan.num_gpus == 0 {
        return Err(ExecError::NoWorkers);
    }
    execute_unchecked(
        stream,
        &plan.flat_assignments(),
        plan.num_gpus,
        shape,
        seed,
        opts,
        faults,
    )
}

/// Shared fault-injection context handed down to the stage runners.
struct FaultCtx<'a> {
    faults: &'a FaultPlan,
    max_attempts: u32,
    base_delay: Duration,
    fault_events: &'a AtomicU64,
    retry_events: &'a AtomicU64,
}

impl FaultCtx<'_> {
    /// Sleep the bounded exponential backoff before retry `attempt`.
    fn backoff(&self, attempt: u32) {
        if self.base_delay.is_zero() {
            return;
        }
        let exp = attempt.saturating_sub(1).min(16);
        let delay = self
            .base_delay
            .saturating_mul(1 << exp)
            .min(Duration::from_millis(100));
        std::thread::sleep(delay);
    }
}

/// Render a worker thread's panic payload into a typed [`ExecError`].
fn panic_to_error(gpu: Option<usize>, payload: Box<dyn Any + Send>) -> ExecError {
    let cause = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    };
    ExecError::WorkerFailed {
        gpu,
        task: None,
        cause,
    }
}

/// Fold an explicitly joined worker result into the engine's error type:
/// a panic becomes [`ExecError::WorkerFailed`] instead of aborting the
/// process.
fn join_worker<T>(
    gpu: usize,
    joined: std::thread::Result<Result<T, ExecError>>,
) -> Result<T, ExecError> {
    match joined {
        Ok(r) => r,
        Err(payload) => Err(panic_to_error(Some(gpu), payload)),
    }
}

/// The engine proper. Inputs are already validated: `workers > 0`, one
/// assignment per task, every device in range.
fn execute_unchecked(
    stream: &TensorPairStream,
    assignments: &[Assignment],
    workers: usize,
    shape: TensorShape,
    seed: u64,
    opts: ExecOptions,
    faults: &FaultPlan,
) -> Result<ExecOutcome, ExecError> {
    let store = TensorStore::new(shape.batch, shape.dim, seed);
    let t0 = Instant::now();
    let mut per_worker_tasks = vec![0usize; workers];
    let mut per_worker_executed = vec![0usize; workers];
    let steals = AtomicUsize::new(0);
    let fault_events = AtomicU64::new(0);
    let retry_events = AtomicU64::new(0);
    let fx = FaultCtx {
        faults,
        max_attempts: opts.max_attempts,
        base_delay: opts.base_delay,
        fault_events: &fault_events,
        retry_events: &retry_events,
    };
    // A device loss strands the victim's queue, so those runs go through
    // the stealing path: survivors drain the lost workers' work.
    let any_loss = (0..workers).any(|g| faults.loss_of(g).is_some());
    let steal_mode = opts.steal || any_loss;
    // the modelled residency of each worker's device: operands and outputs
    // of tasks it executed (persists across stages, like device memory)
    let mut residents: Vec<HashSet<TensorId>> = vec![HashSet::new(); workers];
    // per-task traces, collected in global task order so the final
    // checksum reduction is order-fixed regardless of thread interleaving
    let mut traces: Vec<Complex64> = vec![Complex64::ZERO; stream.total_tasks()];
    let mut offset = 0usize;

    for (stage, vector) in stream.vectors.iter().enumerate() {
        let lost: Vec<bool> = (0..workers).map(|w| faults.is_lost(w, stage)).collect();
        if lost.iter().all(|&l| l) {
            return Err(ExecError::AllWorkersLost { stage });
        }
        for (w, &l) in lost.iter().enumerate() {
            if l {
                // the device rebooted (transient) or died (permanent):
                // either way its modelled memory is gone
                residents[w].clear();
            }
        }
        let stage_assign = &assignments[offset..offset + vector.len()];
        // partition this stage's task indices per worker
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (i, a) in stage_assign.iter().enumerate() {
            debug_assert_eq!(
                a.task, vector.tasks[i].id,
                "assignment order must match stream"
            );
            buckets[a.gpu.0].push(i);
        }
        for (w, b) in buckets.iter().enumerate() {
            per_worker_tasks[w] += b.len();
        }
        let stage_traces = &mut traces[offset..offset + vector.len()];
        if steal_mode {
            run_stage_stealing(
                vector,
                &buckets,
                &mut residents,
                &store,
                stage_traces,
                &steals,
                &mut per_worker_executed,
                opts.prefetch,
                &fx,
                &lost,
            )?;
        } else {
            run_stage_static(vector, &buckets, &store, stage_traces, opts.prefetch, &fx)?;
            for (w, b) in buckets.iter().enumerate() {
                per_worker_executed[w] += b.len();
            }
        }
        offset += vector.len();
    }

    let checksum = traces.iter().copied().sum();
    let stages = stream.vectors.len();
    let lost_workers = (0..workers)
        .filter(|&w| faults.loss_of(w).is_some_and(|(s, _)| s < stages))
        .count();
    Ok(ExecOutcome {
        wall_secs: t0.elapsed().as_secs_f64(),
        per_worker_tasks,
        per_worker_executed,
        steals: steals.into_inner(),
        checksum,
        kernels: stream.total_tasks(),
        faults: fault_events.into_inner(),
        retries: retry_events.into_inner(),
        lost_workers,
    })
}

/// Run one task's kernel: fetch operands, contract, register the output,
/// and return the per-task trace (computed sequentially per batch element —
/// no cross-thread reduction ⇒ bitwise determinism).
fn run_task(store: &TensorStore, vector: &Vector, i: usize) -> Result<Complex64, ExecError> {
    let task = &vector.tasks[i];
    let a = store.fetch(task.a.id);
    let b = store.fetch(task.b.id);
    let out = a.matmul(&b).map_err(|e| match e {
        TensorError::ShapeMismatch { lhs, rhs } => ExecError::ShapeMismatch {
            task: task.id.0,
            lhs,
            rhs,
        },
        other => ExecError::WorkerFailed {
            gpu: None,
            task: Some(task.id.0),
            cause: other.to_string(),
        },
    })?;
    let mut tr = Complex64::ZERO;
    for bi in 0..out.batch() {
        tr += out.element(bi).trace();
    }
    store.insert(task.out.id, Arc::new(out));
    Ok(tr)
}

/// [`run_task`] under the fault plan: a transfer timeout re-stages the
/// operands once per charged retry; a transient kernel fault burns
/// attempts from the retry budget (with exponential backoff) before its
/// deterministic success — or exhausts the budget into a typed
/// [`ExecError::WorkerFailed`].
fn run_task_faulty(
    store: &TensorStore,
    vector: &Vector,
    i: usize,
    gpu: usize,
    fx: &FaultCtx<'_>,
) -> Result<Complex64, ExecError> {
    let task = &vector.tasks[i];
    let timeouts = fx.faults.transfer_retries(task.id.0);
    if timeouts > 0 {
        fx.fault_events.fetch_add(1, Ordering::Relaxed);
        for attempt in 1..=timeouts {
            fx.retry_events.fetch_add(1, Ordering::Relaxed);
            fx.backoff(attempt);
            store.fetch(task.a.id);
            store.fetch(task.b.id);
        }
    }
    let kernel_faults = fx.faults.kernel_failures(task.id.0);
    if kernel_faults > 0 {
        fx.fault_events.fetch_add(1, Ordering::Relaxed);
        let budget = fx.max_attempts.max(1);
        if kernel_faults >= budget {
            return Err(ExecError::WorkerFailed {
                gpu: Some(gpu),
                task: Some(task.id.0),
                cause: format!("transient kernel fault persisted through {budget} attempt(s)"),
            });
        }
        for attempt in 1..=kernel_faults {
            fx.retry_events.fetch_add(1, Ordering::Relaxed);
            fx.backoff(attempt);
        }
    }
    run_task(store, vector, i)
}

/// Static replay: one scoped thread per non-empty bucket; the scope join
/// is the stage barrier. Every handle — workers and prefetcher — is
/// joined explicitly, so a panicking thread surfaces as
/// [`ExecError::WorkerFailed`] instead of unwinding through the scope.
fn run_stage_static(
    vector: &Vector,
    buckets: &[Vec<usize>],
    store: &TensorStore,
    stage_traces: &mut [Complex64],
    prefetch: bool,
    fx: &FaultCtx<'_>,
) -> Result<(), ExecError> {
    let trace_slices = split_by_buckets(stage_traces, buckets);
    let scoped = crossbeam::thread::scope(|scope| -> Result<(), ExecError> {
        let prefetcher = prefetch.then(|| {
            scope.spawn(move |_| {
                for t in &vector.tasks {
                    store.fetch(t.a.id);
                    store.fetch(t.b.id);
                }
            })
        });
        let handles: Vec<_> = buckets
            .iter()
            .zip(trace_slices)
            .enumerate()
            .filter(|(_, (bucket, _))| !bucket.is_empty())
            .map(|(w, (bucket, slots))| {
                let h = scope.spawn(move |_| -> Result<(), ExecError> {
                    for (&i, slot) in bucket.iter().zip(slots) {
                        *slot = run_task_faulty(store, vector, i, w, fx)?;
                    }
                    Ok(())
                });
                (w, h)
            })
            .collect();
        let mut first_err = None;
        for (w, h) in handles {
            if let Err(e) = join_worker(w, h.join()) {
                first_err.get_or_insert(e);
            }
        }
        if let Some(h) = prefetcher {
            if let Err(payload) = h.join() {
                first_err.get_or_insert(panic_to_error(None, payload));
            }
        }
        first_err.map_or(Ok(()), Err)
    });
    scoped.unwrap_or_else(|payload| Err(panic_to_error(None, payload)))
}

/// Work-stealing stage: per-worker deques; a worker drains its own queue
/// from the front, then scans victims' queues from the back for tasks
/// whose operands it already holds. Results come back through the join
/// handles tagged with their stage-local task index, so the caller writes
/// them into the order-fixed trace array.
#[allow(clippy::too_many_arguments)]
fn run_stage_stealing(
    vector: &Vector,
    buckets: &[Vec<usize>],
    residents: &mut [HashSet<TensorId>],
    store: &TensorStore,
    stage_traces: &mut [Complex64],
    steals: &AtomicUsize,
    per_worker_executed: &mut [usize],
    prefetch: bool,
    fx: &FaultCtx<'_>,
    lost: &[bool],
) -> Result<(), ExecError> {
    let workers = buckets.len();
    let queues: Vec<Mutex<VecDeque<usize>>> = buckets
        .iter()
        .map(|b| Mutex::new(b.iter().copied().collect()))
        .collect();
    type StageDone = Vec<(usize, Complex64)>;
    let scoped = crossbeam::thread::scope(|scope| -> Result<Vec<StageDone>, ExecError> {
        let prefetcher = prefetch.then(|| {
            scope.spawn(move |_| {
                for t in &vector.tasks {
                    store.fetch(t.a.id);
                    store.fetch(t.b.id);
                }
            })
        });
        // lost workers spawn no thread: their queues sit as carrion for
        // the survivors' drain path in `steal_one`
        let handles: Vec<_> = residents
            .iter_mut()
            .enumerate()
            .filter(|(w, _)| !lost[*w])
            .map(|(w, resident)| {
                let queues = &queues;
                let h = scope.spawn(move |_| -> Result<StageDone, ExecError> {
                    let mut done: StageDone = Vec::new();
                    loop {
                        let own = queues[w].lock().pop_front();
                        let (i, stolen) = match own {
                            Some(i) => (i, false),
                            None => match steal_one(queues, w, vector, resident, lost) {
                                Some(i) => (i, true),
                                None => break,
                            },
                        };
                        let tr = run_task_faulty(store, vector, i, w, fx)?;
                        let task = &vector.tasks[i];
                        resident.insert(task.a.id);
                        resident.insert(task.b.id);
                        resident.insert(task.out.id);
                        if stolen {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        done.push((i, tr));
                    }
                    Ok(done)
                });
                (w, h)
            })
            .collect();
        let mut per: Vec<StageDone> = vec![Vec::new(); workers];
        let mut first_err = None;
        for (w, h) in handles {
            match join_worker(w, h.join()) {
                Ok(done) => per[w] = done,
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(h) = prefetcher {
            if let Err(payload) = h.join() {
                first_err.get_or_insert(panic_to_error(None, payload));
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(per),
        }
    });
    let per = scoped.unwrap_or_else(|payload| Err(panic_to_error(None, payload)))?;
    for (w, rs) in per.into_iter().enumerate() {
        per_worker_executed[w] += rs.len();
        for (i, tr) in rs {
            stage_traces[i] = tr;
        }
    }
    Ok(())
}

/// Pop one steal-eligible task for `thief`: scanning other workers'
/// queues, take from the *back* (the victim's coldest work) the first
/// task whose operands the thief already holds. A *lost* victim cannot
/// run anything itself, so its queue is drained from the *front*
/// unconditionally — the reuse gate would strand its tasks.
fn steal_one(
    queues: &[Mutex<VecDeque<usize>>],
    thief: usize,
    vector: &Vector,
    resident: &HashSet<TensorId>,
    lost: &[bool],
) -> Option<usize> {
    for (v, queue) in queues.iter().enumerate() {
        if v == thief {
            continue;
        }
        let mut q = queue.lock();
        if lost[v] {
            if let Some(i) = q.pop_front() {
                return Some(i);
            }
            continue;
        }
        if let Some(pos) = q.iter().rposition(|&i| {
            let t = &vector.tasks[i];
            resident.contains(&t.a.id) && resident.contains(&t.b.id)
        }) {
            return q.remove(pos);
        }
    }
    None
}

/// Split `slice` into per-bucket mutable views: bucket `w` receives one
/// `&mut Complex64` per entry, in order. Implemented with `split_first_mut`
/// walking the slice once per bucket ordering — buckets index disjoint
/// positions, so we hand out raw disjoint sub-borrows via sorting.
fn split_by_buckets<'a>(
    slice: &'a mut [Complex64],
    buckets: &[Vec<usize>],
) -> Vec<Vec<&'a mut Complex64>> {
    // Decorate every slot with its bucket, then walk the slice once,
    // routing each &mut to its bucket — safe disjoint splitting without
    // unsafe code.
    let mut owner: Vec<usize> = vec![usize::MAX; slice.len()];
    for (w, bucket) in buckets.iter().enumerate() {
        for &i in bucket {
            owner[i] = w;
        }
    }
    let mut out: Vec<Vec<&mut Complex64>> = (0..buckets.len()).map(|_| Vec::new()).collect();
    for (slot, &w) in slice.iter_mut().zip(&owner) {
        if w != usize::MAX {
            out[w].push(slot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use micco_core::{
        run_schedule, GrouteScheduler, MiccoScheduler, ReuseBounds, RoundRobinScheduler, Scheduler,
    };
    use micco_gpusim::MachineConfig;
    use micco_workload::WorkloadSpec;

    const SHAPE: TensorShape = TensorShape { batch: 2, dim: 8 };

    fn stream() -> TensorPairStream {
        WorkloadSpec::new(12, SHAPE.dim)
            .with_batch(SHAPE.batch)
            .with_repeat_rate(0.6)
            .with_vectors(3)
            .with_seed(21)
            .generate()
    }

    fn assignments_for(
        s: &mut dyn Scheduler,
        stream: &TensorPairStream,
        gpus: usize,
    ) -> Vec<Assignment> {
        run_schedule(s, stream, &MachineConfig::mi100_like(gpus))
            .expect("fits")
            .assignments
    }

    #[test]
    fn executes_and_counts() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 4);
        let out = execute_stream(&stream, &assignments, 4, SHAPE, 5).unwrap();
        assert_eq!(out.kernels, stream.total_tasks());
        assert_eq!(
            out.per_worker_tasks.iter().sum::<usize>(),
            stream.total_tasks()
        );
        assert!(out.checksum.is_finite());
        assert!(out.wall_secs >= 0.0);
    }

    #[test]
    fn checksum_is_scheduler_invariant() {
        let stream = stream();
        let mut checksums = Vec::new();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(GrouteScheduler::new()),
            Box::new(RoundRobinScheduler::new()),
            Box::new(MiccoScheduler::new(ReuseBounds::new(0, 2, 0))),
            Box::new(MiccoScheduler::new(ReuseBounds::unbounded())),
        ];
        for s in schedulers.iter_mut() {
            let assignments = assignments_for(s.as_mut(), &stream, 4);
            checksums.push(
                execute_stream(&stream, &assignments, 4, SHAPE, 5)
                    .unwrap()
                    .checksum,
            );
        }
        for w in checksums.windows(2) {
            assert_eq!(w[0], w[1], "placement must never change the physics");
        }
    }

    #[test]
    fn checksum_is_worker_count_invariant() {
        let stream = stream();
        let mut reference = None;
        for gpus in [1usize, 2, 3, 8] {
            let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, gpus);
            let out = execute_stream(&stream, &assignments, gpus, SHAPE, 5).unwrap();
            if let Some(r) = reference {
                assert_eq!(out.checksum, r, "{gpus} workers changed the checksum");
            } else {
                reference = Some(out.checksum);
            }
        }
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let stream = stream();
        let assignments = assignments_for(&mut MiccoScheduler::naive(), &stream, 3);
        let a = execute_stream(&stream, &assignments, 3, SHAPE, 9)
            .unwrap()
            .checksum;
        let b = execute_stream(&stream, &assignments, 3, SHAPE, 9)
            .unwrap()
            .checksum;
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_checksum() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let a = execute_stream(&stream, &assignments, 2, SHAPE, 1)
            .unwrap()
            .checksum;
        let b = execute_stream(&stream, &assignments, 2, SHAPE, 2)
            .unwrap()
            .checksum;
        assert_ne!(a, b);
    }

    #[test]
    fn matches_single_threaded_reference() {
        // hand-rolled sequential reference over the same leaf generator
        let stream = WorkloadSpec::new(4, SHAPE.dim)
            .with_batch(SHAPE.batch)
            .with_repeat_rate(0.0)
            .with_vectors(1)
            .with_seed(2)
            .generate();
        let store = crate::store::TensorStore::new(SHAPE.batch, SHAPE.dim, 77);
        let mut expect = Complex64::ZERO;
        for t in &stream.vectors[0].tasks {
            let out = store.fetch(t.a.id).matmul(&store.fetch(t.b.id)).unwrap();
            // group per task exactly as the engine does — float addition is
            // not associative, and the test demands bit equality
            let mut tr = Complex64::ZERO;
            for bi in 0..out.batch() {
                tr += out.element(bi).trace();
            }
            expect += tr;
        }
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let got = execute_stream(&stream, &assignments, 2, SHAPE, 77)
            .unwrap()
            .checksum;
        assert_eq!(got, expect);
    }

    #[test]
    fn stealing_preserves_checksum_and_totals() {
        let stream = stream();
        for workers in [1usize, 2, 4] {
            let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, workers);
            let base = execute_stream(&stream, &assignments, workers, SHAPE, 5).unwrap();
            let stolen = execute_stream_opts(
                &stream,
                &assignments,
                workers,
                SHAPE,
                5,
                ExecOptions::default().with_steal(),
            )
            .unwrap();
            assert_eq!(stolen.checksum, base.checksum, "{workers} workers");
            assert_eq!(stolen.per_worker_tasks, base.per_worker_tasks);
            assert_eq!(
                stolen.per_worker_executed.iter().sum::<usize>(),
                stream.total_tasks(),
                "every task executed exactly once"
            );
            assert_eq!(stolen.kernels, stream.total_tasks());
        }
    }

    #[test]
    fn prefetch_is_checksum_neutral() {
        let stream = stream();
        let assignments = assignments_for(&mut MiccoScheduler::naive(), &stream, 3);
        let base = execute_stream(&stream, &assignments, 3, SHAPE, 9).unwrap();
        for opts in [
            ExecOptions::default().with_prefetch(),
            ExecOptions::default().with_steal().with_prefetch(),
        ] {
            let out = execute_stream_opts(&stream, &assignments, 3, SHAPE, 9, opts).unwrap();
            assert_eq!(out.checksum, base.checksum, "{opts:?}");
        }
    }

    #[test]
    fn static_mode_reports_zero_steals() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let out = execute_stream(&stream, &assignments, 2, SHAPE, 5).unwrap();
        assert_eq!(out.steals, 0);
        assert_eq!(out.per_worker_executed, out.per_worker_tasks);
    }

    #[test]
    fn steals_only_move_work_between_workers() {
        // a lopsided hand-built schedule: everything on worker 0, so worker
        // 1 can only help via stealing — and only for operands it holds
        // (none at first, so stage 1 must not be stolen)
        let stream = stream();
        let assignments: Vec<Assignment> = stream
            .vectors
            .iter()
            .flat_map(|v| v.tasks.iter())
            .map(|t| Assignment {
                task: t.id,
                gpu: micco_gpusim::GpuId(0),
            })
            .collect();
        let out = execute_stream_opts(
            &stream,
            &assignments,
            2,
            SHAPE,
            5,
            ExecOptions::default().with_steal(),
        )
        .unwrap();
        assert_eq!(out.per_worker_tasks, vec![stream.total_tasks(), 0]);
        assert_eq!(
            out.per_worker_executed.iter().sum::<usize>(),
            stream.total_tasks()
        );
        assert_eq!(
            out.steals, out.per_worker_executed[1],
            "worker 1 only runs stolen work"
        );
        // worker 1 held nothing when stage 0 started, so every stage-0 task
        // stayed on worker 0 — reuse-aware stealing never moves cold tasks
        let stage0 = stream.vectors[0].len();
        assert!(out.per_worker_executed[0] >= stage0);
        // and the physics is unchanged
        let base = execute_stream(&stream, &assignments, 2, SHAPE, 5).unwrap();
        assert_eq!(out.checksum, base.checksum);
    }

    #[test]
    fn steal_one_is_reuse_aware_and_takes_from_the_back() {
        use micco_workload::{ContractionTask, TaskId, TensorDesc};
        let t = |id: u64, a: u64, b: u64, out: u64| ContractionTask {
            id: TaskId(id),
            a: TensorDesc {
                id: TensorId(a),
                bytes: 1,
            },
            b: TensorDesc {
                id: TensorId(b),
                bytes: 1,
            },
            out: TensorDesc {
                id: TensorId(out),
                bytes: 1,
            },
            flops: 0,
        };
        // tasks 0 and 2 use tensors {1,2}; task 1 uses {3,4}
        let vector = Vector::new(vec![t(0, 1, 2, 10), t(1, 3, 4, 11), t(2, 1, 2, 12)]);
        let queues = vec![
            Mutex::new(VecDeque::from(vec![0usize, 1, 2])),
            Mutex::new(VecDeque::new()),
        ];
        let resident: HashSet<TensorId> = [TensorId(1), TensorId(2)].into_iter().collect();
        let alive = [false, false];
        // the thief takes eligible work back-to-front, skipping task 1
        assert_eq!(steal_one(&queues, 1, &vector, &resident, &alive), Some(2));
        assert_eq!(steal_one(&queues, 1, &vector, &resident, &alive), Some(0));
        assert_eq!(
            steal_one(&queues, 1, &vector, &resident, &alive),
            None,
            "task 1 is cold"
        );
        assert_eq!(
            queues[0].lock().len(),
            1,
            "ineligible work stays with its owner"
        );
        // a worker never steals from itself
        assert_eq!(steal_one(&queues, 0, &vector, &resident, &alive), None);
        // a lost victim is drained from the front, reuse gate waived
        let lost = [true, false];
        assert_eq!(
            steal_one(&queues, 1, &vector, &resident, &lost),
            Some(1),
            "cold work drains from a lost victim"
        );
    }

    #[test]
    fn short_assignments_are_a_typed_error() {
        let stream = stream();
        let err = execute_stream(&stream, &[], 2, SHAPE, 0).unwrap_err();
        assert_eq!(
            err,
            ExecError::AssignmentShortfall {
                expected: stream.total_tasks(),
                got: 0
            }
        );
        assert!(err.to_string().contains("cover every task"));
    }

    #[test]
    fn zero_workers_are_a_typed_error() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 1);
        let err = execute_stream(&stream, &assignments, 0, SHAPE, 0).unwrap_err();
        assert_eq!(err, ExecError::NoWorkers);
        assert!(err.to_string().contains("at least one worker"));
    }

    #[test]
    fn out_of_range_device_is_a_typed_error() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 4);
        let err = execute_stream(&stream, &assignments, 2, SHAPE, 0).unwrap_err();
        assert!(matches!(
            err,
            ExecError::DeviceOutOfRange { gpu, workers: 2 } if gpu >= 2
        ));
    }

    #[test]
    fn worker_panic_is_a_typed_error() {
        let joined =
            std::thread::spawn(|| -> Result<(), ExecError> { panic!("kernel crashed") }).join();
        let err = join_worker(3, joined).unwrap_err();
        assert!(matches!(
            &err,
            ExecError::WorkerFailed { gpu: Some(3), task: None, cause } if cause.contains("kernel crashed")
        ));
        assert!(err.to_string().contains("worker 3 failed"));
        // a String payload is captured too
        let joined = std::thread::spawn(|| -> Result<(), ExecError> {
            panic!("{}", String::from("owned payload"))
        })
        .join();
        assert!(matches!(
            join_worker(0, joined).unwrap_err(),
            ExecError::WorkerFailed { cause, .. } if cause.contains("owned payload")
        ));
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        use micco_workload::{ContractionTask, TaskId, TensorDesc};
        let store = TensorStore::new(2, 4, 1);
        // pre-register operand b with a different dim than the store default
        store.insert(
            TensorId(8),
            Arc::new(micco_tensor::BatchedMatrix::identity(2, 6)),
        );
        let vector = Vector::new(vec![ContractionTask {
            id: TaskId(0),
            a: TensorDesc {
                id: TensorId(7),
                bytes: 1,
            },
            b: TensorDesc {
                id: TensorId(8),
                bytes: 1,
            },
            out: TensorDesc {
                id: TensorId(9),
                bytes: 1,
            },
            flops: 0,
        }]);
        let err = run_task(&store, &vector, 0).unwrap_err();
        assert!(matches!(err, ExecError::ShapeMismatch { task: 0, .. }));
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn transient_faults_retry_to_the_same_checksum() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let clean = execute_stream(&stream, &assignments, 2, SHAPE, 5).unwrap();
        let t0 = stream.vectors[0].tasks[0].id.0;
        let t1 = stream.vectors[0].tasks[1].id.0;
        let faults = FaultPlan::none()
            .with_kernel_fault(t0, 2)
            .with_transfer_timeout(t1, 1);
        let opts = ExecOptions::default().retry(4, Duration::ZERO);
        let out = execute_stream_faults(&stream, &assignments, 2, SHAPE, 5, opts, &faults).unwrap();
        assert_eq!(out.checksum, clean.checksum, "faults never change values");
        assert_eq!(out.faults, 2);
        assert_eq!(out.retries, 3);
        assert_eq!(out.lost_workers, 0);
        // the recovery is deterministic: same (seed, FaultPlan) ⇒ same run
        let again =
            execute_stream_faults(&stream, &assignments, 2, SHAPE, 5, opts, &faults).unwrap();
        assert_eq!(again.checksum, out.checksum);
        assert_eq!(again.retries, out.retries);
    }

    #[test]
    fn exhausted_retry_budget_is_worker_failed() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let tid = stream.vectors[0].tasks[0].id.0;
        let faults = FaultPlan::none().with_kernel_fault(tid, 3);
        // default options: no retry budget, first transient failure is final
        let err = execute_stream_faults(
            &stream,
            &assignments,
            2,
            SHAPE,
            5,
            ExecOptions::default(),
            &faults,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExecError::WorkerFailed { task: Some(t), .. } if t == tid
        ));
        // a budget larger than the fault count rides it out
        let opts = ExecOptions::default().retry(4, Duration::ZERO);
        assert!(execute_stream_faults(&stream, &assignments, 2, SHAPE, 5, opts, &faults).is_ok());
    }

    #[test]
    fn permanent_single_gpu_loss_preserves_checksum() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let clean = execute_stream(&stream, &assignments, 2, SHAPE, 5).unwrap();
        // gpu 1 dies at stage 1 and never returns
        let faults = FaultPlan::none().with_device_loss(1, 1, true);
        let opts = ExecOptions::default();
        let out = execute_stream_faults(&stream, &assignments, 2, SHAPE, 5, opts, &faults).unwrap();
        assert_eq!(
            out.checksum, clean.checksum,
            "survivors drain the dead queue"
        );
        assert_eq!(out.lost_workers, 1);
        assert_eq!(
            out.per_worker_executed.iter().sum::<usize>(),
            stream.total_tasks(),
            "every task executed exactly once"
        );
        assert_eq!(out.per_worker_tasks, clean.per_worker_tasks);
        let again =
            execute_stream_faults(&stream, &assignments, 2, SHAPE, 5, opts, &faults).unwrap();
        assert_eq!(again.checksum, out.checksum, "recovery is deterministic");
    }

    #[test]
    fn transient_loss_returns_the_worker_next_stage() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 3);
        let clean = execute_stream(&stream, &assignments, 3, SHAPE, 5).unwrap();
        // gpu 2 flakes in stage 0 only
        let faults = FaultPlan::none().with_device_loss(2, 0, false);
        let out = execute_stream_faults(
            &stream,
            &assignments,
            3,
            SHAPE,
            5,
            ExecOptions::default(),
            &faults,
        )
        .unwrap();
        assert_eq!(out.checksum, clean.checksum);
        assert_eq!(out.lost_workers, 1);
        assert_eq!(
            out.per_worker_executed.iter().sum::<usize>(),
            stream.total_tasks()
        );
    }

    #[test]
    fn all_workers_lost_is_a_typed_error() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let faults = FaultPlan::none()
            .with_device_loss(0, 0, true)
            .with_device_loss(1, 0, true);
        let err = execute_stream_faults(
            &stream,
            &assignments,
            2,
            SHAPE,
            5,
            ExecOptions::default(),
            &faults,
        )
        .unwrap_err();
        assert_eq!(err, ExecError::AllWorkersLost { stage: 0 });
        assert!(err.to_string().contains("all workers lost"));
    }

    #[test]
    fn empty_fault_plan_is_behavior_neutral() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let base = execute_stream(&stream, &assignments, 2, SHAPE, 5).unwrap();
        let via_faults = execute_stream_faults(
            &stream,
            &assignments,
            2,
            SHAPE,
            5,
            ExecOptions::default(),
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(via_faults.checksum, base.checksum);
        assert_eq!(via_faults.faults, 0);
        assert_eq!(via_faults.retries, 0);
        assert_eq!(via_faults.lost_workers, 0);
        assert_eq!(via_faults.per_worker_executed, base.per_worker_executed);
    }

    #[test]
    fn plan_path_matches_slice_path() {
        use micco_core::{plan_schedule, run_schedule};
        use micco_gpusim::MachineConfig;

        let stream = stream();
        let cfg = MachineConfig::mi100_like(3);
        let report = run_schedule(
            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
        )
        .unwrap();
        let plan = plan_schedule(
            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
        )
        .unwrap();
        let via_slices = execute_stream(&stream, &report.assignments, 3, SHAPE, 5).unwrap();
        let via_plan = execute_plan(&stream, &plan, SHAPE, 5).unwrap();
        assert_eq!(via_plan.checksum, via_slices.checksum);
        assert_eq!(via_plan.per_worker_tasks, via_slices.per_worker_tasks);
        assert_eq!(via_plan.kernels, via_slices.kernels);
    }

    #[test]
    fn stale_plan_is_rejected_before_any_kernel_runs() {
        use micco_core::{plan_schedule, PlanError};
        use micco_gpusim::MachineConfig;

        let stream = stream();
        let plan = plan_schedule(
            &mut RoundRobinScheduler::new(),
            &stream,
            &MachineConfig::mi100_like(2),
        )
        .unwrap();
        // mutate the workload after planning: the fingerprint catches it
        let mut drifted = stream.clone();
        drifted.vectors[0].tasks[0].flops += 1;
        let err = execute_plan(&drifted, &plan, SHAPE, 5).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Plan(PlanError::FingerprintMismatch { .. })
        ));
    }
}
