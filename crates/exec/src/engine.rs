//! The stage-parallel execution engine.
//!
//! Two execution modes share the same checksum contract:
//!
//! - **static** (the default): each worker runs exactly the tasks its
//!   device was assigned, in order — a faithful replay of the schedule.
//! - **work stealing** ([`ExecOptions::steal`]): per-worker deques with
//!   *reuse-aware* intra-stage stealing — an idle worker may only take a
//!   victim's task when it already holds both operands (the tasks a
//!   device could run without extra transfers), mirroring the
//!   data-centric placement rule the schedulers optimise for.
//!
//! Either way the per-task outputs are identical, so the order-fixed
//! checksum reduction is bit-identical across modes, schedulers, and
//! worker counts.
//!
//! ## One entry point
//!
//! All configuration — stealing, prefetch, retry budgets, fault plans,
//! and the telemetry sink — travels in [`ExecOptions`]; the two canonical
//! entry points are [`execute_plan`] (plan IR in, validated first) and
//! [`execute_assignments`] (raw assignment slice in). The historical
//! `execute_stream*`/`execute_plan_opts`/`execute_plan_faults` sprawl
//! was removed after a deprecation cycle; a checksum-pinned conformance
//! test keeps the two canonical entries bit-for-bit interchangeable.
//!
//! ## Telemetry
//!
//! With [`ExecOptions::with_trace`] the engine records wall-clock spans to
//! a [`micco_obs::TraceSink`]: one process per worker with compute and
//! copy tracks (kernel spans and operand staging), control-process stage
//! spans, steal flow arrows, and fault/retry instants — the same span
//! taxonomy the simulator's `SpanObserver` emits, so sim and real
//! timelines render side by side in Perfetto.

use std::any::Any;
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use micco_core::{Assignment, PlanError, SchedulePlan};
use micco_gpusim::FaultPlan;
use micco_obs::{FlowPoint, TraceEvent, TraceSink, Track, CONTROL_PID};
use micco_tensor::{Complex64, TensorError};
use micco_workload::{TensorId, TensorPairStream, Vector};

use crate::store::TensorStore;

/// Shape of the tensors in a uniform stream (the synthetic generator and
/// the per-correlator pipelines both produce uniform shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorShape {
    /// Batch count.
    pub batch: usize,
    /// Mode length.
    pub dim: usize,
}

/// Tuning knobs for [`execute_plan`] / [`execute_assignments`] — every
/// engine behaviour that is not the schedule itself lives here: stealing,
/// prefetch, the retry budget, the fault plan, and the telemetry sink.
#[derive(Clone, Default)]
pub struct ExecOptions {
    /// Reuse-aware intra-stage work stealing: idle workers take tasks from
    /// the back of other workers' queues, but only tasks whose operands
    /// they already hold (no extra transfers on the modelled device).
    pub steal: bool,
    /// Overlap operand staging with compute: a per-stage prefetch thread
    /// warms the tensor store with the stage's operands while workers
    /// crunch — the execution-engine analogue of the simulator's
    /// asynchronous copy engine.
    pub prefetch: bool,
    /// Maximum attempts per kernel under transient faults. `0` and `1`
    /// both mean "no retry": the first transient failure is final.
    pub max_attempts: u32,
    /// Base delay of the exponential backoff between retry attempts:
    /// attempt `n` waits `base_delay · 2^(n-1)`, capped at 100 ms.
    pub base_delay: Duration,
    /// Deterministic fault plan to inject (transfer timeouts, transient
    /// kernel faults, device losses). [`FaultPlan::none`] — the default —
    /// is behaviour-neutral.
    pub faults: FaultPlan,
    /// Telemetry sink for wall-clock spans. `None` (the default) records
    /// nothing and costs nothing beyond per-task busy accounting.
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for ExecOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecOptions")
            .field("steal", &self.steal)
            .field("prefetch", &self.prefetch)
            .field("max_attempts", &self.max_attempts)
            .field("base_delay", &self.base_delay)
            .field("faults", &self.faults)
            .field("trace", &self.trace.as_ref().map(|_| "dyn TraceSink"))
            .finish()
    }
}

impl ExecOptions {
    /// Options with stealing enabled.
    pub fn with_steal(mut self) -> Self {
        self.steal = true;
        self
    }

    /// Options with operand prefetch enabled.
    pub fn with_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }

    /// Options with bounded-backoff retry: up to `max_attempts` attempts
    /// per kernel, sleeping `base_delay · 2^(attempt-1)` between attempts.
    pub fn retry(mut self, max_attempts: u32, base_delay: Duration) -> Self {
        self.max_attempts = max_attempts;
        self.base_delay = base_delay;
        self
    }

    /// Options with a deterministic fault plan to inject.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Options recording wall-clock telemetry to `sink`.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }
}

/// Why the execution engine refused to run a schedule.
///
/// These used to be `panic!`/`assert!` contract violations; they are now
/// typed errors so callers (the CLI in particular) can report them without
/// aborting the process.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// `workers == 0` — there is nobody to run the kernels.
    NoWorkers,
    /// The assignment slice does not cover the stream's tasks.
    AssignmentShortfall {
        /// Tasks in the stream.
        expected: usize,
        /// Assignments provided.
        got: usize,
    },
    /// An assignment names a device outside the worker pool.
    DeviceOutOfRange {
        /// Offending device index.
        gpu: usize,
        /// Worker-pool size.
        workers: usize,
    },
    /// A [`SchedulePlan`] failed validation against the stream.
    Plan(PlanError),
    /// A kernel rejected its operands — the stream fed it incompatible
    /// shapes.
    ShapeMismatch {
        /// Task whose contraction failed.
        task: u64,
        /// Left operand (batch, dim).
        lhs: (usize, usize),
        /// Right operand (batch, dim).
        rhs: (usize, usize),
    },
    /// A worker thread failed: it panicked, or a transient fault outlived
    /// the retry budget. A panic is caught at the join and reported here
    /// instead of aborting the process.
    WorkerFailed {
        /// Device index of the failed worker, when attributable.
        gpu: Option<usize>,
        /// Task being executed when the worker failed, when known.
        task: Option<u64>,
        /// Human-readable failure cause (panic payload or fault detail).
        cause: String,
    },
    /// Every worker was lost before `stage` — nobody left to drain it.
    AllWorkersLost {
        /// First stage with no surviving worker.
        stage: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoWorkers => write!(f, "need at least one worker"),
            ExecError::AssignmentShortfall { expected, got } => write!(
                f,
                "assignments must cover every task: stream has {expected}, got {got}"
            ),
            ExecError::DeviceOutOfRange { gpu, workers } => {
                write!(f, "assignment to device {gpu} ≥ {workers} workers")
            }
            ExecError::Plan(e) => write!(f, "invalid plan: {e}"),
            ExecError::ShapeMismatch { task, lhs, rhs } => write!(
                f,
                "task {task}: shape mismatch lhs (batch {}, dim {}) vs rhs (batch {}, dim {})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            ExecError::WorkerFailed { gpu, task, cause } => {
                write!(f, "worker")?;
                if let Some(g) = gpu {
                    write!(f, " {g}")?;
                }
                if let Some(t) = task {
                    write!(f, " (task {t})")?;
                }
                write!(f, " failed: {cause}")
            }
            ExecError::AllWorkersLost { stage } => {
                write!(f, "all workers lost before stage {stage}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::Plan(e)
    }
}

/// Result of executing a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Wall-clock seconds of the parallel execution.
    pub wall_secs: f64,
    /// Kernels *assigned* per worker by the schedule (the conformance
    /// contract against `ScheduleReport.assignments` — independent of
    /// stealing).
    pub per_worker_tasks: Vec<usize>,
    /// Kernels actually *executed* per worker. Equal to
    /// `per_worker_tasks` unless stealing moved work.
    pub per_worker_executed: Vec<usize>,
    /// Wall-clock seconds each worker spent inside kernels (operand
    /// staging, backoff sleeps, and queue contention excluded). The
    /// compute-track spans of a traced run sum to exactly these values —
    /// the real-backend analogue of the simulator's per-GPU busy seconds.
    pub per_worker_busy_secs: Vec<f64>,
    /// Tasks that ran on a different worker than assigned.
    pub steals: usize,
    /// Order-independent checksum: per-task output traces summed in task
    /// order (bit-identical across schedulers, worker counts, and
    /// execution modes).
    pub checksum: Complex64,
    /// Total kernels computed.
    pub kernels: usize,
    /// Injected faults that fired during execution (kernel faults and
    /// transfer timeouts; device losses are counted in `lost_workers`).
    pub faults: u64,
    /// Retried attempts after transient faults.
    pub retries: u64,
    /// Workers that were lost — transiently or permanently — in at least
    /// one stage of the run.
    pub lost_workers: usize,
}

/// Execute `stream` with real kernels following the per-task device
/// `assignments` (one per task, in stream task order — exactly what
/// [`micco_core::ScheduleReport::assignments`] provides). Devices map to
/// worker threads; stages are barriers, as on the simulated machine.
/// Everything else — stealing, prefetch, retries, fault injection, and
/// telemetry — is configured through [`ExecOptions`].
///
/// # Examples
///
/// ```
/// use micco_core::{run_schedule, MiccoScheduler, ReuseBounds};
/// use micco_exec::{execute_assignments, ExecOptions, TensorStore};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let stream = WorkloadSpec::new(4, 8).with_batch(2).with_vectors(2).generate();
/// let report = run_schedule(
///     &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
///     &stream,
///     &MachineConfig::mi100_like(2),
/// ).unwrap();
/// let store = TensorStore::new(2, 8, 7);
/// let out = execute_assignments(&stream, &report.assignments, 2, &store, &ExecOptions::default())
///     .unwrap();
/// assert_eq!(out.kernels, stream.total_tasks());
/// assert!(out.checksum.is_finite());
/// ```
///
/// # Errors
///
/// Returns [`ExecError`] if `assignments` does not cover every task of
/// `stream`, if an assignment names a device ≥ `workers`, if
/// `workers == 0`, or — under a fault plan — when a transient fault
/// outlives the retry budget ([`ExecError::WorkerFailed`]) or no worker
/// survives a stage ([`ExecError::AllWorkersLost`]).
pub fn execute_assignments(
    stream: &TensorPairStream,
    assignments: &[Assignment],
    workers: usize,
    store: &TensorStore,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    if workers == 0 {
        return Err(ExecError::NoWorkers);
    }
    if assignments.len() != stream.total_tasks() {
        return Err(ExecError::AssignmentShortfall {
            expected: stream.total_tasks(),
            got: assignments.len(),
        });
    }
    if let Some(a) = assignments.iter().find(|a| a.gpu.0 >= workers) {
        return Err(ExecError::DeviceOutOfRange {
            gpu: a.gpu.0,
            workers,
        });
    }
    execute_unchecked(stream, assignments, workers, store, opts)
}

/// Execute a validated [`SchedulePlan`] with real kernels — the canonical
/// plan-IR entry point of the engine. The plan's device count sizes the
/// worker pool, and [`SchedulePlan::validate`] runs first, so a stale or
/// foreign plan is a typed error instead of a panic deep in a worker
/// thread.
///
/// # Examples
///
/// ```
/// use micco_core::{plan_schedule, MiccoScheduler, ReuseBounds};
/// use micco_exec::{execute_plan, ExecOptions, TensorStore};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let stream = WorkloadSpec::new(4, 8).with_batch(2).with_vectors(2).generate();
/// let plan = plan_schedule(
///     &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
///     &stream,
///     &MachineConfig::mi100_like(2),
/// ).unwrap();
/// let store = TensorStore::new(2, 8, 7);
/// let out = execute_plan(&stream, &plan, &store, &ExecOptions::default()).unwrap();
/// assert_eq!(out.kernels, stream.total_tasks());
/// ```
///
/// # Errors
///
/// Returns [`ExecError::Plan`] when the plan does not validate against
/// `stream`, [`ExecError::NoWorkers`] for a zero-device plan, and the
/// fault-path errors of [`execute_assignments`].
pub fn execute_plan(
    stream: &TensorPairStream,
    plan: &SchedulePlan,
    store: &TensorStore,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    plan.validate(stream)?;
    if plan.num_gpus == 0 {
        return Err(ExecError::NoWorkers);
    }
    execute_unchecked(stream, &plan.flat_assignments(), plan.num_gpus, store, opts)
}

/// Wall-clock telemetry shared by the stage runners: a sink, the run's
/// epoch, and a flow-id counter for steal arrows.
struct Telemetry {
    sink: Arc<dyn TraceSink>,
    t0: Instant,
    next_flow: AtomicU64,
}

impl Telemetry {
    /// Microseconds since the run started.
    fn now_us(&self) -> f64 {
        self.t0.elapsed().as_secs_f64() * 1e6
    }

    fn span(&self, pid: u32, track: Track, name: String, start_us: f64, dur_us: f64) {
        self.span_with(pid, track, name, start_us, dur_us, Vec::new());
    }

    #[allow(clippy::too_many_arguments)]
    fn span_with(
        &self,
        pid: u32,
        track: Track,
        name: String,
        start_us: f64,
        dur_us: f64,
        args: Vec<(String, String)>,
    ) {
        self.sink.record(TraceEvent::Span {
            pid,
            track,
            name,
            start_us,
            dur_us,
            args,
        });
    }

    fn instant(&self, pid: u32, track: Track, name: String, args: Vec<(String, String)>) {
        self.sink.record(TraceEvent::Instant {
            pid,
            track,
            name,
            ts_us: self.now_us(),
            args,
        });
    }

    /// A steal arrow: victim's compute track → thief's compute track.
    fn steal_flow(&self, victim: usize, thief: usize, task: u64) {
        let id = self.next_flow.fetch_add(1, Ordering::Relaxed);
        let ts_us = self.now_us();
        self.sink.record(TraceEvent::Flow {
            id,
            name: format!("steal task {task}"),
            from: FlowPoint {
                pid: victim as u32,
                track: Track::Compute,
                ts_us,
            },
            to: FlowPoint {
                pid: thief as u32,
                track: Track::Compute,
                ts_us,
            },
        });
    }
}

/// Shared fault-injection context handed down to the stage runners.
struct FaultCtx<'a> {
    faults: &'a FaultPlan,
    max_attempts: u32,
    base_delay: Duration,
    fault_events: &'a AtomicU64,
    retry_events: &'a AtomicU64,
    tele: Option<&'a Telemetry>,
}

impl FaultCtx<'_> {
    /// Sleep the bounded exponential backoff before retry `attempt`.
    fn backoff(&self, attempt: u32) {
        if self.base_delay.is_zero() {
            return;
        }
        let exp = attempt.saturating_sub(1).min(16);
        let delay = self
            .base_delay
            .saturating_mul(1 << exp)
            .min(Duration::from_millis(100));
        std::thread::sleep(delay);
    }
}

/// Render a worker thread's panic payload into a typed [`ExecError`].
fn panic_to_error(gpu: Option<usize>, payload: Box<dyn Any + Send>) -> ExecError {
    let cause = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    };
    ExecError::WorkerFailed {
        gpu,
        task: None,
        cause,
    }
}

/// Fold an explicitly joined worker result into the engine's error type:
/// a panic becomes [`ExecError::WorkerFailed`] instead of aborting the
/// process.
fn join_worker<T>(
    gpu: usize,
    joined: std::thread::Result<Result<T, ExecError>>,
) -> Result<T, ExecError> {
    match joined {
        Ok(r) => r,
        Err(payload) => Err(panic_to_error(Some(gpu), payload)),
    }
}

/// The engine proper. Inputs are already validated: `workers > 0`, one
/// assignment per task, every device in range.
fn execute_unchecked(
    stream: &TensorPairStream,
    assignments: &[Assignment],
    workers: usize,
    store: &TensorStore,
    opts: &ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    let t0 = Instant::now();
    let tele = opts.trace.as_ref().map(|sink| Telemetry {
        sink: Arc::clone(sink),
        t0,
        next_flow: AtomicU64::new(0),
    });
    if let Some(t) = &tele {
        for w in 0..workers {
            t.sink.record(TraceEvent::ProcessLabel {
                pid: w as u32,
                label: format!("worker{w}"),
            });
        }
    }
    let faults = &opts.faults;
    let mut per_worker_tasks = vec![0usize; workers];
    let mut per_worker_executed = vec![0usize; workers];
    let mut per_worker_busy_secs = vec![0f64; workers];
    let steals = AtomicUsize::new(0);
    let fault_events = AtomicU64::new(0);
    let retry_events = AtomicU64::new(0);
    let fx = FaultCtx {
        faults,
        max_attempts: opts.max_attempts,
        base_delay: opts.base_delay,
        fault_events: &fault_events,
        retry_events: &retry_events,
        tele: tele.as_ref(),
    };
    // A device loss strands the victim's queue, so those runs go through
    // the stealing path: survivors drain the lost workers' work.
    let any_loss = (0..workers).any(|g| faults.loss_of(g).is_some());
    let steal_mode = opts.steal || any_loss;
    // the modelled residency of each worker's device: operands and outputs
    // of tasks it executed (persists across stages, like device memory)
    let mut residents: Vec<HashSet<TensorId>> = vec![HashSet::new(); workers];
    // per-task traces, collected in global task order so the final
    // checksum reduction is order-fixed regardless of thread interleaving
    let mut traces: Vec<Complex64> = vec![Complex64::ZERO; stream.total_tasks()];
    let mut offset = 0usize;

    for (stage, vector) in stream.vectors.iter().enumerate() {
        let stage_start_us = tele.as_ref().map(|t| t.now_us());
        let lost: Vec<bool> = (0..workers).map(|w| faults.is_lost(w, stage)).collect();
        if lost.iter().all(|&l| l) {
            return Err(ExecError::AllWorkersLost { stage });
        }
        for (w, &l) in lost.iter().enumerate() {
            if l {
                // the device rebooted (transient) or died (permanent):
                // either way its modelled memory is gone
                residents[w].clear();
                if let Some(t) = &tele {
                    t.instant(
                        w as u32,
                        Track::Compute,
                        format!("device lost (stage {stage})"),
                        Vec::new(),
                    );
                }
            }
        }
        let stage_assign = &assignments[offset..offset + vector.len()];
        // partition this stage's task indices per worker
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (i, a) in stage_assign.iter().enumerate() {
            debug_assert_eq!(
                a.task, vector.tasks[i].id,
                "assignment order must match stream"
            );
            buckets[a.gpu.0].push(i);
        }
        for (w, b) in buckets.iter().enumerate() {
            per_worker_tasks[w] += b.len();
        }
        let stage_traces = &mut traces[offset..offset + vector.len()];
        if steal_mode {
            run_stage_stealing(
                vector,
                &buckets,
                &mut residents,
                store,
                stage_traces,
                &steals,
                &mut per_worker_executed,
                &mut per_worker_busy_secs,
                opts.prefetch,
                &fx,
                &lost,
            )?;
        } else {
            run_stage_static(
                vector,
                &buckets,
                store,
                stage_traces,
                &mut per_worker_busy_secs,
                opts.prefetch,
                &fx,
            )?;
            for (w, b) in buckets.iter().enumerate() {
                per_worker_executed[w] += b.len();
            }
        }
        if let (Some(t), Some(start)) = (&tele, stage_start_us) {
            t.span(
                CONTROL_PID,
                Track::Control,
                format!("stage {stage}"),
                start,
                t.now_us() - start,
            );
        }
        offset += vector.len();
    }

    let checksum = traces.iter().copied().sum();
    let stages = stream.vectors.len();
    let lost_workers = (0..workers)
        .filter(|&w| faults.loss_of(w).is_some_and(|(s, _)| s < stages))
        .count();
    if let Some(t) = &tele {
        let end = t.now_us();
        t.span(CONTROL_PID, Track::Run, "exec".to_owned(), 0.0, end);
    }
    Ok(ExecOutcome {
        wall_secs: t0.elapsed().as_secs_f64(),
        per_worker_tasks,
        per_worker_executed,
        per_worker_busy_secs,
        steals: steals.into_inner(),
        checksum,
        kernels: stream.total_tasks(),
        faults: fault_events.into_inner(),
        retries: retry_events.into_inner(),
        lost_workers,
    })
}

/// Run one task's kernel: fetch operands, contract, register the output,
/// and return the per-task trace (computed sequentially per batch element —
/// no cross-thread reduction ⇒ bitwise determinism).
fn run_task(store: &TensorStore, vector: &Vector, i: usize) -> Result<Complex64, ExecError> {
    let task = &vector.tasks[i];
    let a = store.fetch(task.a.id);
    let b = store.fetch(task.b.id);
    let out = a.matmul(&b).map_err(|e| match e {
        TensorError::ShapeMismatch { lhs, rhs } => ExecError::ShapeMismatch {
            task: task.id.0,
            lhs,
            rhs,
        },
        other => ExecError::WorkerFailed {
            gpu: None,
            task: Some(task.id.0),
            cause: other.to_string(),
        },
    })?;
    let mut tr = Complex64::ZERO;
    for bi in 0..out.batch() {
        tr += out.element(bi).trace();
    }
    store.insert(task.out.id, Arc::new(out));
    Ok(tr)
}

/// [`run_task`] under the fault plan and the telemetry layer. A transfer
/// timeout re-stages the operands once per charged retry; a transient
/// kernel fault burns attempts from the retry budget (with exponential
/// backoff) before its deterministic success — or exhausts the budget into
/// a typed [`ExecError::WorkerFailed`]. Returns the per-task trace plus
/// the wall-clock seconds spent inside the kernel (the duration of the
/// compute span it records when tracing is on — span sums and busy sums
/// agree exactly by construction).
fn run_task_faulty(
    store: &TensorStore,
    vector: &Vector,
    i: usize,
    gpu: usize,
    fx: &FaultCtx<'_>,
) -> Result<(Complex64, f64), ExecError> {
    let task = &vector.tasks[i];
    let pid = gpu as u32;
    let timeouts = fx.faults.transfer_retries(task.id.0);
    if timeouts > 0 {
        fx.fault_events.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = fx.tele {
            t.instant(
                pid,
                Track::Copy,
                format!("transfer timeout task {}", task.id.0),
                vec![("retries".to_owned(), timeouts.to_string())],
            );
        }
        for attempt in 1..=timeouts {
            fx.retry_events.fetch_add(1, Ordering::Relaxed);
            fx.backoff(attempt);
            store.fetch(task.a.id);
            store.fetch(task.b.id);
        }
    }
    let kernel_faults = fx.faults.kernel_failures(task.id.0);
    if kernel_faults > 0 {
        fx.fault_events.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = fx.tele {
            t.instant(
                pid,
                Track::Compute,
                format!("fault task {}", task.id.0),
                vec![("transient_failures".to_owned(), kernel_faults.to_string())],
            );
        }
        let budget = fx.max_attempts.max(1);
        if kernel_faults >= budget {
            return Err(ExecError::WorkerFailed {
                gpu: Some(gpu),
                task: Some(task.id.0),
                cause: format!("transient kernel fault persisted through {budget} attempt(s)"),
            });
        }
        for attempt in 1..=kernel_faults {
            fx.retry_events.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = fx.tele {
                t.instant(
                    pid,
                    Track::Compute,
                    format!("retry task {}", task.id.0),
                    vec![("attempt".to_owned(), attempt.to_string())],
                );
            }
            fx.backoff(attempt);
        }
    }
    // operand staging: with tracing on, warm the store explicitly so the
    // fetch cost lands on the worker's copy track (the fetches are cached,
    // so the kernel's own fetches below are then free)
    if let Some(t) = fx.tele {
        let cs = t.now_us();
        store.fetch(task.a.id);
        store.fetch(task.b.id);
        let ce = t.now_us();
        if ce > cs {
            // the `task` arg ties the transfer span to its consumer — the
            // happens-before certifier's W205 check keys on it
            t.span_with(
                pid,
                Track::Copy,
                format!("fetch t{}/t{}", task.a.id.0, task.b.id.0),
                cs,
                ce - cs,
                vec![("task".to_owned(), task.id.0.to_string())],
            );
        }
    }
    let span_start_us = fx.tele.map(|t| t.now_us());
    let k0 = Instant::now();
    let tr = run_task(store, vector, i)?;
    let busy = k0.elapsed().as_secs_f64();
    if let (Some(t), Some(start)) = (fx.tele, span_start_us) {
        t.span(
            pid,
            Track::Compute,
            format!("task {}", task.id.0),
            start,
            busy * 1e6,
        );
    }
    Ok((tr, busy))
}

/// Static replay: one scoped thread per non-empty bucket; the scope join
/// is the stage barrier. Every handle — workers and prefetcher — is
/// joined explicitly, so a panicking thread surfaces as
/// [`ExecError::WorkerFailed`] instead of unwinding through the scope.
fn run_stage_static(
    vector: &Vector,
    buckets: &[Vec<usize>],
    store: &TensorStore,
    stage_traces: &mut [Complex64],
    per_worker_busy_secs: &mut [f64],
    prefetch: bool,
    fx: &FaultCtx<'_>,
) -> Result<(), ExecError> {
    let trace_slices = split_by_buckets(stage_traces, buckets);
    let scoped = crossbeam::thread::scope(|scope| -> Result<Vec<(usize, f64)>, ExecError> {
        let prefetcher = prefetch.then(|| {
            scope.spawn(move |_| {
                for t in &vector.tasks {
                    store.fetch(t.a.id);
                    store.fetch(t.b.id);
                }
            })
        });
        let handles: Vec<_> = buckets
            .iter()
            .zip(trace_slices)
            .enumerate()
            .filter(|(_, (bucket, _))| !bucket.is_empty())
            .map(|(w, (bucket, slots))| {
                let h = scope.spawn(move |_| -> Result<f64, ExecError> {
                    let mut busy = 0.0;
                    for (&i, slot) in bucket.iter().zip(slots) {
                        let (tr, b) = run_task_faulty(store, vector, i, w, fx)?;
                        *slot = tr;
                        busy += b;
                    }
                    Ok(busy)
                });
                (w, h)
            })
            .collect();
        let mut busy_per: Vec<(usize, f64)> = Vec::new();
        let mut first_err = None;
        for (w, h) in handles {
            match join_worker(w, h.join()) {
                Ok(busy) => busy_per.push((w, busy)),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(h) = prefetcher {
            if let Err(payload) = h.join() {
                first_err.get_or_insert(panic_to_error(None, payload));
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(busy_per),
        }
    });
    let busy_per = scoped.unwrap_or_else(|payload| Err(panic_to_error(None, payload)))?;
    for (w, busy) in busy_per {
        per_worker_busy_secs[w] += busy;
    }
    Ok(())
}

/// Work-stealing stage: per-worker deques; a worker drains its own queue
/// from the front, then scans victims' queues from the back for tasks
/// whose operands it already holds. Results come back through the join
/// handles tagged with their stage-local task index, so the caller writes
/// them into the order-fixed trace array.
#[allow(clippy::too_many_arguments)]
fn run_stage_stealing(
    vector: &Vector,
    buckets: &[Vec<usize>],
    residents: &mut [HashSet<TensorId>],
    store: &TensorStore,
    stage_traces: &mut [Complex64],
    steals: &AtomicUsize,
    per_worker_executed: &mut [usize],
    per_worker_busy_secs: &mut [f64],
    prefetch: bool,
    fx: &FaultCtx<'_>,
    lost: &[bool],
) -> Result<(), ExecError> {
    let workers = buckets.len();
    let queues: Vec<Mutex<VecDeque<usize>>> = buckets
        .iter()
        .map(|b| Mutex::new(b.iter().copied().collect()))
        .collect();
    // queue-ordering events: one push per seeded task, so a trace reader
    // can replay the deque history against the pops recorded below
    if let Some(t) = fx.tele {
        for (w, bucket) in buckets.iter().enumerate() {
            for &i in bucket {
                t.instant(
                    w as u32,
                    Track::Control,
                    format!("queue push task {}", vector.tasks[i].id.0),
                    Vec::new(),
                );
            }
        }
    }
    type StageDone = (Vec<(usize, Complex64)>, f64);
    let scoped = crossbeam::thread::scope(|scope| -> Result<Vec<StageDone>, ExecError> {
        let prefetcher = prefetch.then(|| {
            scope.spawn(move |_| {
                for t in &vector.tasks {
                    store.fetch(t.a.id);
                    store.fetch(t.b.id);
                }
            })
        });
        // lost workers spawn no thread: their queues sit as carrion for
        // the survivors' drain path in `steal_one`
        let handles: Vec<_> = residents
            .iter_mut()
            .enumerate()
            .filter(|(w, _)| !lost[*w])
            .map(|(w, resident)| {
                let queues = &queues;
                let h = scope.spawn(move |_| -> Result<StageDone, ExecError> {
                    let mut done: Vec<(usize, Complex64)> = Vec::new();
                    let mut busy = 0.0;
                    loop {
                        let own = queues[w].lock().pop_front();
                        let (i, stolen_from) = match own {
                            Some(i) => (i, None),
                            None => match steal_one(queues, w, vector, resident, lost) {
                                Some((victim, i)) => (i, Some(victim)),
                                None => break,
                            },
                        };
                        if let Some(victim) = stolen_from {
                            steals.fetch_add(1, Ordering::Relaxed);
                            if let Some(t) = fx.tele {
                                t.steal_flow(victim, w, vector.tasks[i].id.0);
                            }
                        }
                        if let Some(t) = fx.tele {
                            let args = match stolen_from {
                                Some(v) => vec![("stolen_from".to_owned(), v.to_string())],
                                None => Vec::new(),
                            };
                            t.instant(
                                w as u32,
                                Track::Control,
                                format!("queue pop task {}", vector.tasks[i].id.0),
                                args,
                            );
                        }
                        let (tr, b) = run_task_faulty(store, vector, i, w, fx)?;
                        busy += b;
                        let task = &vector.tasks[i];
                        resident.insert(task.a.id);
                        resident.insert(task.b.id);
                        resident.insert(task.out.id);
                        done.push((i, tr));
                    }
                    Ok((done, busy))
                });
                (w, h)
            })
            .collect();
        let mut per: Vec<StageDone> = vec![(Vec::new(), 0.0); workers];
        let mut first_err = None;
        for (w, h) in handles {
            match join_worker(w, h.join()) {
                Ok(done) => per[w] = done,
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(h) = prefetcher {
            if let Err(payload) = h.join() {
                first_err.get_or_insert(panic_to_error(None, payload));
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(per),
        }
    });
    let per = scoped.unwrap_or_else(|payload| Err(panic_to_error(None, payload)))?;
    for (w, (rs, busy)) in per.into_iter().enumerate() {
        per_worker_executed[w] += rs.len();
        per_worker_busy_secs[w] += busy;
        for (i, tr) in rs {
            stage_traces[i] = tr;
        }
    }
    Ok(())
}

/// Pop one steal-eligible task for `thief`: scanning other workers'
/// queues, take from the *back* (the victim's coldest work) the first
/// task whose operands the thief already holds. A *lost* victim cannot
/// run anything itself, so its queue is drained from the *front*
/// unconditionally — the reuse gate would strand its tasks. Returns the
/// victim's index alongside the stolen stage-local task index.
fn steal_one(
    queues: &[Mutex<VecDeque<usize>>],
    thief: usize,
    vector: &Vector,
    resident: &HashSet<TensorId>,
    lost: &[bool],
) -> Option<(usize, usize)> {
    for (v, queue) in queues.iter().enumerate() {
        if v == thief {
            continue;
        }
        let mut q = queue.lock();
        if lost[v] {
            if let Some(i) = q.pop_front() {
                return Some((v, i));
            }
            continue;
        }
        if let Some(pos) = q.iter().rposition(|&i| {
            let t = &vector.tasks[i];
            resident.contains(&t.a.id) && resident.contains(&t.b.id)
        }) {
            return q.remove(pos).map(|i| (v, i));
        }
    }
    None
}

/// Split `slice` into per-bucket mutable views: bucket `w` receives one
/// `&mut Complex64` per entry, in order. Implemented with `split_first_mut`
/// walking the slice once per bucket ordering — buckets index disjoint
/// positions, so we hand out raw disjoint sub-borrows via sorting.
fn split_by_buckets<'a>(
    slice: &'a mut [Complex64],
    buckets: &[Vec<usize>],
) -> Vec<Vec<&'a mut Complex64>> {
    // Decorate every slot with its bucket, then walk the slice once,
    // routing each &mut to its bucket — safe disjoint splitting without
    // unsafe code.
    let mut owner: Vec<usize> = vec![usize::MAX; slice.len()];
    for (w, bucket) in buckets.iter().enumerate() {
        for &i in bucket {
            owner[i] = w;
        }
    }
    let mut out: Vec<Vec<&mut Complex64>> = (0..buckets.len()).map(|_| Vec::new()).collect();
    for (slot, &w) in slice.iter_mut().zip(&owner) {
        if w != usize::MAX {
            out[w].push(slot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use micco_core::{
        run_schedule, GrouteScheduler, MiccoScheduler, ReuseBounds, RoundRobinScheduler, Scheduler,
    };
    use micco_gpusim::MachineConfig;
    use micco_obs::Recorder;
    use micco_workload::WorkloadSpec;

    const SHAPE: TensorShape = TensorShape { batch: 2, dim: 8 };

    fn stream() -> TensorPairStream {
        WorkloadSpec::new(12, SHAPE.dim)
            .with_batch(SHAPE.batch)
            .with_repeat_rate(0.6)
            .with_vectors(3)
            .with_seed(21)
            .generate()
    }

    fn store(seed: u64) -> TensorStore {
        TensorStore::new(SHAPE.batch, SHAPE.dim, seed)
    }

    fn exec(
        stream: &TensorPairStream,
        assignments: &[Assignment],
        workers: usize,
        seed: u64,
        opts: &ExecOptions,
    ) -> Result<ExecOutcome, ExecError> {
        execute_assignments(stream, assignments, workers, &store(seed), opts)
    }

    fn assignments_for(
        s: &mut dyn Scheduler,
        stream: &TensorPairStream,
        gpus: usize,
    ) -> Vec<Assignment> {
        run_schedule(s, stream, &MachineConfig::mi100_like(gpus))
            .expect("fits")
            .assignments
    }

    #[test]
    fn executes_and_counts() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 4);
        let out = exec(&stream, &assignments, 4, 5, &ExecOptions::default()).unwrap();
        assert_eq!(out.kernels, stream.total_tasks());
        assert_eq!(
            out.per_worker_tasks.iter().sum::<usize>(),
            stream.total_tasks()
        );
        assert!(out.checksum.is_finite());
        assert!(out.wall_secs >= 0.0);
        assert_eq!(out.per_worker_busy_secs.len(), 4);
        assert!(out.per_worker_busy_secs.iter().all(|&b| b >= 0.0));
    }

    #[test]
    fn checksum_is_scheduler_invariant() {
        let stream = stream();
        let mut checksums = Vec::new();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(GrouteScheduler::new()),
            Box::new(RoundRobinScheduler::new()),
            Box::new(MiccoScheduler::new(ReuseBounds::new(0, 2, 0))),
            Box::new(MiccoScheduler::new(ReuseBounds::unbounded())),
        ];
        for s in schedulers.iter_mut() {
            let assignments = assignments_for(s.as_mut(), &stream, 4);
            checksums.push(
                exec(&stream, &assignments, 4, 5, &ExecOptions::default())
                    .unwrap()
                    .checksum,
            );
        }
        for w in checksums.windows(2) {
            assert_eq!(w[0], w[1], "placement must never change the physics");
        }
    }

    #[test]
    fn checksum_is_worker_count_invariant() {
        let stream = stream();
        let mut reference = None;
        for gpus in [1usize, 2, 3, 8] {
            let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, gpus);
            let out = exec(&stream, &assignments, gpus, 5, &ExecOptions::default()).unwrap();
            if let Some(r) = reference {
                assert_eq!(out.checksum, r, "{gpus} workers changed the checksum");
            } else {
                reference = Some(out.checksum);
            }
        }
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let stream = stream();
        let assignments = assignments_for(&mut MiccoScheduler::naive(), &stream, 3);
        let a = exec(&stream, &assignments, 3, 9, &ExecOptions::default())
            .unwrap()
            .checksum;
        let b = exec(&stream, &assignments, 3, 9, &ExecOptions::default())
            .unwrap()
            .checksum;
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_checksum() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let a = exec(&stream, &assignments, 2, 1, &ExecOptions::default())
            .unwrap()
            .checksum;
        let b = exec(&stream, &assignments, 2, 2, &ExecOptions::default())
            .unwrap()
            .checksum;
        assert_ne!(a, b);
    }

    #[test]
    fn matches_single_threaded_reference() {
        // hand-rolled sequential reference over the same leaf generator
        let stream = WorkloadSpec::new(4, SHAPE.dim)
            .with_batch(SHAPE.batch)
            .with_repeat_rate(0.0)
            .with_vectors(1)
            .with_seed(2)
            .generate();
        let reference = crate::store::TensorStore::new(SHAPE.batch, SHAPE.dim, 77);
        let mut expect = Complex64::ZERO;
        for t in &stream.vectors[0].tasks {
            let out = reference
                .fetch(t.a.id)
                .matmul(&reference.fetch(t.b.id))
                .unwrap();
            // group per task exactly as the engine does — float addition is
            // not associative, and the test demands bit equality
            let mut tr = Complex64::ZERO;
            for bi in 0..out.batch() {
                tr += out.element(bi).trace();
            }
            expect += tr;
        }
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let got = exec(&stream, &assignments, 2, 77, &ExecOptions::default())
            .unwrap()
            .checksum;
        assert_eq!(got, expect);
    }

    #[test]
    fn stealing_preserves_checksum_and_totals() {
        let stream = stream();
        for workers in [1usize, 2, 4] {
            let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, workers);
            let base = exec(&stream, &assignments, workers, 5, &ExecOptions::default()).unwrap();
            let stolen = exec(
                &stream,
                &assignments,
                workers,
                5,
                &ExecOptions::default().with_steal(),
            )
            .unwrap();
            assert_eq!(stolen.checksum, base.checksum, "{workers} workers");
            assert_eq!(stolen.per_worker_tasks, base.per_worker_tasks);
            assert_eq!(
                stolen.per_worker_executed.iter().sum::<usize>(),
                stream.total_tasks(),
                "every task executed exactly once"
            );
            assert_eq!(stolen.kernels, stream.total_tasks());
        }
    }

    #[test]
    fn prefetch_is_checksum_neutral() {
        let stream = stream();
        let assignments = assignments_for(&mut MiccoScheduler::naive(), &stream, 3);
        let base = exec(&stream, &assignments, 3, 9, &ExecOptions::default()).unwrap();
        for opts in [
            ExecOptions::default().with_prefetch(),
            ExecOptions::default().with_steal().with_prefetch(),
        ] {
            let out = exec(&stream, &assignments, 3, 9, &opts).unwrap();
            assert_eq!(out.checksum, base.checksum, "{opts:?}");
        }
    }

    #[test]
    fn static_mode_reports_zero_steals() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let out = exec(&stream, &assignments, 2, 5, &ExecOptions::default()).unwrap();
        assert_eq!(out.steals, 0);
        assert_eq!(out.per_worker_executed, out.per_worker_tasks);
    }

    #[test]
    fn steals_only_move_work_between_workers() {
        // a lopsided hand-built schedule: everything on worker 0, so worker
        // 1 can only help via stealing — and only for operands it holds
        // (none at first, so stage 1 must not be stolen)
        let stream = stream();
        let assignments: Vec<Assignment> = stream
            .vectors
            .iter()
            .flat_map(|v| v.tasks.iter())
            .map(|t| Assignment {
                task: t.id,
                gpu: micco_gpusim::GpuId(0),
            })
            .collect();
        let out = exec(
            &stream,
            &assignments,
            2,
            5,
            &ExecOptions::default().with_steal(),
        )
        .unwrap();
        assert_eq!(out.per_worker_tasks, vec![stream.total_tasks(), 0]);
        assert_eq!(
            out.per_worker_executed.iter().sum::<usize>(),
            stream.total_tasks()
        );
        assert_eq!(
            out.steals, out.per_worker_executed[1],
            "worker 1 only runs stolen work"
        );
        // worker 1 held nothing when stage 0 started, so every stage-0 task
        // stayed on worker 0 — reuse-aware stealing never moves cold tasks
        let stage0 = stream.vectors[0].len();
        assert!(out.per_worker_executed[0] >= stage0);
        // and the physics is unchanged
        let base = exec(&stream, &assignments, 2, 5, &ExecOptions::default()).unwrap();
        assert_eq!(out.checksum, base.checksum);
    }

    #[test]
    fn steal_one_is_reuse_aware_and_takes_from_the_back() {
        use micco_workload::{ContractionTask, TaskId, TensorDesc};
        let t = |id: u64, a: u64, b: u64, out: u64| ContractionTask {
            id: TaskId(id),
            a: TensorDesc {
                id: TensorId(a),
                bytes: 1,
            },
            b: TensorDesc {
                id: TensorId(b),
                bytes: 1,
            },
            out: TensorDesc {
                id: TensorId(out),
                bytes: 1,
            },
            flops: 0,
        };
        // tasks 0 and 2 use tensors {1,2}; task 1 uses {3,4}
        let vector = Vector::new(vec![t(0, 1, 2, 10), t(1, 3, 4, 11), t(2, 1, 2, 12)]);
        let queues = vec![
            Mutex::new(VecDeque::from(vec![0usize, 1, 2])),
            Mutex::new(VecDeque::new()),
        ];
        let resident: HashSet<TensorId> = [TensorId(1), TensorId(2)].into_iter().collect();
        let alive = [false, false];
        // the thief takes eligible work back-to-front, skipping task 1
        assert_eq!(
            steal_one(&queues, 1, &vector, &resident, &alive),
            Some((0, 2))
        );
        assert_eq!(
            steal_one(&queues, 1, &vector, &resident, &alive),
            Some((0, 0))
        );
        assert_eq!(
            steal_one(&queues, 1, &vector, &resident, &alive),
            None,
            "task 1 is cold"
        );
        assert_eq!(
            queues[0].lock().len(),
            1,
            "ineligible work stays with its owner"
        );
        // a worker never steals from itself
        assert_eq!(steal_one(&queues, 0, &vector, &resident, &alive), None);
        // a lost victim is drained from the front, reuse gate waived
        let lost = [true, false];
        assert_eq!(
            steal_one(&queues, 1, &vector, &resident, &lost),
            Some((0, 1)),
            "cold work drains from a lost victim"
        );
    }

    #[test]
    fn short_assignments_are_a_typed_error() {
        let stream = stream();
        let err = exec(&stream, &[], 2, 0, &ExecOptions::default()).unwrap_err();
        assert_eq!(
            err,
            ExecError::AssignmentShortfall {
                expected: stream.total_tasks(),
                got: 0
            }
        );
        assert!(err.to_string().contains("cover every task"));
    }

    #[test]
    fn zero_workers_are_a_typed_error() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 1);
        let err = exec(&stream, &assignments, 0, 0, &ExecOptions::default()).unwrap_err();
        assert_eq!(err, ExecError::NoWorkers);
        assert!(err.to_string().contains("at least one worker"));
    }

    #[test]
    fn out_of_range_device_is_a_typed_error() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 4);
        let err = exec(&stream, &assignments, 2, 0, &ExecOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            ExecError::DeviceOutOfRange { gpu, workers: 2 } if gpu >= 2
        ));
    }

    #[test]
    fn worker_panic_is_a_typed_error() {
        let joined =
            std::thread::spawn(|| -> Result<(), ExecError> { panic!("kernel crashed") }).join();
        let err = join_worker(3, joined).unwrap_err();
        assert!(matches!(
            &err,
            ExecError::WorkerFailed { gpu: Some(3), task: None, cause } if cause.contains("kernel crashed")
        ));
        assert!(err.to_string().contains("worker 3 failed"));
        // a String payload is captured too
        let joined = std::thread::spawn(|| -> Result<(), ExecError> {
            panic!("{}", String::from("owned payload"))
        })
        .join();
        assert!(matches!(
            join_worker(0, joined).unwrap_err(),
            ExecError::WorkerFailed { cause, .. } if cause.contains("owned payload")
        ));
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        use micco_workload::{ContractionTask, TaskId, TensorDesc};
        let store = TensorStore::new(2, 4, 1);
        // pre-register operand b with a different dim than the store default
        store.insert(
            TensorId(8),
            Arc::new(micco_tensor::BatchedMatrix::identity(2, 6)),
        );
        let vector = Vector::new(vec![ContractionTask {
            id: TaskId(0),
            a: TensorDesc {
                id: TensorId(7),
                bytes: 1,
            },
            b: TensorDesc {
                id: TensorId(8),
                bytes: 1,
            },
            out: TensorDesc {
                id: TensorId(9),
                bytes: 1,
            },
            flops: 0,
        }]);
        let err = run_task(&store, &vector, 0).unwrap_err();
        assert!(matches!(err, ExecError::ShapeMismatch { task: 0, .. }));
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn transient_faults_retry_to_the_same_checksum() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let clean = exec(&stream, &assignments, 2, 5, &ExecOptions::default()).unwrap();
        let t0 = stream.vectors[0].tasks[0].id.0;
        let t1 = stream.vectors[0].tasks[1].id.0;
        let faults = FaultPlan::none()
            .with_kernel_fault(t0, 2)
            .with_transfer_timeout(t1, 1);
        let opts = ExecOptions::default()
            .retry(4, Duration::ZERO)
            .with_faults(faults);
        let out = exec(&stream, &assignments, 2, 5, &opts).unwrap();
        assert_eq!(out.checksum, clean.checksum, "faults never change values");
        assert_eq!(out.faults, 2);
        assert_eq!(out.retries, 3);
        assert_eq!(out.lost_workers, 0);
        // the recovery is deterministic: same (seed, FaultPlan) ⇒ same run
        let again = exec(&stream, &assignments, 2, 5, &opts).unwrap();
        assert_eq!(again.checksum, out.checksum);
        assert_eq!(again.retries, out.retries);
    }

    #[test]
    fn exhausted_retry_budget_is_worker_failed() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let tid = stream.vectors[0].tasks[0].id.0;
        let faults = FaultPlan::none().with_kernel_fault(tid, 3);
        // default options: no retry budget, first transient failure is final
        let err = exec(
            &stream,
            &assignments,
            2,
            5,
            &ExecOptions::default().with_faults(faults.clone()),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ExecError::WorkerFailed { task: Some(t), .. } if t == tid
        ));
        // a budget larger than the fault count rides it out
        let opts = ExecOptions::default()
            .retry(4, Duration::ZERO)
            .with_faults(faults);
        assert!(exec(&stream, &assignments, 2, 5, &opts).is_ok());
    }

    #[test]
    fn permanent_single_gpu_loss_preserves_checksum() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let clean = exec(&stream, &assignments, 2, 5, &ExecOptions::default()).unwrap();
        // gpu 1 dies at stage 1 and never returns
        let faults = FaultPlan::none().with_device_loss(1, 1, true);
        let opts = ExecOptions::default().with_faults(faults);
        let out = exec(&stream, &assignments, 2, 5, &opts).unwrap();
        assert_eq!(
            out.checksum, clean.checksum,
            "survivors drain the dead queue"
        );
        assert_eq!(out.lost_workers, 1);
        assert_eq!(
            out.per_worker_executed.iter().sum::<usize>(),
            stream.total_tasks(),
            "every task executed exactly once"
        );
        assert_eq!(out.per_worker_tasks, clean.per_worker_tasks);
        let again = exec(&stream, &assignments, 2, 5, &opts).unwrap();
        assert_eq!(again.checksum, out.checksum, "recovery is deterministic");
    }

    #[test]
    fn transient_loss_returns_the_worker_next_stage() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 3);
        let clean = exec(&stream, &assignments, 3, 5, &ExecOptions::default()).unwrap();
        // gpu 2 flakes in stage 0 only
        let faults = FaultPlan::none().with_device_loss(2, 0, false);
        let out = exec(
            &stream,
            &assignments,
            3,
            5,
            &ExecOptions::default().with_faults(faults),
        )
        .unwrap();
        assert_eq!(out.checksum, clean.checksum);
        assert_eq!(out.lost_workers, 1);
        assert_eq!(
            out.per_worker_executed.iter().sum::<usize>(),
            stream.total_tasks()
        );
    }

    #[test]
    fn all_workers_lost_is_a_typed_error() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let faults = FaultPlan::none()
            .with_device_loss(0, 0, true)
            .with_device_loss(1, 0, true);
        let err = exec(
            &stream,
            &assignments,
            2,
            5,
            &ExecOptions::default().with_faults(faults),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::AllWorkersLost { stage: 0 });
        assert!(err.to_string().contains("all workers lost"));
    }

    #[test]
    fn empty_fault_plan_is_behavior_neutral() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let base = exec(&stream, &assignments, 2, 5, &ExecOptions::default()).unwrap();
        let via_faults = exec(
            &stream,
            &assignments,
            2,
            5,
            &ExecOptions::default().with_faults(FaultPlan::none()),
        )
        .unwrap();
        assert_eq!(via_faults.checksum, base.checksum);
        assert_eq!(via_faults.faults, 0);
        assert_eq!(via_faults.retries, 0);
        assert_eq!(via_faults.lost_workers, 0);
        assert_eq!(via_faults.per_worker_executed, base.per_worker_executed);
    }

    #[test]
    fn plan_path_matches_slice_path() {
        use micco_core::{plan_schedule, run_schedule};
        use micco_gpusim::MachineConfig;

        let stream = stream();
        let cfg = MachineConfig::mi100_like(3);
        let report = run_schedule(
            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
        )
        .unwrap();
        let plan = plan_schedule(
            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
        )
        .unwrap();
        let via_slices = exec(&stream, &report.assignments, 3, 5, &ExecOptions::default()).unwrap();
        let via_plan = execute_plan(&stream, &plan, &store(5), &ExecOptions::default()).unwrap();
        assert_eq!(via_plan.checksum, via_slices.checksum);
        assert_eq!(via_plan.per_worker_tasks, via_slices.per_worker_tasks);
        assert_eq!(via_plan.kernels, via_slices.kernels);
    }

    #[test]
    fn stale_plan_is_rejected_before_any_kernel_runs() {
        use micco_core::{plan_schedule, PlanError};
        use micco_gpusim::MachineConfig;

        let stream = stream();
        let plan = plan_schedule(
            &mut RoundRobinScheduler::new(),
            &stream,
            &MachineConfig::mi100_like(2),
        )
        .unwrap();
        // mutate the workload after planning: the fingerprint catches it
        let mut drifted = stream.clone();
        drifted.vectors[0].tasks[0].flops += 1;
        let err = execute_plan(&drifted, &plan, &store(5), &ExecOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Plan(PlanError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn canonical_entry_points_agree_bit_for_bit() {
        use micco_core::plan_schedule;
        use micco_gpusim::MachineConfig;

        let stream = stream();
        let cfg = MachineConfig::mi100_like(3);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let assignments = plan.flat_assignments();
        let faults = FaultPlan::none().with_kernel_fault(stream.vectors[0].tasks[0].id.0, 1);

        // the two canonical entries — assignment slice vs plan IR — are
        // one engine: identical checksums for the same placement
        let via_assignments = exec(&stream, &assignments, 3, 5, &ExecOptions::default()).unwrap();
        let via_plan = execute_plan(&stream, &plan, &store(5), &ExecOptions::default()).unwrap();
        assert_eq!(via_assignments.checksum, via_plan.checksum);
        assert_eq!(via_assignments.per_worker_tasks, via_plan.per_worker_tasks);

        // execution-side knobs reorder work but never change the result
        let steal = exec(
            &stream,
            &assignments,
            3,
            5,
            &ExecOptions::default().with_steal().with_prefetch(),
        )
        .unwrap();
        assert_eq!(steal.checksum, via_assignments.checksum);

        // chaos riding in ExecOptions::faults retries to the same bits,
        // through both entries
        let chaos_opts = ExecOptions::default()
            .retry(3, Duration::ZERO)
            .with_faults(faults.clone());
        let faulty = exec(&stream, &assignments, 3, 5, &chaos_opts).unwrap();
        let faulty_plan = execute_plan(&stream, &plan, &store(5), &chaos_opts).unwrap();
        assert_eq!(faulty.checksum, via_assignments.checksum);
        assert_eq!(faulty_plan.checksum, via_assignments.checksum);
        assert_eq!(faulty.faults, faulty_plan.faults);
        assert!(faulty.retries >= 1);

        // and the whole surface is deterministic run to run
        let again = execute_plan(&stream, &plan, &store(5), &ExecOptions::default()).unwrap();
        assert_eq!(again.checksum, via_plan.checksum);
    }

    #[test]
    fn traced_run_spans_reconcile_with_busy_secs() {
        use micco_obs::span_track_totals;

        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let recorder = Recorder::shared();
        let opts = ExecOptions::default()
            .with_prefetch()
            .with_trace(recorder.clone());
        let out = exec(&stream, &assignments, 2, 5, &opts).unwrap();
        let events = recorder.events();
        // compute-track spans per worker sum to exactly the reported busy
        // seconds — span durations and busy accounting share a measurement
        let totals = span_track_totals(&events);
        for (w, &busy) in out.per_worker_busy_secs.iter().enumerate() {
            let spans = totals
                .get(&(w as u32, Track::Compute))
                .copied()
                .unwrap_or(0.0);
            assert!(
                (spans - busy).abs() < 1e-9,
                "worker {w}: spans {spans} vs busy {busy}"
            );
        }
        // one control span per stage plus the run span
        let stage_spans = events
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::Span { pid, track, .. }
                    if *pid == CONTROL_PID && *track == Track::Control)
            })
            .count();
        assert_eq!(stage_spans, stream.vectors.len());
        assert!(events.iter().any(|e| {
            matches!(e, TraceEvent::Span { pid, track, name, .. }
                if *pid == CONTROL_PID && *track == Track::Run && name == "exec")
        }));
        // worker processes are labelled
        assert!(events.iter().any(|e| {
            matches!(e, TraceEvent::ProcessLabel { pid: 0, label } if label == "worker0")
        }));
        // tracing never perturbs the physics
        let untr = exec(&stream, &assignments, 2, 5, &ExecOptions::default()).unwrap();
        assert_eq!(out.checksum, untr.checksum);
    }

    #[test]
    fn traced_steals_emit_flow_arrows() {
        let stream = stream();
        // lopsided: all work on worker 0, worker 1 helps via stealing
        let assignments: Vec<Assignment> = stream
            .vectors
            .iter()
            .flat_map(|v| v.tasks.iter())
            .map(|t| Assignment {
                task: t.id,
                gpu: micco_gpusim::GpuId(0),
            })
            .collect();
        let recorder = Recorder::shared();
        let opts = ExecOptions::default()
            .with_steal()
            .with_trace(recorder.clone());
        let out = exec(&stream, &assignments, 2, 5, &opts).unwrap();
        let flows = recorder
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Flow { name, .. } if name.starts_with("steal")))
            .count();
        assert_eq!(flows, out.steals, "one flow arrow per steal");
    }
}
