//! The stage-parallel execution engine.
//!
//! Two execution modes share the same checksum contract:
//!
//! - **static** (the default): each worker runs exactly the tasks its
//!   device was assigned, in order — a faithful replay of the schedule.
//! - **work stealing** ([`ExecOptions::steal`]): per-worker deques with
//!   *reuse-aware* intra-stage stealing — an idle worker may only take a
//!   victim's task when it already holds both operands (the tasks a
//!   device could run without extra transfers), mirroring the
//!   data-centric placement rule the schedulers optimise for.
//!
//! Either way the per-task outputs are identical, so the order-fixed
//! checksum reduction is bit-identical across modes, schedulers, and
//! worker counts.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use micco_core::{Assignment, PlanError, SchedulePlan};
use micco_tensor::Complex64;
use micco_workload::{TensorId, TensorPairStream, Vector};

use crate::store::TensorStore;

/// Shape of the tensors in a uniform stream (the synthetic generator and
/// the per-correlator pipelines both produce uniform shapes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorShape {
    /// Batch count.
    pub batch: usize,
    /// Mode length.
    pub dim: usize,
}

/// Tuning knobs for [`execute_stream_opts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Reuse-aware intra-stage work stealing: idle workers take tasks from
    /// the back of other workers' queues, but only tasks whose operands
    /// they already hold (no extra transfers on the modelled device).
    pub steal: bool,
    /// Overlap operand staging with compute: a per-stage prefetch thread
    /// warms the tensor store with the stage's operands while workers
    /// crunch — the execution-engine analogue of the simulator's
    /// asynchronous copy engine.
    pub prefetch: bool,
}

impl ExecOptions {
    /// Options with stealing enabled.
    pub fn with_steal(mut self) -> Self {
        self.steal = true;
        self
    }

    /// Options with operand prefetch enabled.
    pub fn with_prefetch(mut self) -> Self {
        self.prefetch = true;
        self
    }
}

/// Why the execution engine refused to run a schedule.
///
/// These used to be `panic!`/`assert!` contract violations; they are now
/// typed errors so callers (the CLI in particular) can report them without
/// aborting the process.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// `workers == 0` — there is nobody to run the kernels.
    NoWorkers,
    /// The assignment slice does not cover the stream's tasks.
    AssignmentShortfall {
        /// Tasks in the stream.
        expected: usize,
        /// Assignments provided.
        got: usize,
    },
    /// An assignment names a device outside the worker pool.
    DeviceOutOfRange {
        /// Offending device index.
        gpu: usize,
        /// Worker-pool size.
        workers: usize,
    },
    /// A [`SchedulePlan`] failed validation against the stream.
    Plan(PlanError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::NoWorkers => write!(f, "need at least one worker"),
            ExecError::AssignmentShortfall { expected, got } => write!(
                f,
                "assignments must cover every task: stream has {expected}, got {got}"
            ),
            ExecError::DeviceOutOfRange { gpu, workers } => {
                write!(f, "assignment to device {gpu} ≥ {workers} workers")
            }
            ExecError::Plan(e) => write!(f, "invalid plan: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::Plan(e)
    }
}

/// Result of executing a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Wall-clock seconds of the parallel execution.
    pub wall_secs: f64,
    /// Kernels *assigned* per worker by the schedule (the conformance
    /// contract against `ScheduleReport.assignments` — independent of
    /// stealing).
    pub per_worker_tasks: Vec<usize>,
    /// Kernels actually *executed* per worker. Equal to
    /// `per_worker_tasks` unless stealing moved work.
    pub per_worker_executed: Vec<usize>,
    /// Tasks that ran on a different worker than assigned.
    pub steals: usize,
    /// Order-independent checksum: per-task output traces summed in task
    /// order (bit-identical across schedulers, worker counts, and
    /// execution modes).
    pub checksum: Complex64,
    /// Total kernels computed.
    pub kernels: usize,
}

/// Execute `stream` with real kernels on `workers` threads, following the
/// per-task device `assignments` (one per task, in stream task order —
/// exactly what [`micco_core::ScheduleReport::assignments`] provides).
/// Devices map to worker threads; stages are barriers, as on the simulated
/// machine.
///
/// # Examples
///
/// ```
/// use micco_core::{run_schedule, MiccoScheduler, ReuseBounds};
/// use micco_exec::{execute_stream, TensorShape};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let shape = TensorShape { batch: 2, dim: 8 };
/// let stream = WorkloadSpec::new(4, shape.dim).with_batch(shape.batch).with_vectors(2).generate();
/// let report = run_schedule(
///     &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
///     &stream,
///     &MachineConfig::mi100_like(2),
/// ).unwrap();
/// let out = execute_stream(&stream, &report.assignments, 2, shape, 7).unwrap();
/// assert_eq!(out.kernels, stream.total_tasks());
/// assert!(out.checksum.is_finite());
/// ```
///
/// # Errors
///
/// Returns [`ExecError`] if `assignments` does not cover every task of
/// `stream`, if an assignment names a device ≥ `workers`, or if
/// `workers == 0`.
pub fn execute_stream(
    stream: &TensorPairStream,
    assignments: &[Assignment],
    workers: usize,
    shape: TensorShape,
    seed: u64,
) -> Result<ExecOutcome, ExecError> {
    execute_stream_opts(
        stream,
        assignments,
        workers,
        shape,
        seed,
        ExecOptions::default(),
    )
}

/// [`execute_stream`] with explicit [`ExecOptions`] — the entry point for
/// work stealing and operand prefetch.
///
/// # Examples
///
/// ```
/// use micco_core::{run_schedule, MiccoScheduler, ReuseBounds};
/// use micco_exec::{execute_stream, execute_stream_opts, ExecOptions, TensorShape};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let shape = TensorShape { batch: 2, dim: 8 };
/// let stream = WorkloadSpec::new(6, shape.dim).with_batch(shape.batch).with_vectors(2).generate();
/// let report = run_schedule(
///     &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
///     &stream,
///     &MachineConfig::mi100_like(2),
/// ).unwrap();
/// let opts = ExecOptions::default().with_steal().with_prefetch();
/// let stolen = execute_stream_opts(&stream, &report.assignments, 2, shape, 7, opts).unwrap();
/// let replayed = execute_stream(&stream, &report.assignments, 2, shape, 7).unwrap();
/// // stealing may move work between workers but never changes the physics
/// assert_eq!(stolen.checksum, replayed.checksum);
/// assert_eq!(stolen.per_worker_tasks, replayed.per_worker_tasks);
/// ```
///
/// # Errors
///
/// Fails under the same conditions as [`execute_stream`].
pub fn execute_stream_opts(
    stream: &TensorPairStream,
    assignments: &[Assignment],
    workers: usize,
    shape: TensorShape,
    seed: u64,
    opts: ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    if workers == 0 {
        return Err(ExecError::NoWorkers);
    }
    if assignments.len() != stream.total_tasks() {
        return Err(ExecError::AssignmentShortfall {
            expected: stream.total_tasks(),
            got: assignments.len(),
        });
    }
    if let Some(a) = assignments.iter().find(|a| a.gpu.0 >= workers) {
        return Err(ExecError::DeviceOutOfRange {
            gpu: a.gpu.0,
            workers,
        });
    }
    Ok(execute_unchecked(
        stream,
        assignments,
        workers,
        shape,
        seed,
        opts,
    ))
}

/// Execute a validated [`SchedulePlan`] with real kernels — the plan-IR
/// entry point of the engine. The plan's device count sizes the worker
/// pool, and [`SchedulePlan::validate`] runs first, so a stale or foreign
/// plan is a typed error instead of a panic deep in a worker thread.
///
/// # Examples
///
/// ```
/// use micco_core::{plan_schedule, MiccoScheduler, ReuseBounds};
/// use micco_exec::{execute_plan, TensorShape};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let shape = TensorShape { batch: 2, dim: 8 };
/// let stream = WorkloadSpec::new(4, shape.dim).with_batch(shape.batch).with_vectors(2).generate();
/// let plan = plan_schedule(
///     &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
///     &stream,
///     &MachineConfig::mi100_like(2),
/// ).unwrap();
/// let out = execute_plan(&stream, &plan, shape, 7).unwrap();
/// assert_eq!(out.kernels, stream.total_tasks());
/// ```
///
/// # Errors
///
/// Returns [`ExecError::Plan`] when the plan does not validate against
/// `stream`, and [`ExecError::NoWorkers`] for a zero-device plan.
pub fn execute_plan(
    stream: &TensorPairStream,
    plan: &SchedulePlan,
    shape: TensorShape,
    seed: u64,
) -> Result<ExecOutcome, ExecError> {
    execute_plan_opts(stream, plan, shape, seed, ExecOptions::default())
}

/// [`execute_plan`] with explicit [`ExecOptions`].
///
/// # Errors
///
/// Fails under the same conditions as [`execute_plan`].
pub fn execute_plan_opts(
    stream: &TensorPairStream,
    plan: &SchedulePlan,
    shape: TensorShape,
    seed: u64,
    opts: ExecOptions,
) -> Result<ExecOutcome, ExecError> {
    plan.validate(stream)?;
    if plan.num_gpus == 0 {
        return Err(ExecError::NoWorkers);
    }
    Ok(execute_unchecked(
        stream,
        &plan.flat_assignments(),
        plan.num_gpus,
        shape,
        seed,
        opts,
    ))
}

/// The engine proper. Inputs are already validated: `workers > 0`, one
/// assignment per task, every device in range.
fn execute_unchecked(
    stream: &TensorPairStream,
    assignments: &[Assignment],
    workers: usize,
    shape: TensorShape,
    seed: u64,
    opts: ExecOptions,
) -> ExecOutcome {
    let store = TensorStore::new(shape.batch, shape.dim, seed);
    let t0 = Instant::now();
    let mut per_worker_tasks = vec![0usize; workers];
    let mut per_worker_executed = vec![0usize; workers];
    let steals = AtomicUsize::new(0);
    // the modelled residency of each worker's device: operands and outputs
    // of tasks it executed (persists across stages, like device memory)
    let mut residents: Vec<HashSet<TensorId>> = vec![HashSet::new(); workers];
    // per-task traces, collected in global task order so the final
    // checksum reduction is order-fixed regardless of thread interleaving
    let mut traces: Vec<Complex64> = vec![Complex64::ZERO; stream.total_tasks()];
    let mut offset = 0usize;

    for vector in &stream.vectors {
        let stage_assign = &assignments[offset..offset + vector.len()];
        // partition this stage's task indices per worker
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (i, a) in stage_assign.iter().enumerate() {
            debug_assert_eq!(
                a.task, vector.tasks[i].id,
                "assignment order must match stream"
            );
            buckets[a.gpu.0].push(i);
        }
        for (w, b) in buckets.iter().enumerate() {
            per_worker_tasks[w] += b.len();
        }
        let stage_traces = &mut traces[offset..offset + vector.len()];
        if opts.steal {
            run_stage_stealing(
                vector,
                &buckets,
                &mut residents,
                &store,
                stage_traces,
                &steals,
                &mut per_worker_executed,
                opts.prefetch,
            );
        } else {
            run_stage_static(vector, &buckets, &store, stage_traces, opts.prefetch);
            for (w, b) in buckets.iter().enumerate() {
                per_worker_executed[w] += b.len();
            }
        }
        offset += vector.len();
    }

    let checksum = traces.iter().copied().sum();
    ExecOutcome {
        wall_secs: t0.elapsed().as_secs_f64(),
        per_worker_tasks,
        per_worker_executed,
        steals: steals.into_inner(),
        checksum,
        kernels: stream.total_tasks(),
    }
}

/// Run one task's kernel: fetch operands, contract, register the output,
/// and return the per-task trace (computed sequentially per batch element —
/// no cross-thread reduction ⇒ bitwise determinism).
fn run_task(store: &TensorStore, vector: &Vector, i: usize) -> Complex64 {
    let task = &vector.tasks[i];
    let a = store.fetch(task.a.id);
    let b = store.fetch(task.b.id);
    let out = a.matmul(&b).expect("uniform shapes");
    let mut tr = Complex64::ZERO;
    for bi in 0..out.batch() {
        tr += out.element(bi).trace();
    }
    store.insert(task.out.id, Arc::new(out));
    tr
}

/// Static replay: one scoped thread per non-empty bucket; the scope join
/// is the stage barrier.
fn run_stage_static(
    vector: &Vector,
    buckets: &[Vec<usize>],
    store: &TensorStore,
    stage_traces: &mut [Complex64],
    prefetch: bool,
) {
    let trace_slices = split_by_buckets(stage_traces, buckets);
    crossbeam::thread::scope(|scope| {
        if prefetch {
            scope.spawn(move |_| {
                for t in &vector.tasks {
                    store.fetch(t.a.id);
                    store.fetch(t.b.id);
                }
            });
        }
        for (bucket, slots) in buckets.iter().zip(trace_slices) {
            if bucket.is_empty() {
                continue;
            }
            scope.spawn(move |_| {
                for (&i, slot) in bucket.iter().zip(slots) {
                    *slot = run_task(store, vector, i);
                }
            });
        }
    })
    .expect("worker panicked");
}

/// Work-stealing stage: per-worker deques; a worker drains its own queue
/// from the front, then scans victims' queues from the back for tasks
/// whose operands it already holds. Results come back through the join
/// handles tagged with their stage-local task index, so the caller writes
/// them into the order-fixed trace array.
#[allow(clippy::too_many_arguments)]
fn run_stage_stealing(
    vector: &Vector,
    buckets: &[Vec<usize>],
    residents: &mut [HashSet<TensorId>],
    store: &TensorStore,
    stage_traces: &mut [Complex64],
    steals: &AtomicUsize,
    per_worker_executed: &mut [usize],
    prefetch: bool,
) {
    let queues: Vec<Mutex<VecDeque<usize>>> = buckets
        .iter()
        .map(|b| Mutex::new(b.iter().copied().collect()))
        .collect();
    let results: Vec<Vec<(usize, Complex64)>> = crossbeam::thread::scope(|scope| {
        if prefetch {
            scope.spawn(move |_| {
                for t in &vector.tasks {
                    store.fetch(t.a.id);
                    store.fetch(t.b.id);
                }
            });
        }
        let handles: Vec<_> = residents
            .iter_mut()
            .enumerate()
            .map(|(w, resident)| {
                let queues = &queues;
                scope.spawn(move |_| {
                    let mut done: Vec<(usize, Complex64)> = Vec::new();
                    loop {
                        let own = queues[w].lock().pop_front();
                        let (i, stolen) = match own {
                            Some(i) => (i, false),
                            None => match steal_one(queues, w, vector, resident) {
                                Some(i) => (i, true),
                                None => break,
                            },
                        };
                        let tr = run_task(store, vector, i);
                        let task = &vector.tasks[i];
                        resident.insert(task.a.id);
                        resident.insert(task.b.id);
                        resident.insert(task.out.id);
                        if stolen {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        done.push((i, tr));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("worker panicked");
    for (w, rs) in results.into_iter().enumerate() {
        per_worker_executed[w] += rs.len();
        for (i, tr) in rs {
            stage_traces[i] = tr;
        }
    }
}

/// Pop one steal-eligible task for `thief`: scanning other workers'
/// queues, take from the *back* (the victim's coldest work) the first
/// task whose operands the thief already holds.
fn steal_one(
    queues: &[Mutex<VecDeque<usize>>],
    thief: usize,
    vector: &Vector,
    resident: &HashSet<TensorId>,
) -> Option<usize> {
    for (v, queue) in queues.iter().enumerate() {
        if v == thief {
            continue;
        }
        let mut q = queue.lock();
        if let Some(pos) = q.iter().rposition(|&i| {
            let t = &vector.tasks[i];
            resident.contains(&t.a.id) && resident.contains(&t.b.id)
        }) {
            return q.remove(pos);
        }
    }
    None
}

/// Split `slice` into per-bucket mutable views: bucket `w` receives one
/// `&mut Complex64` per entry, in order. Implemented with `split_first_mut`
/// walking the slice once per bucket ordering — buckets index disjoint
/// positions, so we hand out raw disjoint sub-borrows via sorting.
fn split_by_buckets<'a>(
    slice: &'a mut [Complex64],
    buckets: &[Vec<usize>],
) -> Vec<Vec<&'a mut Complex64>> {
    // Decorate every slot with its bucket, then walk the slice once,
    // routing each &mut to its bucket — safe disjoint splitting without
    // unsafe code.
    let mut owner: Vec<usize> = vec![usize::MAX; slice.len()];
    for (w, bucket) in buckets.iter().enumerate() {
        for &i in bucket {
            owner[i] = w;
        }
    }
    let mut out: Vec<Vec<&mut Complex64>> = (0..buckets.len()).map(|_| Vec::new()).collect();
    for (slot, &w) in slice.iter_mut().zip(&owner) {
        if w != usize::MAX {
            out[w].push(slot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use micco_core::{
        run_schedule, GrouteScheduler, MiccoScheduler, ReuseBounds, RoundRobinScheduler, Scheduler,
    };
    use micco_gpusim::MachineConfig;
    use micco_workload::WorkloadSpec;

    const SHAPE: TensorShape = TensorShape { batch: 2, dim: 8 };

    fn stream() -> TensorPairStream {
        WorkloadSpec::new(12, SHAPE.dim)
            .with_batch(SHAPE.batch)
            .with_repeat_rate(0.6)
            .with_vectors(3)
            .with_seed(21)
            .generate()
    }

    fn assignments_for(
        s: &mut dyn Scheduler,
        stream: &TensorPairStream,
        gpus: usize,
    ) -> Vec<Assignment> {
        run_schedule(s, stream, &MachineConfig::mi100_like(gpus))
            .expect("fits")
            .assignments
    }

    #[test]
    fn executes_and_counts() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 4);
        let out = execute_stream(&stream, &assignments, 4, SHAPE, 5).unwrap();
        assert_eq!(out.kernels, stream.total_tasks());
        assert_eq!(
            out.per_worker_tasks.iter().sum::<usize>(),
            stream.total_tasks()
        );
        assert!(out.checksum.is_finite());
        assert!(out.wall_secs >= 0.0);
    }

    #[test]
    fn checksum_is_scheduler_invariant() {
        let stream = stream();
        let mut checksums = Vec::new();
        let mut schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(GrouteScheduler::new()),
            Box::new(RoundRobinScheduler::new()),
            Box::new(MiccoScheduler::new(ReuseBounds::new(0, 2, 0))),
            Box::new(MiccoScheduler::new(ReuseBounds::unbounded())),
        ];
        for s in schedulers.iter_mut() {
            let assignments = assignments_for(s.as_mut(), &stream, 4);
            checksums.push(
                execute_stream(&stream, &assignments, 4, SHAPE, 5)
                    .unwrap()
                    .checksum,
            );
        }
        for w in checksums.windows(2) {
            assert_eq!(w[0], w[1], "placement must never change the physics");
        }
    }

    #[test]
    fn checksum_is_worker_count_invariant() {
        let stream = stream();
        let mut reference = None;
        for gpus in [1usize, 2, 3, 8] {
            let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, gpus);
            let out = execute_stream(&stream, &assignments, gpus, SHAPE, 5).unwrap();
            if let Some(r) = reference {
                assert_eq!(out.checksum, r, "{gpus} workers changed the checksum");
            } else {
                reference = Some(out.checksum);
            }
        }
    }

    #[test]
    fn repeated_runs_are_bit_identical() {
        let stream = stream();
        let assignments = assignments_for(&mut MiccoScheduler::naive(), &stream, 3);
        let a = execute_stream(&stream, &assignments, 3, SHAPE, 9)
            .unwrap()
            .checksum;
        let b = execute_stream(&stream, &assignments, 3, SHAPE, 9)
            .unwrap()
            .checksum;
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_checksum() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let a = execute_stream(&stream, &assignments, 2, SHAPE, 1)
            .unwrap()
            .checksum;
        let b = execute_stream(&stream, &assignments, 2, SHAPE, 2)
            .unwrap()
            .checksum;
        assert_ne!(a, b);
    }

    #[test]
    fn matches_single_threaded_reference() {
        // hand-rolled sequential reference over the same leaf generator
        let stream = WorkloadSpec::new(4, SHAPE.dim)
            .with_batch(SHAPE.batch)
            .with_repeat_rate(0.0)
            .with_vectors(1)
            .with_seed(2)
            .generate();
        let store = crate::store::TensorStore::new(SHAPE.batch, SHAPE.dim, 77);
        let mut expect = Complex64::ZERO;
        for t in &stream.vectors[0].tasks {
            let out = store.fetch(t.a.id).matmul(&store.fetch(t.b.id)).unwrap();
            // group per task exactly as the engine does — float addition is
            // not associative, and the test demands bit equality
            let mut tr = Complex64::ZERO;
            for bi in 0..out.batch() {
                tr += out.element(bi).trace();
            }
            expect += tr;
        }
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let got = execute_stream(&stream, &assignments, 2, SHAPE, 77)
            .unwrap()
            .checksum;
        assert_eq!(got, expect);
    }

    #[test]
    fn stealing_preserves_checksum_and_totals() {
        let stream = stream();
        for workers in [1usize, 2, 4] {
            let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, workers);
            let base = execute_stream(&stream, &assignments, workers, SHAPE, 5).unwrap();
            let stolen = execute_stream_opts(
                &stream,
                &assignments,
                workers,
                SHAPE,
                5,
                ExecOptions::default().with_steal(),
            )
            .unwrap();
            assert_eq!(stolen.checksum, base.checksum, "{workers} workers");
            assert_eq!(stolen.per_worker_tasks, base.per_worker_tasks);
            assert_eq!(
                stolen.per_worker_executed.iter().sum::<usize>(),
                stream.total_tasks(),
                "every task executed exactly once"
            );
            assert_eq!(stolen.kernels, stream.total_tasks());
        }
    }

    #[test]
    fn prefetch_is_checksum_neutral() {
        let stream = stream();
        let assignments = assignments_for(&mut MiccoScheduler::naive(), &stream, 3);
        let base = execute_stream(&stream, &assignments, 3, SHAPE, 9).unwrap();
        for opts in [
            ExecOptions::default().with_prefetch(),
            ExecOptions::default().with_steal().with_prefetch(),
        ] {
            let out = execute_stream_opts(&stream, &assignments, 3, SHAPE, 9, opts).unwrap();
            assert_eq!(out.checksum, base.checksum, "{opts:?}");
        }
    }

    #[test]
    fn static_mode_reports_zero_steals() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 2);
        let out = execute_stream(&stream, &assignments, 2, SHAPE, 5).unwrap();
        assert_eq!(out.steals, 0);
        assert_eq!(out.per_worker_executed, out.per_worker_tasks);
    }

    #[test]
    fn steals_only_move_work_between_workers() {
        // a lopsided hand-built schedule: everything on worker 0, so worker
        // 1 can only help via stealing — and only for operands it holds
        // (none at first, so stage 1 must not be stolen)
        let stream = stream();
        let assignments: Vec<Assignment> = stream
            .vectors
            .iter()
            .flat_map(|v| v.tasks.iter())
            .map(|t| Assignment {
                task: t.id,
                gpu: micco_gpusim::GpuId(0),
            })
            .collect();
        let out = execute_stream_opts(
            &stream,
            &assignments,
            2,
            SHAPE,
            5,
            ExecOptions::default().with_steal(),
        )
        .unwrap();
        assert_eq!(out.per_worker_tasks, vec![stream.total_tasks(), 0]);
        assert_eq!(
            out.per_worker_executed.iter().sum::<usize>(),
            stream.total_tasks()
        );
        assert_eq!(
            out.steals, out.per_worker_executed[1],
            "worker 1 only runs stolen work"
        );
        // worker 1 held nothing when stage 0 started, so every stage-0 task
        // stayed on worker 0 — reuse-aware stealing never moves cold tasks
        let stage0 = stream.vectors[0].len();
        assert!(out.per_worker_executed[0] >= stage0);
        // and the physics is unchanged
        let base = execute_stream(&stream, &assignments, 2, SHAPE, 5).unwrap();
        assert_eq!(out.checksum, base.checksum);
    }

    #[test]
    fn steal_one_is_reuse_aware_and_takes_from_the_back() {
        use micco_workload::{ContractionTask, TaskId, TensorDesc};
        let t = |id: u64, a: u64, b: u64, out: u64| ContractionTask {
            id: TaskId(id),
            a: TensorDesc {
                id: TensorId(a),
                bytes: 1,
            },
            b: TensorDesc {
                id: TensorId(b),
                bytes: 1,
            },
            out: TensorDesc {
                id: TensorId(out),
                bytes: 1,
            },
            flops: 0,
        };
        // tasks 0 and 2 use tensors {1,2}; task 1 uses {3,4}
        let vector = Vector::new(vec![t(0, 1, 2, 10), t(1, 3, 4, 11), t(2, 1, 2, 12)]);
        let queues = vec![
            Mutex::new(VecDeque::from(vec![0usize, 1, 2])),
            Mutex::new(VecDeque::new()),
        ];
        let resident: HashSet<TensorId> = [TensorId(1), TensorId(2)].into_iter().collect();
        // the thief takes eligible work back-to-front, skipping task 1
        assert_eq!(steal_one(&queues, 1, &vector, &resident), Some(2));
        assert_eq!(steal_one(&queues, 1, &vector, &resident), Some(0));
        assert_eq!(
            steal_one(&queues, 1, &vector, &resident),
            None,
            "task 1 is cold"
        );
        assert_eq!(
            queues[0].lock().len(),
            1,
            "ineligible work stays with its owner"
        );
        // a worker never steals from itself
        assert_eq!(steal_one(&queues, 0, &vector, &resident), None);
    }

    #[test]
    fn short_assignments_are_a_typed_error() {
        let stream = stream();
        let err = execute_stream(&stream, &[], 2, SHAPE, 0).unwrap_err();
        assert_eq!(
            err,
            ExecError::AssignmentShortfall {
                expected: stream.total_tasks(),
                got: 0
            }
        );
        assert!(err.to_string().contains("cover every task"));
    }

    #[test]
    fn zero_workers_are_a_typed_error() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 1);
        let err = execute_stream(&stream, &assignments, 0, SHAPE, 0).unwrap_err();
        assert_eq!(err, ExecError::NoWorkers);
        assert!(err.to_string().contains("at least one worker"));
    }

    #[test]
    fn out_of_range_device_is_a_typed_error() {
        let stream = stream();
        let assignments = assignments_for(&mut RoundRobinScheduler::new(), &stream, 4);
        let err = execute_stream(&stream, &assignments, 2, SHAPE, 0).unwrap_err();
        assert!(matches!(
            err,
            ExecError::DeviceOutOfRange { gpu, workers: 2 } if gpu >= 2
        ));
    }

    #[test]
    fn plan_path_matches_slice_path() {
        use micco_core::{plan_schedule, run_schedule};
        use micco_gpusim::MachineConfig;

        let stream = stream();
        let cfg = MachineConfig::mi100_like(3);
        let report = run_schedule(
            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
        )
        .unwrap();
        let plan = plan_schedule(
            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
        )
        .unwrap();
        let via_slices = execute_stream(&stream, &report.assignments, 3, SHAPE, 5).unwrap();
        let via_plan = execute_plan(&stream, &plan, SHAPE, 5).unwrap();
        assert_eq!(via_plan.checksum, via_slices.checksum);
        assert_eq!(via_plan.per_worker_tasks, via_slices.per_worker_tasks);
        assert_eq!(via_plan.kernels, via_slices.kernels);
    }

    #[test]
    fn stale_plan_is_rejected_before_any_kernel_runs() {
        use micco_core::{plan_schedule, PlanError};
        use micco_gpusim::MachineConfig;

        let stream = stream();
        let plan = plan_schedule(
            &mut RoundRobinScheduler::new(),
            &stream,
            &MachineConfig::mi100_like(2),
        )
        .unwrap();
        // mutate the workload after planning: the fingerprint catches it
        let mut drifted = stream.clone();
        drifted.vectors[0].tasks[0].flops += 1;
        let err = execute_plan(&drifted, &plan, SHAPE, 5).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Plan(PlanError::FingerprintMismatch { .. })
        ));
    }
}
