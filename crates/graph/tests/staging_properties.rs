//! Property-based tests of graph contraction planning and staging.

// Strategy closures unwrap freely (clippy's allow-unwrap-in-tests only
// covers `#[test]` bodies, not helper functions in integration-test files).
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use std::collections::{HashMap, HashSet};

use micco_graph::{
    build_stream, plan_contraction, ContractionGraph, EdgeOrder, HadronNode, InternTable,
};
use micco_tensor::ContractionKind;

fn meson(label: u64) -> HadronNode {
    HadronNode {
        label,
        kind: ContractionKind::Meson,
        batch: 2,
        dim: 8,
    }
}

/// Random connected multigraph: a spanning chain plus extra random edges.
fn connected_graph() -> impl Strategy<Value = ContractionGraph> {
    (
        2usize..10,
        proptest::collection::vec((0usize..10, 0usize..10), 0..8),
        any::<u64>(),
    )
        .prop_map(|(n, extras, label_base)| {
            let mut g = ContractionGraph::new();
            let ids: Vec<_> = (0..n)
                .map(|i| g.add_node(meson(label_base.wrapping_add(i as u64))))
                .collect();
            for w in ids.windows(2) {
                g.add_edge(w[0], w[1]).unwrap();
            }
            for (a, b) in extras {
                let (a, b) = (a % n, b % n);
                if a != b {
                    g.add_edge(ids[a], ids[b]).unwrap();
                }
            }
            g
        })
}

fn order() -> impl Strategy<Value = EdgeOrder> {
    prop_oneof![Just(EdgeOrder::Sequential), Just(EdgeOrder::MinDegree)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A plan is dependency-ordered, ends with exactly one final step, and
    /// contains at most node_count − 1 steps.
    #[test]
    fn plans_are_well_formed(g in connected_graph(), order in order()) {
        let plan = plan_contraction(&g, order).unwrap();
        prop_assert!(!plan.steps.is_empty());
        prop_assert!(plan.steps.len() < g.node_count());
        prop_assert_eq!(plan.steps.iter().filter(|s| s.is_final).count(), 1);
        prop_assert!(plan.steps.last().unwrap().is_final);

        let mut known: HashSet<u64> = g.nodes().iter().map(|n| n.label).collect();
        for s in &plan.steps {
            prop_assert!(known.contains(&s.lhs), "lhs produced before use");
            prop_assert!(known.contains(&s.rhs), "rhs produced before use");
            prop_assert!(s.lhs != s.out && s.rhs != s.out);
            known.insert(s.out);
        }
    }

    /// Planning is deterministic.
    #[test]
    fn planning_deterministic(g in connected_graph(), order in order()) {
        prop_assert_eq!(plan_contraction(&g, order).unwrap(), plan_contraction(&g, order).unwrap());
    }

    /// Staging any set of plans yields a stream whose stages respect
    /// dependencies: every non-leaf operand is produced in a strictly
    /// earlier stage.
    #[test]
    fn stages_respect_dependencies(
        graphs in proptest::collection::vec(connected_graph(), 1..5),
        order in order(),
    ) {
        let plans: Vec<_> =
            graphs.iter().map(|g| plan_contraction(g, order).unwrap()).collect();
        let mut intern = InternTable::new();
        let staged = build_stream(&plans, &mut intern);

        // map: output tensor -> stage index
        let mut produced_at: HashMap<_, usize> = HashMap::new();
        for (si, v) in staged.stream.vectors.iter().enumerate() {
            for t in &v.tasks {
                produced_at.insert(t.out.id, si);
            }
        }
        for (si, v) in staged.stream.vectors.iter().enumerate() {
            for t in &v.tasks {
                for d in [t.a.id, t.b.id] {
                    if let Some(&pi) = produced_at.get(&d) {
                        prop_assert!(pi < si, "operand produced at stage {pi} used at {si}");
                    }
                }
            }
        }
        prop_assert_eq!(staged.stream.total_tasks(), staged.unique_steps);
        prop_assert!(staged.unique_steps <= staged.total_steps);
    }

    /// Duplicating a plan never increases the unique-step count.
    #[test]
    fn duplication_is_free(g in connected_graph(), order in order()) {
        let p = plan_contraction(&g, order).unwrap();
        let mut i1 = InternTable::new();
        let once = build_stream(std::slice::from_ref(&p), &mut i1);
        let mut i2 = InternTable::new();
        let twice = build_stream(&[p.clone(), p], &mut i2);
        prop_assert_eq!(once.unique_steps, twice.unique_steps);
        prop_assert_eq!(twice.total_steps, 2 * once.total_steps);
        prop_assert!(twice.cse_savings() >= 0.49);
    }

    /// The intern table assigns dense, stable, collision-free ids.
    #[test]
    fn intern_table_bijective(labels in proptest::collection::vec(any::<u64>(), 1..60)) {
        let mut t = InternTable::new();
        let ids: Vec<_> = labels.iter().map(|&l| t.intern(l)).collect();
        // same label -> same id; distinct labels -> distinct ids
        let mut by_label = HashMap::new();
        for (l, id) in labels.iter().zip(&ids) {
            if let Some(prev) = by_label.insert(*l, *id) {
                prop_assert_eq!(prev, *id);
            }
        }
        let distinct_labels: HashSet<_> = labels.iter().collect();
        let distinct_ids: HashSet<_> = ids.iter().collect();
        prop_assert_eq!(distinct_labels.len(), distinct_ids.len());
        prop_assert_eq!(t.len(), distinct_labels.len());
    }
}
