//! Graph contraction planning: reduce edges one after another, emitting a
//! sequence of pairwise contraction steps.

use micco_tensor::ContractionKind;

use crate::graph::{ContractionGraph, GraphError, HadronNode};

/// Strategy for choosing the next edge to reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EdgeOrder {
    /// Reduce edges in insertion order (what a straightforward front end
    /// emits).
    #[default]
    Sequential,
    /// Reduce the edge whose endpoints have the smallest combined degree
    /// first (keeps intermediates small; Redstar's "optimal evaluation
    /// strategies" heuristic).
    MinDegree,
}

/// One pairwise contraction: `lhs ⊗ rhs → out`.
///
/// Labels are global tensor identities; two steps with equal
/// `(lhs, rhs)` labels across different graphs are the *same computation*
/// and are deduplicated by the stager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContractionStep {
    /// Left operand label.
    pub lhs: u64,
    /// Right operand label.
    pub rhs: u64,
    /// Output label (canonical combination of the operands).
    pub out: u64,
    /// Payload kind.
    pub kind: ContractionKind,
    /// Batch count.
    pub batch: usize,
    /// Mode length.
    pub dim: usize,
    /// Whether this is the final reduction of a graph (produces the scalar
    /// correlation contribution instead of a full tensor).
    pub is_final: bool,
}

/// The plan for one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanOutput {
    /// Contraction steps in dependency order; the last step is the final
    /// reduction.
    pub steps: Vec<ContractionStep>,
}

/// Canonical label of the contraction of `a` and `b` (order-insensitive, so
/// identical sub-chains built in either direction share one intermediate).
pub fn combine_labels(a: u64, b: u64) -> u64 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    // splitmix64-style mixing of the ordered pair
    let mut x = lo.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ hi.wrapping_add(0xD1B5_4A32_D192_ED03);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Contract `graph` down to its final pair, returning the step sequence.
pub fn plan_contraction(
    graph: &ContractionGraph,
    order: EdgeOrder,
) -> Result<PlanOutput, GraphError> {
    graph.validate()?;

    // Working copies: nodes may grow as intermediates appear.
    let mut nodes: Vec<Option<HadronNode>> = graph.nodes().iter().copied().map(Some).collect();
    let mut edges: Vec<(usize, usize)> = graph.edges().iter().map(|(a, b)| (a.0, b.0)).collect();
    let mut alive = nodes.len();
    let mut steps = Vec::new();

    while alive > 2 {
        let idx = pick_edge(&edges, &nodes, order);
        let (i, j) = edges[idx];
        let (ni, nj) = (
            nodes[i].expect("endpoint alive"),
            nodes[j].expect("endpoint alive"),
        );
        let out_label = combine_labels(ni.label, nj.label);
        steps.push(ContractionStep {
            lhs: ni.label,
            rhs: nj.label,
            out: out_label,
            kind: ni.kind,
            batch: ni.batch,
            dim: ni.dim,
            is_final: false,
        });
        // Merge: new node k replaces i and j.
        let k = nodes.len();
        nodes.push(Some(HadronNode {
            label: out_label,
            ..ni
        }));
        nodes[i] = None;
        nodes[j] = None;
        alive -= 1;
        // Re-point edges; contracted and now-self-loop edges disappear.
        edges = edges
            .into_iter()
            .filter_map(|(a, b)| {
                let a = if a == i || a == j { k } else { a };
                let b = if b == i || b == j { k } else { b };
                (a != b).then_some((a, b))
            })
            .collect();
    }

    // Final reduction of the last two nodes.
    let mut last = nodes.iter().flatten();
    let (na, nb) = (
        *last.next().expect("two alive"),
        *last.next().expect("two alive"),
    );
    let out_label = combine_labels(na.label, nb.label).wrapping_add(1); // distinct from a mid-plan merge
    steps.push(ContractionStep {
        lhs: na.label,
        rhs: nb.label,
        out: out_label,
        kind: na.kind,
        batch: na.batch,
        dim: na.dim,
        is_final: true,
    });
    Ok(PlanOutput { steps })
}

fn pick_edge(edges: &[(usize, usize)], nodes: &[Option<HadronNode>], order: EdgeOrder) -> usize {
    match order {
        EdgeOrder::Sequential => 0,
        EdgeOrder::MinDegree => {
            let degree = |n: usize| edges.iter().filter(|(a, b)| *a == n || *b == n).count();
            (0..edges.len())
                .min_by_key(|&i| {
                    let (a, b) = edges[i];
                    debug_assert!(nodes[a].is_some() && nodes[b].is_some());
                    (degree(a) + degree(b), i)
                })
                .expect("non-empty edge list")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    fn meson(label: u64) -> HadronNode {
        HadronNode {
            label,
            kind: ContractionKind::Meson,
            batch: 2,
            dim: 8,
        }
    }

    fn chain(n: usize) -> ContractionGraph {
        let mut g = ContractionGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.add_node(meson(i as u64 + 1))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn two_node_graph_is_single_final_step() {
        let g = chain(2);
        let plan = plan_contraction(&g, EdgeOrder::Sequential).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert!(plan.steps[0].is_final);
        assert_eq!((plan.steps[0].lhs, plan.steps[0].rhs), (1, 2));
    }

    #[test]
    fn chain_reduces_n_minus_one_times() {
        for n in 3..8 {
            let g = chain(n);
            let plan = plan_contraction(&g, EdgeOrder::Sequential).unwrap();
            assert_eq!(plan.steps.len(), n - 1, "chain of {n}");
            assert!(plan.steps.last().unwrap().is_final);
            assert!(plan.steps[..n - 2].iter().all(|s| !s.is_final));
        }
    }

    #[test]
    fn steps_are_dependency_ordered() {
        let g = chain(6);
        let plan = plan_contraction(&g, EdgeOrder::MinDegree).unwrap();
        let mut known: std::collections::HashSet<u64> = (1..=6).collect();
        for s in &plan.steps {
            assert!(known.contains(&s.lhs), "lhs {} not yet produced", s.lhs);
            assert!(known.contains(&s.rhs), "rhs {} not yet produced", s.rhs);
            known.insert(s.out);
        }
    }

    #[test]
    fn identical_graphs_share_all_labels() {
        let g1 = chain(5);
        let g2 = chain(5);
        let p1 = plan_contraction(&g1, EdgeOrder::MinDegree).unwrap();
        let p2 = plan_contraction(&g2, EdgeOrder::MinDegree).unwrap();
        assert_eq!(
            p1, p2,
            "same graph must produce the same plan (CSE across graphs)"
        );
    }

    #[test]
    fn shared_subchain_shares_intermediates() {
        // two graphs over the same first three nodes but different tails
        let mut g1 = chain(3);
        let t1 = g1.add_node(meson(100));
        g1.add_edge(NodeId(2), t1).unwrap();
        let mut g2 = chain(3);
        let t2 = g2.add_node(meson(200));
        g2.add_edge(NodeId(2), t2).unwrap();
        let p1 = plan_contraction(&g1, EdgeOrder::Sequential).unwrap();
        let p2 = plan_contraction(&g2, EdgeOrder::Sequential).unwrap();
        // the first step (1⊗2) is common to both
        assert_eq!(p1.steps[0], p2.steps[0]);
        // the final steps differ
        assert_ne!(p1.steps.last(), p2.steps.last());
    }

    #[test]
    fn combine_labels_is_symmetric_and_mixing() {
        assert_eq!(combine_labels(3, 5), combine_labels(5, 3));
        assert_ne!(combine_labels(3, 5), combine_labels(3, 6));
        assert_ne!(combine_labels(1, 2), combine_labels(2, 3));
    }

    #[test]
    fn cycle_contracts_fully() {
        // triangle + extra parallel edge exercises self-loop dropping
        let mut g = ContractionGraph::new();
        let a = g.add_node(meson(1));
        let b = g.add_node(meson(2));
        let c = g.add_node(meson(3));
        g.add_edge(a, b).unwrap();
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        let plan = plan_contraction(&g, EdgeOrder::Sequential).unwrap();
        assert_eq!(plan.steps.len(), 2);
        assert!(plan.steps.last().unwrap().is_final);
    }

    #[test]
    fn invalid_graph_errors() {
        let mut g = ContractionGraph::new();
        g.add_node(meson(1));
        assert!(plan_contraction(&g, EdgeOrder::Sequential).is_err());
    }

    #[test]
    fn min_degree_prefers_leaf_edges() {
        // star + chain: min-degree contracts the chain tip first
        let mut g = ContractionGraph::new();
        let hub = g.add_node(meson(1));
        let s1 = g.add_node(meson(2));
        let s2 = g.add_node(meson(3));
        let tail = g.add_node(meson(4));
        g.add_edge(hub, s1).unwrap();
        g.add_edge(hub, s2).unwrap();
        g.add_edge(s2, tail).unwrap();
        let plan = plan_contraction(&g, EdgeOrder::MinDegree).unwrap();
        // first reduced pair must involve the degree-1 tail, not the hub
        let first = plan.steps[0];
        assert!(first.lhs == 4 || first.rhs == 4 || first.lhs == 2 || first.rhs == 2);
    }
}
