//! The contraction-graph data structure.

use micco_tensor::ContractionKind;

/// Index of a hadron node within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of an edge within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

/// A hadron node: the graph-level identity of a batched tensor.
///
/// `label` is a *global* identity: two nodes with the same label in
/// different graphs refer to the same tensor data (the paper's repeated
/// hadron nodes). Labels of original nodes come from the front end (e.g.
/// hashed operator × time-slice); labels of intermediates are derived
/// canonically from their operands so common subexpressions collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HadronNode {
    /// Global data identity.
    pub label: u64,
    /// Meson (matrix) or baryon (rank-3) payload.
    pub kind: ContractionKind,
    /// Batch count of the payload.
    pub batch: usize,
    /// Mode length of the payload.
    pub dim: usize,
}

/// Errors from graph construction and contraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a node that does not exist.
    BadNode(NodeId),
    /// A self-loop was requested (a hadron cannot propagate to itself in a
    /// contraction step).
    SelfLoop(NodeId),
    /// The graph is not connected, so it cannot contract to two nodes.
    Disconnected,
    /// The graph has fewer than two nodes or no edges.
    TooSmall,
    /// Nodes with mismatched payload shape were connected.
    ShapeMismatch(NodeId, NodeId),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::BadNode(n) => write!(f, "edge references unknown node {}", n.0),
            GraphError::SelfLoop(n) => write!(f, "self-loop on node {}", n.0),
            GraphError::Disconnected => write!(f, "contraction graph is disconnected"),
            GraphError::TooSmall => write!(f, "graph needs ≥2 nodes and ≥1 edge"),
            GraphError::ShapeMismatch(a, b) => {
                write!(f, "nodes {} and {} have incompatible payloads", a.0, b.0)
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected multigraph of hadron nodes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ContractionGraph {
    nodes: Vec<HadronNode>,
    /// Edges as unordered node pairs (stored lo ≤ hi).
    edges: Vec<(NodeId, NodeId)>,
}

impl ContractionGraph {
    /// Empty graph.
    pub fn new() -> Self {
        ContractionGraph::default()
    }

    /// Add a hadron node, returning its id.
    pub fn add_node(&mut self, node: HadronNode) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Add a quark-propagation edge between two existing nodes.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<EdgeId, GraphError> {
        let na = *self.node(a).ok_or(GraphError::BadNode(a))?;
        let nb = *self.node(b).ok_or(GraphError::BadNode(b))?;
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if na.kind != nb.kind || na.batch != nb.batch || na.dim != nb.dim {
            return Err(GraphError::ShapeMismatch(a, b));
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.edges.push((lo, hi));
        Ok(EdgeId(self.edges.len() - 1))
    }

    /// Node payload by id.
    pub fn node(&self, id: NodeId) -> Option<&HadronNode> {
        self.nodes.get(id.0)
    }

    /// All nodes.
    pub fn nodes(&self) -> &[HadronNode] {
        &self.nodes
    }

    /// All edges as node-id pairs.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Degree of a node.
    pub fn degree(&self, id: NodeId) -> usize {
        self.edges
            .iter()
            .filter(|(a, b)| *a == id || *b == id)
            .count()
    }

    /// Split the graph into its connected components (each returned graph
    /// has compacted node ids; isolated nodes yield single-node components).
    ///
    /// Quark propagation diagrams can be *disconnected* — e.g. the
    /// two-2-cycle derangements of a four-hadron system factorise into two
    /// independent loops. Each component contracts independently.
    pub fn components(&self) -> Vec<ContractionGraph> {
        let n = self.node_count();
        if n == 0 {
            return Vec::new();
        }
        // union-find over nodes
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for &(a, b) in &self.edges {
            let (ra, rb) = (find(&mut parent, a.0), find(&mut parent, b.0));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        // group nodes by root, preserving id order for determinism
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut root_index: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for v in 0..n {
            let r = find(&mut parent, v);
            let gi = *root_index.entry(r).or_insert_with(|| {
                groups.push((r, Vec::new()));
                groups.len() - 1
            });
            groups[gi].1.push(v);
        }
        groups
            .into_iter()
            .map(|(_, members)| {
                let mut g = ContractionGraph::new();
                let mut remap: std::collections::HashMap<usize, NodeId> =
                    std::collections::HashMap::new();
                for &v in &members {
                    remap.insert(v, g.add_node(self.nodes[v]));
                }
                for &(a, b) in &self.edges {
                    if let (Some(&na), Some(&nb)) = (remap.get(&a.0), remap.get(&b.0)) {
                        g.add_edge(na, nb).expect("edges valid in the parent graph");
                    }
                }
                g
            })
            .collect()
    }

    /// Validate that the graph is contractible: ≥2 nodes, ≥1 edge, and
    /// connected.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.node_count() < 2 || self.edge_count() == 0 {
            return Err(GraphError::TooSmall);
        }
        // BFS connectivity over the multigraph.
        let mut seen = vec![false; self.node_count()];
        let mut queue = vec![NodeId(0)];
        seen[0] = true;
        while let Some(u) = queue.pop() {
            for &(a, b) in &self.edges {
                let other = if a == u {
                    Some(b)
                } else if b == u {
                    Some(a)
                } else {
                    None
                };
                if let Some(v) = other {
                    if !seen[v.0] {
                        seen[v.0] = true;
                        queue.push(v);
                    }
                }
            }
        }
        if seen.iter().all(|&s| s) {
            Ok(())
        } else {
            Err(GraphError::Disconnected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn meson(label: u64) -> HadronNode {
        HadronNode {
            label,
            kind: ContractionKind::Meson,
            batch: 2,
            dim: 8,
        }
    }

    #[test]
    fn build_triangle() {
        let mut g = ContractionGraph::new();
        let a = g.add_node(meson(1));
        let b = g.add_node(meson(2));
        let c = g.add_node(meson(3));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(a), 2);
        g.validate().unwrap();
    }

    #[test]
    fn multigraph_edges_allowed() {
        let mut g = ContractionGraph::new();
        let a = g.add_node(meson(1));
        let b = g.add_node(meson(2));
        g.add_edge(a, b).unwrap();
        g.add_edge(a, b).unwrap(); // double propagator (e.g. quark + antiquark)
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(a), 2);
        g.validate().unwrap();
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = ContractionGraph::new();
        let a = g.add_node(meson(1));
        assert_eq!(g.add_edge(a, a).unwrap_err(), GraphError::SelfLoop(a));
    }

    #[test]
    fn bad_node_rejected() {
        let mut g = ContractionGraph::new();
        let a = g.add_node(meson(1));
        let err = g.add_edge(a, NodeId(7)).unwrap_err();
        assert_eq!(err, GraphError::BadNode(NodeId(7)));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut g = ContractionGraph::new();
        let a = g.add_node(meson(1));
        let b = g.add_node(HadronNode {
            label: 2,
            kind: ContractionKind::Meson,
            batch: 2,
            dim: 16,
        });
        assert!(matches!(
            g.add_edge(a, b),
            Err(GraphError::ShapeMismatch(_, _))
        ));
    }

    #[test]
    fn disconnected_detected() {
        let mut g = ContractionGraph::new();
        let a = g.add_node(meson(1));
        let b = g.add_node(meson(2));
        let _c = g.add_node(meson(3));
        g.add_edge(a, b).unwrap();
        assert_eq!(g.validate().unwrap_err(), GraphError::Disconnected);
    }

    #[test]
    fn too_small_detected() {
        let mut g = ContractionGraph::new();
        g.add_node(meson(1));
        assert_eq!(g.validate().unwrap_err(), GraphError::TooSmall);
    }

    #[test]
    fn components_of_connected_graph_is_itself() {
        let mut g = ContractionGraph::new();
        let a = g.add_node(meson(1));
        let b = g.add_node(meson(2));
        g.add_edge(a, b).unwrap();
        let comps = g.components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], g);
    }

    #[test]
    fn components_split_two_cycles() {
        // the (1,0,3,2) derangement: edges 0-1 ×2, 2-3 ×2
        let mut g = ContractionGraph::new();
        let n: Vec<_> = (1..=4).map(|l| g.add_node(meson(l))).collect();
        g.add_edge(n[0], n[1]).unwrap();
        g.add_edge(n[1], n[0]).unwrap();
        g.add_edge(n[2], n[3]).unwrap();
        g.add_edge(n[3], n[2]).unwrap();
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        for c in &comps {
            assert_eq!(c.node_count(), 2);
            assert_eq!(c.edge_count(), 2);
            c.validate().unwrap();
        }
        // labels preserved
        let labels: Vec<Vec<u64>> = comps
            .iter()
            .map(|c| c.nodes().iter().map(|x| x.label).collect())
            .collect();
        assert_eq!(labels, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn components_keep_isolated_nodes() {
        let mut g = ContractionGraph::new();
        let a = g.add_node(meson(1));
        let b = g.add_node(meson(2));
        g.add_node(meson(3)); // isolated
        g.add_edge(a, b).unwrap();
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[1].node_count(), 1);
        assert_eq!(comps[1].edge_count(), 0);
    }

    #[test]
    fn components_of_empty_graph() {
        assert!(ContractionGraph::new().components().is_empty());
    }

    #[test]
    fn error_display() {
        assert!(GraphError::Disconnected
            .to_string()
            .contains("disconnected"));
        assert!(GraphError::SelfLoop(NodeId(3)).to_string().contains("3"));
    }
}
