//! Cross-graph-aware contraction planning.
//!
//! [`crate::plan_contraction`] plans each graph in isolation; intermediates
//! only dedupe when two graphs happen to reduce the same edge first. When a
//! whole *family* of graphs is known up front (a correlation function's
//! diagram set), choosing reduction edges by **global pair frequency** —
//! always reduce the pair of hadron labels that occurs in the most graphs —
//! steers every graph towards the same intermediates, maximising the
//! common-subexpression sharing the scheduler later exploits as repeated
//! tensors. This mirrors the "optimal evaluation strategies" of the Redstar
//! milestone reports the paper builds on.

use std::collections::HashMap;

use crate::graph::{ContractionGraph, GraphError, HadronNode};
use crate::plan::{combine_labels, ContractionStep, PlanOutput};

/// Plan a family of graphs together, preferring globally frequent pairs.
///
/// Returns one plan per input graph (same order). Each individual plan is
/// valid in isolation (dependency-ordered, one final step); the gain over
/// per-graph planning is in cross-plan step sharing.
pub fn plan_contraction_shared(graphs: &[ContractionGraph]) -> Result<Vec<PlanOutput>, GraphError> {
    for g in graphs {
        g.validate()?;
    }
    // Working state per graph: alive nodes + edges (by working index).
    struct Work {
        nodes: Vec<Option<HadronNode>>,
        edges: Vec<(usize, usize)>,
        alive: usize,
        steps: Vec<ContractionStep>,
    }
    let mut works: Vec<Work> = graphs
        .iter()
        .map(|g| Work {
            nodes: g.nodes().iter().copied().map(Some).collect(),
            edges: g.edges().iter().map(|(a, b)| (a.0, b.0)).collect(),
            alive: g.node_count(),
            steps: Vec::new(),
        })
        .collect();

    // Iterate until every graph is down to two nodes: pick the label pair
    // with the highest remaining frequency (ties by smaller label pair for
    // determinism) and reduce it in every graph that still has it.
    loop {
        let mut freq: HashMap<(u64, u64), usize> = HashMap::new();
        for w in &works {
            if w.alive <= 2 {
                continue;
            }
            // count each *distinct* label pair once per graph
            let mut seen: Vec<(u64, u64)> = w
                .edges
                .iter()
                .map(|&(i, j)| {
                    let (a, b) = (
                        w.nodes[i].expect("alive").label,
                        w.nodes[j].expect("alive").label,
                    );
                    if a <= b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                })
                .collect();
            seen.sort_unstable();
            seen.dedup();
            for p in seen {
                *freq.entry(p).or_default() += 1;
            }
        }
        let Some((&pair, _)) = freq
            .iter()
            .max_by(|(pa, ca), (pb, cb)| ca.cmp(cb).then(pb.cmp(pa)))
        else {
            break; // all graphs are down to their final two nodes
        };

        for w in &mut works {
            if w.alive <= 2 {
                continue;
            }
            // find an edge realising this label pair
            let found = w.edges.iter().position(|&(i, j)| {
                let (a, b) = (
                    w.nodes[i].expect("alive").label,
                    w.nodes[j].expect("alive").label,
                );
                let key = if a <= b { (a, b) } else { (b, a) };
                key == pair
            });
            let Some(idx) = found else { continue };
            let (i, j) = w.edges[idx];
            let (ni, nj) = (w.nodes[i].expect("alive"), w.nodes[j].expect("alive"));
            let out_label = combine_labels(ni.label, nj.label);
            w.steps.push(ContractionStep {
                lhs: ni.label,
                rhs: nj.label,
                out: out_label,
                kind: ni.kind,
                batch: ni.batch,
                dim: ni.dim,
                is_final: false,
            });
            let k = w.nodes.len();
            w.nodes.push(Some(HadronNode {
                label: out_label,
                ..ni
            }));
            w.nodes[i] = None;
            w.nodes[j] = None;
            w.alive -= 1;
            w.edges = std::mem::take(&mut w.edges)
                .into_iter()
                .filter_map(|(a, b)| {
                    let a = if a == i || a == j { k } else { a };
                    let b = if b == i || b == j { k } else { b };
                    (a != b).then_some((a, b))
                })
                .collect();
        }
    }

    // Final reductions.
    Ok(works
        .into_iter()
        .map(|mut w| {
            let mut last = w.nodes.iter().flatten();
            let (na, nb) = (
                *last.next().expect("two alive"),
                *last.next().expect("two alive"),
            );
            let out_label = combine_labels(na.label, nb.label).wrapping_add(1);
            w.steps.push(ContractionStep {
                lhs: na.label,
                rhs: nb.label,
                out: out_label,
                kind: na.kind,
                batch: na.batch,
                dim: na.dim,
                is_final: true,
            });
            PlanOutput { steps: w.steps }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::plan::{plan_contraction, EdgeOrder};
    use crate::stage::{build_stream, InternTable};
    use micco_tensor::ContractionKind;

    fn meson(label: u64) -> HadronNode {
        HadronNode {
            label,
            kind: ContractionKind::Meson,
            batch: 2,
            dim: 8,
        }
    }

    /// A family of chains sharing the prefix 1–2–3 but with distinct tails.
    fn family(n: usize) -> Vec<ContractionGraph> {
        (0..n)
            .map(|i| {
                let mut g = ContractionGraph::new();
                let a = g.add_node(meson(1));
                let b = g.add_node(meson(2));
                let c = g.add_node(meson(3));
                let tail = g.add_node(meson(100 + i as u64));
                // deliberately insert the tail edge FIRST so per-graph
                // sequential planning reduces (3, tail) before (1, 2)
                g.add_edge(c, tail).unwrap();
                g.add_edge(a, b).unwrap();
                g.add_edge(b, c).unwrap();
                g
            })
            .collect()
    }

    fn unique_steps(plans: &[PlanOutput]) -> usize {
        let mut intern = InternTable::new();
        build_stream(plans, &mut intern).unique_steps
    }

    #[test]
    fn plans_are_individually_valid() {
        let graphs = family(4);
        let plans = plan_contraction_shared(&graphs).unwrap();
        assert_eq!(plans.len(), 4);
        for (g, p) in graphs.iter().zip(&plans) {
            assert_eq!(p.steps.len(), g.node_count() - 1);
            assert_eq!(p.steps.iter().filter(|s| s.is_final).count(), 1);
            assert!(p.steps.last().unwrap().is_final);
            // dependency ordering
            let mut known: std::collections::HashSet<u64> =
                g.nodes().iter().map(|n| n.label).collect();
            for s in &p.steps {
                assert!(known.contains(&s.lhs) && known.contains(&s.rhs));
                known.insert(s.out);
            }
        }
    }

    #[test]
    fn shared_planning_beats_isolated_planning_on_families() {
        let graphs = family(6);
        let shared = plan_contraction_shared(&graphs).unwrap();
        let isolated: Vec<_> = graphs
            .iter()
            .map(|g| plan_contraction(g, EdgeOrder::Sequential).unwrap())
            .collect();
        let us = unique_steps(&shared);
        let ui = unique_steps(&isolated);
        assert!(
            us < ui,
            "shared planning should produce fewer unique steps: shared {us}, isolated {ui}"
        );
    }

    #[test]
    fn identical_graphs_collapse_to_one_plan_cost() {
        let graphs = family(1).into_iter().cycle().take(5).collect::<Vec<_>>();
        let plans = plan_contraction_shared(&graphs).unwrap();
        let us = unique_steps(&plans);
        assert_eq!(us, graphs[0].node_count() - 1);
    }

    #[test]
    fn two_node_graphs_get_final_only() {
        let mut g = ContractionGraph::new();
        let a = g.add_node(meson(1));
        let b = g.add_node(meson(2));
        g.add_edge(a, b).unwrap();
        let plans = plan_contraction_shared(&[g]).unwrap();
        assert_eq!(plans[0].steps.len(), 1);
        assert!(plans[0].steps[0].is_final);
    }

    #[test]
    fn invalid_member_rejected() {
        let mut bad = ContractionGraph::new();
        bad.add_node(meson(1));
        let good = family(1).pop().unwrap();
        assert!(plan_contraction_shared(&[good, bad]).is_err());
    }

    #[test]
    fn deterministic() {
        let graphs = family(5);
        assert_eq!(
            plan_contraction_shared(&graphs).unwrap(),
            plan_contraction_shared(&graphs).unwrap()
        );
    }

    #[test]
    fn empty_family_is_fine() {
        assert!(plan_contraction_shared(&[]).unwrap().is_empty());
    }
}
