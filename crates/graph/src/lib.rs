#![warn(missing_docs)]

//! # micco-graph
//!
//! Contraction graphs and the pre-processing pipeline that turns them into
//! the stage vectors the scheduler consumes (Fig. 1 of the paper).
//!
//! A quark propagation diagram is an undirected multigraph whose vertices
//! are *hadron nodes* (each carrying a batched tensor) and whose edges are
//! quark propagations. *Graph contraction* deletes one edge after another —
//! each deletion contracts the tensors of the edge's endpoints into a new
//! intermediate hadron node — until only two nodes remain, whose final
//! pairing yields the correlation value.
//!
//! A correlation function expands into thousands of such graphs which
//! *share hadron nodes and whole sub-chains*. The [`stage`] module performs
//! the dependency analysis the paper describes: it merges the contraction
//! steps of many graphs, dedupes common subexpressions (the origin of the
//! repeated-tensor stream MICCO exploits), levels the surviving steps by
//! dependency depth, and emits one [`micco_workload::Vector`] per level.

pub mod graph;
pub mod plan;
pub mod shared;
pub mod stage;

pub use graph::{ContractionGraph, EdgeId, GraphError, HadronNode, NodeId};
pub use plan::{plan_contraction, ContractionStep, EdgeOrder, PlanOutput};
pub use shared::plan_contraction_shared;
pub use stage::{build_stream, InternTable, StagedProgram};
