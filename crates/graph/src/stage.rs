//! Dependency analysis and staging (the paper's pre-processing, Fig. 1).
//!
//! Takes the contraction plans of many graphs, deduplicates common
//! subexpressions across them (the same `(lhs, rhs)` contraction appearing
//! in several graphs is computed once — this is where the repeated-tensor
//! stream comes from), levels the surviving steps by dependency depth, and
//! emits one stage [`Vector`] per level. Steps in one stage are mutually
//! independent, so the scheduler may place them on any device.

use std::collections::HashMap;

use micco_tensor::{contraction_flops, tensor_bytes, COMPLEX_BYTES};
use micco_workload::{ContractionTask, TaskId, TensorDesc, TensorId, TensorPairStream, Vector};

use crate::plan::{ContractionStep, PlanOutput};

/// Maps global hadron labels to dense [`TensorId`]s, stable across calls so
/// multiple streams built from one front end share identities.
#[derive(Debug, Clone, Default)]
pub struct InternTable {
    map: HashMap<u64, TensorId>,
}

impl InternTable {
    /// Empty table.
    pub fn new() -> Self {
        InternTable::default()
    }

    /// Intern a label, allocating the next dense id on first sight.
    pub fn intern(&mut self, label: u64) -> TensorId {
        let next = TensorId(self.map.len() as u64);
        *self.map.entry(label).or_insert(next)
    }

    /// Look up a label without interning.
    pub fn get(&self, label: u64) -> Option<TensorId> {
        self.map.get(&label).copied()
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The staged, deduplicated program for a set of contraction graphs.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedProgram {
    /// Stage vectors ready for the scheduler.
    pub stream: TensorPairStream,
    /// Steps before cross-graph deduplication.
    pub total_steps: usize,
    /// Steps surviving deduplication (== tasks in the stream).
    pub unique_steps: usize,
}

impl StagedProgram {
    /// Fraction of steps eliminated by common-subexpression sharing.
    pub fn cse_savings(&self) -> f64 {
        if self.total_steps == 0 {
            0.0
        } else {
            1.0 - self.unique_steps as f64 / self.total_steps as f64
        }
    }
}

/// Merge many plans into a staged stream.
pub fn build_stream(plans: &[PlanOutput], intern: &mut InternTable) -> StagedProgram {
    let total_steps: usize = plans.iter().map(|p| p.steps.len()).sum();

    // Cross-graph dedupe: identical steps are one computation.
    let mut unique: Vec<ContractionStep> = Vec::new();
    {
        let mut seen: HashMap<(u64, u64, u64), ()> = HashMap::new();
        for p in plans {
            for &s in &p.steps {
                if seen.insert((s.lhs, s.rhs, s.out), ()).is_none() {
                    unique.push(s);
                }
            }
        }
    }

    // Level by dependency depth: a label not produced by any step is a leaf
    // (level 0); a produced label sits one above its operands.
    let produced: HashMap<u64, &ContractionStep> = unique.iter().map(|s| (s.out, s)).collect();
    let mut level_memo: HashMap<u64, usize> = HashMap::new();
    fn level_of(
        label: u64,
        produced: &HashMap<u64, &ContractionStep>,
        memo: &mut HashMap<u64, usize>,
    ) -> usize {
        if let Some(&l) = memo.get(&label) {
            return l;
        }
        let l = match produced.get(&label) {
            None => 0,
            Some(s) => 1 + level_of(s.lhs, produced, memo).max(level_of(s.rhs, produced, memo)),
        };
        memo.insert(label, l);
        l
    }

    let mut by_level: Vec<Vec<ContractionStep>> = Vec::new();
    for &s in &unique {
        let lvl = level_of(s.out, &produced, &mut level_memo);
        debug_assert!(lvl >= 1);
        if by_level.len() < lvl {
            by_level.resize(lvl, Vec::new());
        }
        by_level[lvl - 1].push(s);
    }

    // Deterministic order within each stage, then lower to tasks.
    let mut next_task = 0u64;
    let mut vectors = Vec::with_capacity(by_level.len());
    for mut steps in by_level {
        steps.sort_unstable_by_key(|s| (s.lhs, s.rhs, s.out));
        let tasks = steps
            .iter()
            .map(|s| {
                let bytes_full = tensor_bytes(s.kind, s.batch, s.dim);
                let out_bytes = if s.is_final {
                    // final reduction yields one complex number per batch
                    s.batch as u64 * COMPLEX_BYTES
                } else {
                    bytes_full
                };
                let task = ContractionTask {
                    id: TaskId(next_task),
                    a: TensorDesc {
                        id: intern.intern(s.lhs),
                        bytes: bytes_full,
                    },
                    b: TensorDesc {
                        id: intern.intern(s.rhs),
                        bytes: bytes_full,
                    },
                    out: TensorDesc {
                        id: intern.intern(s.out),
                        bytes: out_bytes,
                    },
                    flops: contraction_flops(s.kind, s.batch, s.dim),
                };
                next_task += 1;
                task
            })
            .collect();
        vectors.push(Vector::new(tasks));
    }

    StagedProgram {
        stream: TensorPairStream::new(vectors),
        total_steps,
        unique_steps: unique.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ContractionGraph, HadronNode, NodeId};
    use crate::plan::{plan_contraction, EdgeOrder};
    use micco_tensor::ContractionKind;

    fn meson(label: u64) -> HadronNode {
        HadronNode {
            label,
            kind: ContractionKind::Meson,
            batch: 2,
            dim: 8,
        }
    }

    fn chain(labels: &[u64]) -> ContractionGraph {
        let mut g = ContractionGraph::new();
        let ids: Vec<NodeId> = labels.iter().map(|&l| g.add_node(meson(l))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn plan(labels: &[u64]) -> PlanOutput {
        plan_contraction(&chain(labels), EdgeOrder::Sequential).unwrap()
    }

    #[test]
    fn single_graph_staging() {
        let mut intern = InternTable::new();
        let staged = build_stream(&[plan(&[1, 2, 3, 4])], &mut intern);
        // chain of 4: 3 steps, strictly sequential levels
        assert_eq!(staged.total_steps, 3);
        assert_eq!(staged.unique_steps, 3);
        assert_eq!(staged.stream.vectors.len(), 3);
        assert!(staged.stream.vectors.iter().all(|v| v.len() == 1));
        assert_eq!(staged.cse_savings(), 0.0);
    }

    #[test]
    fn identical_graphs_fully_deduplicate() {
        let mut intern = InternTable::new();
        let staged = build_stream(&[plan(&[1, 2, 3]), plan(&[1, 2, 3])], &mut intern);
        assert_eq!(staged.total_steps, 4);
        assert_eq!(staged.unique_steps, 2);
        assert!((staged.cse_savings() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_prefix_dedupes_first_stage() {
        let mut intern = InternTable::new();
        // both graphs start 1–2, then diverge
        let staged = build_stream(&[plan(&[1, 2, 10]), plan(&[1, 2, 20])], &mut intern);
        assert_eq!(staged.total_steps, 4);
        assert_eq!(staged.unique_steps, 3); // 1⊗2 shared
                                            // stage 1 has the shared step; stage 2 the two finals
        assert_eq!(staged.stream.vectors[0].len(), 1);
        assert_eq!(staged.stream.vectors[1].len(), 2);
    }

    #[test]
    fn independent_graphs_parallelise_in_stage_one() {
        let mut intern = InternTable::new();
        let staged = build_stream(&[plan(&[1, 2]), plan(&[3, 4]), plan(&[5, 6])], &mut intern);
        assert_eq!(staged.stream.vectors.len(), 1);
        assert_eq!(staged.stream.vectors[0].len(), 3);
    }

    #[test]
    fn final_step_output_is_scalar_sized() {
        let mut intern = InternTable::new();
        let staged = build_stream(&[plan(&[1, 2])], &mut intern);
        let t = &staged.stream.vectors[0].tasks[0];
        assert_eq!(t.out.bytes, 2 * 16); // batch 2 × one complex
        assert_eq!(t.a.bytes, 2 * 8 * 8 * 16);
    }

    #[test]
    fn intermediate_feeds_next_stage() {
        let mut intern = InternTable::new();
        let staged = build_stream(&[plan(&[1, 2, 3])], &mut intern);
        let first_out = staged.stream.vectors[0].tasks[0].out.id;
        let second = &staged.stream.vectors[1].tasks[0];
        assert!(second.a.id == first_out || second.b.id == first_out);
    }

    #[test]
    fn intern_table_is_stable_and_dense() {
        let mut intern = InternTable::new();
        let a = intern.intern(42);
        let b = intern.intern(43);
        assert_eq!(intern.intern(42), a);
        assert_eq!(a, TensorId(0));
        assert_eq!(b, TensorId(1));
        assert_eq!(intern.get(43), Some(b));
        assert_eq!(intern.get(99), None);
        assert_eq!(intern.len(), 2);
        assert!(!intern.is_empty());
    }

    #[test]
    fn task_ids_unique_across_stages() {
        let mut intern = InternTable::new();
        let staged = build_stream(&[plan(&[1, 2, 3, 4, 5])], &mut intern);
        let mut ids: Vec<u64> = staged
            .stream
            .vectors
            .iter()
            .flat_map(|v| v.tasks.iter().map(|t| t.id.0))
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn empty_input_yields_empty_program() {
        let mut intern = InternTable::new();
        let staged = build_stream(&[], &mut intern);
        assert!(staged.stream.vectors.is_empty());
        assert_eq!(staged.cse_savings(), 0.0);
    }
}
