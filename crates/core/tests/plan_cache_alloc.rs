//! Allocation accounting for the plan cache hit path.
//!
//! This test binary installs a counting `#[global_allocator]` and asserts
//! that once a plan is cached, `PlanCache::plan_for` performs **zero** heap
//! allocations: the key is hashed borrow-wise (no `String` name, no owned
//! key struct) and the lookup hits the interned `FastIdMap` directly.
//!
//! Kept in its own integration-test binary because a global allocator is
//! process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

use micco_core::{
    DriverOptions, MiccoScheduler, PlanCache, ReuseBounds, RoundRobinScheduler, Scheduler,
};
use micco_gpusim::MachineConfig;
use micco_workload::WorkloadSpec;

fn assert_hit_path_allocates_zero(mut sched: Box<dyn Scheduler>, label: &str) {
    let stream = WorkloadSpec::new(8, 64)
        .with_repeat_rate(0.5)
        .with_vectors(3)
        .with_seed(7)
        .generate();
    let cfg = MachineConfig::mi100_like(3);
    let opts = DriverOptions::default();

    let mut cache = PlanCache::new();
    // Miss: plans and stores (allocates freely — not under test).
    let digest = cache
        .plan_for(&mut *sched, &stream, &cfg, opts)
        .expect("plans")
        .digest();
    assert_eq!(cache.misses(), 1);

    // Warm a second round so any lazy one-time setup is done.
    let _ = cache
        .plan_for(&mut *sched, &stream, &cfg, opts)
        .expect("plans");
    assert_eq!(cache.hits(), 1);

    let before = alloc_count();
    let hit = cache
        .plan_for(&mut *sched, &stream, &cfg, opts)
        .expect("plans");
    // Snapshot the counter before digest(): serializing the plan for the
    // comparison below allocates, the lookup itself must not.
    let allocs = alloc_count() - before;
    assert_eq!(
        hit.digest(),
        digest,
        "{label}: cache returned a different plan"
    );
    assert_eq!(
        allocs, 0,
        "{label}: PlanCache hit path allocated {allocs} times (expected 0)"
    );
    assert_eq!(cache.hits(), 2);
}

#[test]
fn plan_cache_hit_path_is_allocation_free() {
    // One #[test] so the two scheduler runs cannot interleave allocation
    // counts across harness threads.
    assert_hit_path_allocates_zero(Box::new(RoundRobinScheduler::new()), "round-robin");
    assert_hit_path_allocates_zero(
        Box::new(MiccoScheduler::new(ReuseBounds::new(0, 2, 0))),
        "micco",
    );
}
