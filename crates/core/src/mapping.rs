//! The seven task-assignment mappings of Fig. 4.
//!
//! Given an incoming pair's local reuse pattern and the device actually
//! chosen, the placement falls into one of the paper's seven canonical
//! mappings, ordered by memory-operation cost:
//!
//! * **(1)** both operands already on the chosen device — zero memory ops;
//! * **(2)/(3)** exactly one operand already on the chosen device — one
//!   allocation + one transfer ((2) when the other operand is resident on
//!   some other device, (3) when it is new);
//! * **(4)–(7)** neither operand on the chosen device — two allocations +
//!   two transfers, subdivided by where the operands *could* have been
//!   found: (4) both elsewhere, (5)/(6) one elsewhere + one new, (7) both
//!   new.
//!
//! [`MappingHistogram`] counts the mappings a schedule actually used —
//! the per-placement visibility that makes the trade-off auditable (the
//! experiment binaries print it; tests assert the data-centric policy
//! shifts mass towards mapping (1)).

use micco_gpusim::{GpuId, MachineView};
use micco_workload::ContractionTask;

/// One of the paper's seven canonical task assignments (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mapping {
    /// Both operands resident on the chosen device (0 memory ops).
    M1,
    /// One operand resident here; the other resident elsewhere (1 transfer,
    /// served device-to-device).
    M2,
    /// One operand resident here; the other new (1 host transfer).
    M3,
    /// Neither resident here, both resident elsewhere (2 peer transfers).
    M4,
    /// Neither resident here; first operand resident elsewhere, second new.
    M5,
    /// Neither resident here; first operand new, second resident elsewhere.
    M6,
    /// Both operands new to the whole machine (2 host transfers).
    M7,
}

impl Mapping {
    /// Classify the placement of `task` on `gpu` against current residency.
    pub fn classify(task: &ContractionTask, gpu: GpuId, view: &dyn MachineView) -> Mapping {
        let here = |t: micco_workload::TensorId| view.holds(gpu, t);
        let anywhere = |t: micco_workload::TensorId| !view.holders(t).is_empty();
        match (here(task.a.id), here(task.b.id)) {
            (true, true) => Mapping::M1,
            (true, false) => {
                if anywhere(task.b.id) {
                    Mapping::M2
                } else {
                    Mapping::M3
                }
            }
            (false, true) => {
                if anywhere(task.a.id) {
                    Mapping::M2
                } else {
                    Mapping::M3
                }
            }
            (false, false) => match (anywhere(task.a.id), anywhere(task.b.id)) {
                (true, true) => Mapping::M4,
                (true, false) => Mapping::M5,
                (false, true) => Mapping::M6,
                (false, false) => Mapping::M7,
            },
        }
    }

    /// Memory operations (allocation+transfer pairs) this mapping costs —
    /// the ordering of Fig. 4.
    pub fn memory_ops(self) -> usize {
        match self {
            Mapping::M1 => 0,
            Mapping::M2 | Mapping::M3 => 1,
            Mapping::M4 | Mapping::M5 | Mapping::M6 | Mapping::M7 => 2,
        }
    }

    /// Index 0–6 (for histograms).
    pub fn index(self) -> usize {
        match self {
            Mapping::M1 => 0,
            Mapping::M2 => 1,
            Mapping::M3 => 2,
            Mapping::M4 => 3,
            Mapping::M5 => 4,
            Mapping::M6 => 5,
            Mapping::M7 => 6,
        }
    }
}

impl std::fmt::Display for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({})", self.index() + 1)
    }
}

/// Counts of each mapping over a schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MappingHistogram {
    counts: [u64; 7],
}

impl MappingHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one placement.
    pub fn record(&mut self, m: Mapping) {
        self.counts[m.index()] += 1;
    }

    /// Count of mapping with 1-based paper number `k`, or `None` when `k`
    /// is not one of the paper's seven mappings (`k = 0` used to underflow
    /// the index and `k > 7` to read out of bounds — both panicked).
    pub fn count(&self, k: usize) -> Option<u64> {
        self.counts.get(k.checked_sub(1)?).copied()
    }

    /// Total placements recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of placements that were mapping (1) — the zero-cost reuse
    /// the data-centric policy hunts for.
    pub fn m1_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.counts[0] as f64 / self.total() as f64
        }
    }

    /// Mean memory operations per placement implied by the histogram.
    pub fn mean_memory_ops(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        let ops: u64 = self.counts[1]
            + self.counts[2]
            + 2 * (self.counts[3] + self.counts[4] + self.counts[5] + self.counts[6]);
        ops as f64 / self.total() as f64
    }
}

impl std::fmt::Display for MappingHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(1)={} (2)={} (3)={} (4)={} (5)={} (6)={} (7)={} | mean mem-ops {:.2}",
            self.counts[0],
            self.counts[1],
            self.counts[2],
            self.counts[3],
            self.counts[4],
            self.counts[5],
            self.counts[6],
            self.mean_memory_ops()
        )
    }
}

/// Replay a finished schedule against a fresh machine to produce its
/// mapping histogram (placements are re-classified in execution order).
pub fn mapping_histogram(
    stream: &micco_workload::TensorPairStream,
    assignments: &[crate::driver::Assignment],
    config: &micco_gpusim::MachineConfig,
) -> MappingHistogram {
    let mut machine = micco_gpusim::SimMachine::new(*config);
    let mut hist = MappingHistogram::new();
    let mut idx = 0;
    for vector in &stream.vectors {
        for task in &vector.tasks {
            let gpu = assignments[idx].gpu;
            hist.record(Mapping::classify(task, gpu, &machine));
            machine
                .execute(task, gpu)
                .expect("assignments came from a successful run");
            idx += 1;
        }
        machine.barrier();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_schedule;
    use crate::{GrouteScheduler, MiccoScheduler, ReuseBounds};
    use micco_gpusim::{MachineConfig, SimMachine};
    use micco_workload::{TaskId, TensorDesc, TensorId, WorkloadSpec};

    fn task(a: u64, b: u64, out: u64) -> ContractionTask {
        ContractionTask {
            id: TaskId(out),
            a: TensorDesc {
                id: TensorId(a),
                bytes: 1 << 20,
            },
            b: TensorDesc {
                id: TensorId(b),
                bytes: 1 << 20,
            },
            out: TensorDesc {
                id: TensorId(out),
                bytes: 1 << 20,
            },
            flops: 1,
        }
    }

    #[test]
    fn classify_all_seven() {
        let mut m = SimMachine::new(MachineConfig::mi100_like(3));
        // residency: tensors 1, 2 on gpu0; tensor 3 on gpu1
        m.execute(&task(1, 2, 900), micco_gpusim::GpuId(0)).unwrap();
        m.execute(&task(3, 3, 901), micco_gpusim::GpuId(1)).unwrap();
        let g0 = micco_gpusim::GpuId(0);
        let g2 = micco_gpusim::GpuId(2);
        assert_eq!(Mapping::classify(&task(1, 2, 100), g0, &m), Mapping::M1);
        assert_eq!(Mapping::classify(&task(1, 3, 100), g0, &m), Mapping::M2);
        assert_eq!(Mapping::classify(&task(1, 50, 100), g0, &m), Mapping::M3);
        assert_eq!(Mapping::classify(&task(1, 3, 100), g2, &m), Mapping::M4);
        assert_eq!(Mapping::classify(&task(1, 50, 100), g2, &m), Mapping::M5);
        assert_eq!(Mapping::classify(&task(50, 1, 100), g2, &m), Mapping::M6);
        assert_eq!(Mapping::classify(&task(50, 51, 100), g2, &m), Mapping::M7);
    }

    #[test]
    fn memory_ops_ordering_matches_fig4() {
        assert_eq!(Mapping::M1.memory_ops(), 0);
        assert_eq!(Mapping::M2.memory_ops(), 1);
        assert_eq!(Mapping::M3.memory_ops(), 1);
        for m in [Mapping::M4, Mapping::M5, Mapping::M6, Mapping::M7] {
            assert_eq!(m.memory_ops(), 2);
        }
    }

    #[test]
    fn histogram_accounting() {
        let mut h = MappingHistogram::new();
        h.record(Mapping::M1);
        h.record(Mapping::M1);
        h.record(Mapping::M3);
        h.record(Mapping::M7);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), Some(2));
        assert_eq!(h.count(3), Some(1));
        assert_eq!(h.count(7), Some(1));
        // the paper numbering is 1-based: both edges are None, not panics
        assert_eq!(h.count(0), None);
        assert_eq!(h.count(8), None);
        assert_eq!(h.count(usize::MAX), None);
        assert!((h.m1_fraction() - 0.5).abs() < 1e-12);
        assert!((h.mean_memory_ops() - 0.75).abs() < 1e-12);
        assert!(h.to_string().contains("(1)=2"));
    }

    #[test]
    fn micco_shifts_mass_towards_mapping_one() {
        let stream = WorkloadSpec::new(64, 128)
            .with_repeat_rate(0.8)
            .with_vectors(5)
            .generate();
        let cfg = MachineConfig::mi100_like(4);
        let micco = run_schedule(
            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
        )
        .unwrap();
        let groute = run_schedule(&mut GrouteScheduler::new(), &stream, &cfg).unwrap();
        let hm = mapping_histogram(&stream, &micco.assignments, &cfg);
        let hg = mapping_histogram(&stream, &groute.assignments, &cfg);
        assert_eq!(hm.total() as usize, stream.total_tasks());
        assert!(
            hm.m1_fraction() > hg.m1_fraction(),
            "micco m1 {:.3} must exceed groute {:.3}",
            hm.m1_fraction(),
            hg.m1_fraction()
        );
        assert!(hm.mean_memory_ops() < hg.mean_memory_ops());
    }

    #[test]
    fn display_uses_paper_numbering() {
        assert_eq!(Mapping::M1.to_string(), "(1)");
        assert_eq!(Mapping::M7.to_string(), "(7)");
    }
}
