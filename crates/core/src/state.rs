//! Per-vector scheduling state — the paper's `mapGPUTensor` bookkeeping.
//!
//! The balance checks of Alg. 1 compare, per device, the number of tensor
//! slots assigned *in the current vector* against `reuseBd[k] + balanceNum`.
//! This module owns those counters; residency for reuse detection comes
//! from the machine itself (`MachineView`), which persists across vectors.
//!
//! Counting *slots* (two per pair) rather than distinct tensors matches the
//! paper's worked example (Sec. III-B2: "assume assigning eight tensors to
//! two GPUs. If the reuse bound is zero, each GPU must receive four
//! tensors") and, crucially, keeps the bound meaningful on reuse-heavy
//! streams: a device hammering the same hot tensors still accumulates load
//! with every pair, so the imbalance cap engages even though its distinct-
//! tensor count stops growing.

use micco_gpusim::GpuId;
use micco_workload::Vector;

/// Mutable per-vector scheduler state.
#[derive(Debug, Clone, Default)]
pub struct VectorState {
    /// Tensor slots assigned to each device within the current vector.
    assigned_slots: Vec<usize>,
    /// `numTensor / numGPU`, rounded up — the balanced share of tensor
    /// slots per device for this vector.
    balance_num: usize,
}

impl VectorState {
    /// Reset for a new vector on a machine with `num_gpus` devices.
    pub fn begin(&mut self, vector: &Vector, num_gpus: usize) {
        assert!(num_gpus > 0, "need at least one GPU");
        self.assigned_slots.clear();
        self.assigned_slots.resize(num_gpus, 0);
        let num_tensor = vector.tensor_slots();
        self.balance_num = num_tensor.div_ceil(num_gpus).max(1);
    }

    /// The balanced per-device share for the current vector.
    pub fn balance_num(&self) -> usize {
        self.balance_num
    }

    /// Tensor slots assigned to `g` this vector
    /// (`mapGPUTensor.at(g).size()`).
    pub fn assigned_count(&self, g: GpuId) -> usize {
        self.assigned_slots[g.0]
    }

    /// Availability check of Alg. 1: may device `g` still take a pair whose
    /// pattern class carries bound `bound`?
    pub fn available(&self, g: GpuId, bound: usize) -> bool {
        self.assigned_slots[g.0] < bound.saturating_add(self.balance_num)
    }

    /// Record the assignment of a pair to device `g` (Alg. 1 line 20):
    /// two tensor slots.
    pub fn record(&mut self, g: GpuId) {
        self.assigned_slots[g.0] += 2;
    }

    /// Device with the fewest assigned slots (final fallback so progress is
    /// always possible even with pathological bounds).
    pub fn least_loaded(&self) -> GpuId {
        let g = self
            .assigned_slots
            .iter()
            .enumerate()
            .min_by_key(|(i, &n)| (n, *i))
            .map(|(i, _)| i)
            .unwrap_or(0);
        GpuId(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micco_tensor::ContractionKind;
    use micco_workload::{ContractionTask, TaskId, TensorId};

    fn vector(pairs: usize) -> Vector {
        let tasks = (0..pairs as u64)
            .map(|i| {
                ContractionTask::uniform(
                    TaskId(i),
                    TensorId(2 * i),
                    TensorId(2 * i + 1),
                    TensorId(1000 + i),
                    ContractionKind::Meson,
                    1,
                    4,
                )
            })
            .collect();
        Vector::new(tasks)
    }

    #[test]
    fn balance_num_is_slots_over_gpus() {
        let mut s = VectorState::default();
        s.begin(&vector(8), 4); // 16 slots / 4 GPUs
        assert_eq!(s.balance_num(), 4);
        s.begin(&vector(3), 4); // 6 slots / 4 GPUs → ceil = 2
        assert_eq!(s.balance_num(), 2);
        s.begin(&vector(0), 4); // degenerate vector → at least 1
        assert_eq!(s.balance_num(), 1);
    }

    #[test]
    fn availability_tracks_bound_plus_balance() {
        let mut s = VectorState::default();
        s.begin(&vector(2), 2); // 4 slots / 2 GPUs → balance 2
        let g = GpuId(0);
        assert!(s.available(g, 0));
        s.record(g);
        // count 2 == 0 + 2 → no longer available at bound 0
        assert!(!s.available(g, 0));
        // but still available at bound 1
        assert!(s.available(g, 1));
        s.record(g);
        assert!(!s.available(g, 1));
        assert!(s.available(g, 3));
    }

    #[test]
    fn paper_worked_example() {
        // "assume assigning eight tensors to two GPUs": 4 pairs, 2 devices,
        // balance 4. Bound 0 → exactly two pairs (four slots) each; bound 2
        // → up to six slots (three pairs).
        let mut s = VectorState::default();
        s.begin(&vector(4), 2);
        assert_eq!(s.balance_num(), 4);
        let g = GpuId(0);
        s.record(g);
        s.record(g);
        assert!(!s.available(g, 0), "bound 0 caps at 4 slots");
        assert!(s.available(g, 2), "bound 2 allows a fifth/sixth slot");
        s.record(g);
        assert!(!s.available(g, 2), "bound 2 caps at 6 slots");
    }

    #[test]
    fn repeated_hot_pairs_still_accumulate_load() {
        // the same pair assigned repeatedly must keep counting — this is
        // what makes the bound effective on reuse-heavy streams
        let mut s = VectorState::default();
        s.begin(&vector(8), 2); // balance 8
        for _ in 0..4 {
            s.record(GpuId(0));
        }
        assert_eq!(s.assigned_count(GpuId(0)), 8);
        assert!(!s.available(GpuId(0), 0));
    }

    #[test]
    fn least_loaded_prefers_lowest_id_on_ties() {
        let mut s = VectorState::default();
        s.begin(&vector(4), 3);
        assert_eq!(s.least_loaded(), GpuId(0));
        s.record(GpuId(0));
        assert_eq!(s.least_loaded(), GpuId(1));
        s.record(GpuId(1));
        s.record(GpuId(2));
        assert_eq!(s.least_loaded(), GpuId(0));
    }

    #[test]
    fn unbounded_available_never_overflows() {
        let mut s = VectorState::default();
        s.begin(&vector(1), 1);
        assert!(s.available(GpuId(0), usize::MAX));
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        let mut s = VectorState::default();
        s.begin(&vector(1), 0);
    }
}
