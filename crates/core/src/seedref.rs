//! The retained *reference* planner: a frozen, map-based copy of the
//! original decide-phase machine.
//!
//! The optimized planner ([`crate::plan_schedule_with`]) interns tensor
//! ids, keeps residency in bit-packed SoA vectors, and reuses scratch
//! buffers across tasks. Every one of those transformations is claimed to
//! be *decision-equivalent*: the same scheduler over the same stream must
//! produce the same plan, bit for bit. This module keeps the claim
//! testable forever by retaining the seed implementation it replaced —
//! a `HashMap`-residency device memory and a straight-line transition
//! function with the exact arithmetic of the original — behind
//! [`plan_schedule_seed`].
//!
//! The reference path is deliberately *slow and simple*: it allocates per
//! lookup, scans maps per victim selection, and shares no code with the
//! fast machine beyond the [`MachineView`] trait and the cost model. It
//! supports exactly what planning exercises — no fault injection, no
//! clairvoyant-oracle feeds (the planner never arms either; with no
//! oracle, `next_use` stays `u64::MAX` on both paths, so even
//! `Clairvoyant` eviction decides identically).
//!
//! `tests/planner_equivalence.rs` drives both planners over randomized
//! streams and asserts byte-identical serialized plans; `micco-bench`'s
//! `bench_planner` binary uses the same pair to report the speedup while
//! proving the outputs equal.

use std::collections::{HashMap, HashSet};

use micco_gpusim::{
    AllocError, EvictionPolicy, ExecError, GpuId, MachineConfig, MachineView, Provenance,
};
use micco_workload::{ContractionTask, TensorId, TensorPairStream};

use crate::driver::{Assignment, DriverOptions, ScheduleError, Scheduler};
use crate::plan::{PlanStage, SchedulePlan};

#[derive(Clone, Copy)]
struct RefEntry {
    bytes: u64,
    provenance: Provenance,
    last_use: u64,
    allocated_at: u64,
    pinned: bool,
    next_use: u64,
}

struct RefEvicted {
    id: TensorId,
    bytes: u64,
    writeback: bool,
}

/// The seed `DeviceMemory`: residency in a `HashMap`, victims picked by a
/// full scan. Tie-break keys include the tensor id, so the extremum is
/// unique and the pick is independent of map iteration order — the
/// property the SoA rewrite relies on.
struct RefMemory {
    capacity: u64,
    used: u64,
    policy: EvictionPolicy,
    resident: HashMap<TensorId, RefEntry>,
    clock: u64,
}

impl RefMemory {
    fn new(capacity: u64, policy: EvictionPolicy) -> Self {
        RefMemory {
            capacity,
            used: 0,
            policy,
            resident: HashMap::new(),
            clock: 0,
        }
    }

    fn free(&self) -> u64 {
        self.capacity - self.used
    }

    fn holds(&self, id: TensorId) -> bool {
        self.resident.contains_key(&id)
    }

    fn touch(&mut self, id: TensorId) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.resident.get_mut(&id) {
            e.last_use = clock;
        }
    }

    fn set_pinned(&mut self, id: TensorId, pinned: bool) {
        if let Some(e) = self.resident.get_mut(&id) {
            e.pinned = pinned;
        }
    }

    fn allocate(
        &mut self,
        id: TensorId,
        bytes: u64,
        provenance: Provenance,
    ) -> Result<Vec<RefEvicted>, AllocError> {
        let evictable: u64 = self
            .resident
            .values()
            .filter(|e| !e.pinned)
            .map(|e| e.bytes)
            .sum();
        if bytes > self.free() + evictable || bytes > self.capacity {
            return Err(AllocError::WontFit {
                requested: bytes,
                capacity: self.capacity,
            });
        }
        let mut evicted = Vec::new();
        while self.free() < bytes {
            let victim = self.pick_victim().expect("evictable bytes were sufficient");
            let e = self.resident.remove(&victim).expect("victim resident");
            self.used -= e.bytes;
            evicted.push(RefEvicted {
                id: victim,
                bytes: e.bytes,
                writeback: e.provenance == Provenance::DeviceCreated,
            });
        }
        self.clock += 1;
        self.resident.insert(
            id,
            RefEntry {
                bytes,
                provenance,
                last_use: self.clock,
                allocated_at: self.clock,
                pinned: true,
                next_use: u64::MAX,
            },
        );
        self.used += bytes;
        Ok(evicted)
    }

    fn pick_victim(&self) -> Option<TensorId> {
        let candidates = self.resident.iter().filter(|(_, e)| !e.pinned);
        match self.policy {
            EvictionPolicy::Lru => candidates
                .min_by_key(|(id, e)| (e.last_use, id.0))
                .map(|(id, _)| *id),
            EvictionPolicy::Fifo => candidates
                .min_by_key(|(id, e)| (e.allocated_at, id.0))
                .map(|(id, _)| *id),
            EvictionPolicy::LargestFirst => candidates
                .max_by_key(|(id, e)| (e.bytes, u64::MAX - id.0))
                .map(|(id, _)| *id),
            EvictionPolicy::Clairvoyant => candidates
                .max_by_key(|(id, e)| (e.next_use, u64::MAX - e.last_use, u64::MAX - id.0))
                .map(|(id, _)| *id),
        }
    }
}

/// One device of the reference machine: the seed's engine-clock and
/// interval bookkeeping, verbatim.
struct RefGpu {
    mem: RefMemory,
    compute_time: f64,
    dma_time: f64,
    stage_start: f64,
    stage_flops: u64,
    copy_intervals: Vec<(f64, f64)>,
    kernel_intervals: Vec<(f64, f64)>,
}

impl RefGpu {
    fn time(&self) -> f64 {
        self.compute_time.max(self.dma_time)
    }

    fn push_copy(&mut self, secs: f64, prefetch: usize) -> (f64, f64) {
        if secs <= 0.0 {
            return (self.dma_time, self.dma_time);
        }
        let mut start = self.dma_time;
        if prefetch > 0 {
            let done = self.kernel_intervals.len();
            if done >= prefetch {
                start = start.max(self.kernel_intervals[done - prefetch].1);
            }
        }
        let end = start + secs;
        self.copy_intervals.push((start, end));
        self.dma_time = end;
        (start, end)
    }
}

/// The frozen decide-phase machine (seed semantics, planning subset).
struct RefShadow {
    config: MachineConfig,
    gpus: Vec<RefGpu>,
    host_copies: HashSet<TensorId>,
    host_link_free: f64,
}

impl RefShadow {
    fn new(config: MachineConfig) -> Self {
        let gpus = (0..config.num_gpus)
            .map(|_| RefGpu {
                mem: RefMemory::new(config.mem_bytes, config.eviction),
                compute_time: 0.0,
                dma_time: 0.0,
                stage_start: 0.0,
                stage_flops: 0,
                copy_intervals: Vec::new(),
                kernel_intervals: Vec::new(),
            })
            .collect();
        RefShadow {
            config,
            gpus,
            host_copies: HashSet::new(),
            host_link_free: 0.0,
        }
    }

    fn execute(&mut self, task: &ContractionTask, gpu: GpuId) -> Result<(), ExecError> {
        if gpu.0 >= self.gpus.len() {
            return Err(ExecError::BadGpu {
                gpu,
                num_gpus: self.gpus.len(),
            });
        }
        let mut mem_secs = 0.0;

        // Stage both inputs, pinning them for the duration of the task.
        for d in [task.a, task.b] {
            if self.gpus[gpu.0].mem.holds(d.id) {
                self.gpus[gpu.0].mem.touch(d.id);
                self.gpus[gpu.0].mem.set_pinned(d.id, true);
                continue;
            }
            let peer = self.holders(d.id).into_iter().find(|g| *g != gpu);
            mem_secs += self.config.cost.alloc_secs(d.bytes);
            let evicted = self.gpus[gpu.0]
                .mem
                .allocate(d.id, d.bytes, Provenance::HostBacked)
                .map_err(|source| ExecError::OutOfMemory { gpu, source })?;
            mem_secs += self.charge_evictions(&evicted);
            match peer {
                Some(src) => {
                    let secs = self.config.cost.d2d_secs(d.bytes);
                    mem_secs += secs;
                    if self.config.cost.d2d_charges_source {
                        self.gpus[src.0].push_copy(secs, 0);
                        if !self.config.cost.async_copy {
                            self.gpus[src.0].compute_time =
                                self.gpus[src.0].compute_time.max(self.gpus[src.0].dma_time);
                        }
                    }
                }
                None => {
                    let secs = self.config.cost.h2d_secs(d.bytes);
                    mem_secs += secs;
                    if self.config.cost.shared_h2d_link {
                        let start = self
                            .host_link_free
                            .max(self.gpus[gpu.0].time() + mem_secs - secs);
                        let wait = start - (self.gpus[gpu.0].time() + mem_secs - secs);
                        mem_secs += wait;
                        self.host_link_free = start + secs;
                    }
                }
            }
        }

        // Allocate the output (overwrite in place when still resident).
        if self.gpus[gpu.0].mem.holds(task.out.id) {
            self.gpus[gpu.0].mem.touch(task.out.id);
            self.gpus[gpu.0].mem.set_pinned(task.out.id, true);
        } else {
            mem_secs += self.config.cost.alloc_secs(task.out.bytes);
            let evicted = self.gpus[gpu.0]
                .mem
                .allocate(task.out.id, task.out.bytes, Provenance::DeviceCreated)
                .map_err(|source| ExecError::OutOfMemory { gpu, source })?;
            mem_secs += self.charge_evictions(&evicted);
        }

        let compute_secs = self.config.cost.compute_secs(task.flops);

        // Unpin the working set.
        for id in [task.a.id, task.b.id, task.out.id] {
            self.gpus[gpu.0].mem.set_pinned(id, false);
        }

        let g = &mut self.gpus[gpu.0];
        if self.config.cost.async_copy {
            g.push_copy(mem_secs, self.config.cost.prefetch_tasks);
            let start = g.compute_time.max(g.dma_time);
            let finish = start + compute_secs;
            g.kernel_intervals.push((start, finish));
            g.compute_time = finish;
        } else {
            let start = g.compute_time.max(g.dma_time);
            if mem_secs > 0.0 {
                g.copy_intervals.push((start, start + mem_secs));
            }
            let finish = start + mem_secs + compute_secs;
            g.kernel_intervals.push((start + mem_secs, finish));
            g.compute_time = finish;
            g.dma_time = finish;
        }
        g.stage_flops += task.flops;
        Ok(())
    }

    fn charge_evictions(&mut self, evicted: &[RefEvicted]) -> f64 {
        let mut secs = 0.0;
        for ev in evicted {
            let writeback = ev.writeback && !self.host_copies.contains(&ev.id);
            if ev.writeback {
                self.host_copies.insert(ev.id);
            }
            secs += self.config.cost.evict_secs(ev.bytes, writeback);
        }
        secs
    }

    fn barrier(&mut self) {
        let end = self.gpus.iter().map(|g| g.time()).fold(0.0, f64::max);
        for g in &mut self.gpus {
            g.compute_time = end;
            g.dma_time = end;
            g.stage_start = end;
            g.stage_flops = 0;
            g.copy_intervals.clear();
            g.kernel_intervals.clear();
        }
    }
}

impl MachineView for RefShadow {
    fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    fn mem_capacity(&self) -> u64 {
        self.config.mem_bytes
    }

    fn mem_used(&self, g: GpuId) -> u64 {
        self.gpus[g.0].mem.used
    }

    fn holds(&self, g: GpuId, t: TensorId) -> bool {
        self.gpus[g.0].mem.holds(t)
    }

    fn holders(&self, t: TensorId) -> Vec<GpuId> {
        (0..self.gpus.len())
            .filter(|i| self.gpus[*i].mem.holds(t))
            .map(GpuId)
            .collect()
    }

    fn stage_flops(&self, g: GpuId) -> u64 {
        self.gpus[g.0].stage_flops
    }

    fn stage_busy_secs(&self, g: GpuId) -> f64 {
        self.gpus[g.0].time() - self.gpus[g.0].stage_start
    }

    fn bytes_needed(&self, g: GpuId, task: &ContractionTask) -> u64 {
        let mut need = task.out.bytes;
        if !self.holds(g, task.a.id) {
            need += task.a.bytes;
        }
        if !self.holds(g, task.b.id) && task.b.id != task.a.id {
            need += task.b.bytes;
        }
        need
    }
}

/// Plan `stream` with `scheduler` against the *frozen seed machine* —
/// the reference the optimized [`crate::plan_schedule_with`] must match
/// byte for byte.
///
/// Always reports `overhead_secs: 0.0` (`measure_overhead` is ignored;
/// compare plans produced without it, as the equivalence tests do).
pub fn plan_schedule_seed(
    scheduler: &mut dyn Scheduler,
    stream: &TensorPairStream,
    config: &MachineConfig,
    options: DriverOptions,
) -> Result<SchedulePlan, ScheduleError> {
    let cfg = options.apply(config);
    let mut shadow = RefShadow::new(cfg);
    let mut stages = Vec::with_capacity(stream.vectors.len());
    for vector in &stream.vectors {
        scheduler.begin_vector(vector, &shadow);
        let bounds = scheduler.stage_bounds();
        let mut assignments = Vec::with_capacity(vector.tasks.len());
        for task in &vector.tasks {
            let gpu = scheduler.assign(task, &shadow);
            shadow
                .execute(task, gpu)
                .map_err(|source| ScheduleError::Exec {
                    task: task.id,
                    source,
                })?;
            assignments.push(Assignment { task: task.id, gpu });
        }
        shadow.barrier();
        stages.push(PlanStage {
            bounds,
            assignments,
        });
    }
    Ok(SchedulePlan {
        scheduler: scheduler.name(),
        num_gpus: cfg.num_gpus,
        fingerprint: stream.fingerprint(),
        overhead_secs: 0.0,
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RoundRobinScheduler;
    use crate::driver::plan_schedule_with;
    use micco_workload::WorkloadSpec;

    #[test]
    fn reference_machine_matches_fast_machine_on_a_simple_stream() {
        let stream = WorkloadSpec::new(16, 96)
            .with_repeat_rate(0.6)
            .with_vectors(3)
            .with_seed(7)
            .generate();
        let cfg = MachineConfig::mi100_like(3);
        let opts = DriverOptions::default();
        let fast =
            plan_schedule_with(&mut RoundRobinScheduler::new(), &stream, &cfg, opts).unwrap();
        let slow =
            plan_schedule_seed(&mut RoundRobinScheduler::new(), &stream, &cfg, opts).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast.to_text(), slow.to_text());
    }

    #[test]
    fn reference_surfaces_oom_like_the_fast_path() {
        let stream = WorkloadSpec::new(4, 512).with_vectors(1).generate();
        let cfg = MachineConfig::mi100_like(1).with_mem_bytes(1024);
        let err = plan_schedule_seed(
            &mut RoundRobinScheduler::new(),
            &stream,
            &cfg,
            DriverOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ScheduleError::Exec { .. }));
    }
}
