//! Baseline schedulers the paper compares against.

use micco_gpusim::{GpuId, MachineView};
use micco_workload::{ContractionTask, Vector};

use crate::driver::Scheduler;

/// Groute-like baseline (Ben-Nun et al., the paper's comparison point):
/// assign each incoming pair — and its data — to the *earliest available
/// device*, i.e. the device with the least accumulated busy time in the
/// current stage. Purely load-balance-driven; residency is ignored when
/// choosing (though the machine still reuses accidentally co-located data,
/// as real Groute would).
#[derive(Debug, Clone, Default)]
pub struct GrouteScheduler;

impl GrouteScheduler {
    /// New baseline scheduler.
    pub fn new() -> Self {
        GrouteScheduler
    }
}

impl Scheduler for GrouteScheduler {
    fn name(&self) -> String {
        "groute".to_owned()
    }

    fn write_name(&self, out: &mut dyn std::fmt::Write) -> std::fmt::Result {
        out.write_str("groute")
    }

    fn begin_vector(&mut self, _vector: &Vector, _view: &dyn MachineView) {}

    fn assign(&mut self, _task: &ContractionTask, view: &dyn MachineView) -> GpuId {
        (0..view.num_gpus())
            .map(GpuId)
            .min_by(|a, b| {
                view.stage_busy_secs(*a)
                    .total_cmp(&view.stage_busy_secs(*b))
                    .then(a.0.cmp(&b.0))
            })
            .expect("machine has at least one GPU")
    }
}

/// CODA-like baseline (Kim et al., ACM TACO 2018, discussed in the paper's
/// related work): co-location of computation and data via *static*
/// fine-grained interleaved placement. Every tensor has a fixed home device
/// (hash of its id); a contraction runs on the home of its larger operand
/// (first operand on ties). Data placement is considered — but statically,
/// with no reuse/balance interplay, which is exactly the gap the paper
/// positions MICCO against ("pays more attention to data locations rather
/// than reusing data").
#[derive(Debug, Clone, Default)]
pub struct CodaScheduler;

impl CodaScheduler {
    /// New CODA-like scheduler.
    pub fn new() -> Self {
        CodaScheduler
    }

    /// Static home device of a tensor.
    fn home(id: micco_workload::TensorId, num_gpus: usize) -> GpuId {
        // splitmix-style hash for an even interleave
        let mut x = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 31;
        GpuId((x % num_gpus as u64) as usize)
    }
}

impl Scheduler for CodaScheduler {
    fn name(&self) -> String {
        "coda".to_owned()
    }

    fn write_name(&self, out: &mut dyn std::fmt::Write) -> std::fmt::Result {
        out.write_str("coda")
    }

    fn begin_vector(&mut self, _vector: &Vector, _view: &dyn MachineView) {}

    fn assign(&mut self, task: &ContractionTask, view: &dyn MachineView) -> GpuId {
        let n = view.num_gpus();
        if task.b.bytes > task.a.bytes {
            Self::home(task.b.id, n)
        } else {
            Self::home(task.a.id, n)
        }
    }
}

/// Trivial round-robin placement (sanity baseline; perfectly balanced in
/// task count, oblivious to everything else).
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    next: usize,
}

impl RoundRobinScheduler {
    /// New round-robin scheduler.
    pub fn new() -> Self {
        RoundRobinScheduler { next: 0 }
    }
}

impl Scheduler for RoundRobinScheduler {
    fn name(&self) -> String {
        "round-robin".to_owned()
    }

    fn write_name(&self, out: &mut dyn std::fmt::Write) -> std::fmt::Result {
        out.write_str("round-robin")
    }

    fn begin_vector(&mut self, _vector: &Vector, _view: &dyn MachineView) {}

    fn assign(&mut self, _task: &ContractionTask, view: &dyn MachineView) -> GpuId {
        let g = GpuId(self.next % view.num_gpus());
        self.next += 1;
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_schedule;
    use micco_gpusim::MachineConfig;
    use micco_workload::WorkloadSpec;

    #[test]
    fn groute_balances_busy_time() {
        let stream = WorkloadSpec::new(32, 128)
            .with_repeat_rate(0.0)
            .with_vectors(2)
            .generate();
        let r = run_schedule(
            &mut GrouteScheduler::new(),
            &stream,
            &MachineConfig::mi100_like(4),
        )
        .unwrap();
        // with homogeneous tasks and no reuse, busy times should be near equal
        assert!(
            r.stats.imbalance() < 1.1,
            "imbalance {}",
            r.stats.imbalance()
        );
    }

    #[test]
    fn groute_uses_all_devices() {
        let stream = WorkloadSpec::new(16, 64).with_vectors(1).generate();
        let r = run_schedule(
            &mut GrouteScheduler::new(),
            &stream,
            &MachineConfig::mi100_like(8),
        )
        .unwrap();
        let mut used: Vec<usize> = r.assignments.iter().map(|a| a.gpu.0).collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 8);
    }

    #[test]
    fn round_robin_cycles() {
        let stream = WorkloadSpec::new(6, 64).with_vectors(1).generate();
        let r = run_schedule(
            &mut RoundRobinScheduler::new(),
            &stream,
            &MachineConfig::mi100_like(3),
        )
        .unwrap();
        let gpus: Vec<usize> = r.assignments.iter().map(|a| a.gpu.0).collect();
        assert_eq!(gpus, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn names() {
        assert_eq!(GrouteScheduler::new().name(), "groute");
        assert_eq!(RoundRobinScheduler::new().name(), "round-robin");
        assert_eq!(CodaScheduler::new().name(), "coda");
    }

    #[test]
    fn coda_placement_is_static() {
        // the same tensor pair always lands on the same device, across
        // vectors and machine states
        let stream = WorkloadSpec::new(8, 64)
            .with_repeat_rate(0.9)
            .with_vectors(3)
            .generate();
        let cfg = MachineConfig::mi100_like(4);
        let r1 = run_schedule(&mut CodaScheduler::new(), &stream, &cfg).unwrap();
        let r2 = run_schedule(&mut CodaScheduler::new(), &stream, &cfg).unwrap();
        assert_eq!(r1.assignments, r2.assignments);
        // tasks sharing the same larger operand land together
        use std::collections::HashMap;
        let mut by_operand: HashMap<u64, Vec<usize>> = HashMap::new();
        for (v, a) in stream
            .vectors
            .iter()
            .flat_map(|v| &v.tasks)
            .zip(&r1.assignments)
        {
            by_operand.entry(v.a.id.0).or_default().push(a.gpu.0);
        }
        for (_, gpus) in by_operand {
            assert!(gpus.windows(2).all(|w| w[0] == w[1]), "home must be static");
        }
    }

    #[test]
    fn coda_repeats_colocate_and_reuse() {
        // with heavy reuse, CODA gets reuse hits (its whole selling point)
        let stream = WorkloadSpec::new(32, 128)
            .with_repeat_rate(0.9)
            .with_vectors(4)
            .generate();
        let cfg = MachineConfig::mi100_like(4);
        let coda = run_schedule(&mut CodaScheduler::new(), &stream, &cfg).unwrap();
        assert!(coda.stats.total_reuse_hits() > 0);
    }
}
