//! One config grammar for the whole stack: [`SessionConfig`] captures the
//! full decision surface of a scheduled run — workload shape, machine
//! shape, scheduler choice, driver knobs, topology, faults, retry policy
//! and durable store — and round-trips to JSON, so the CLI's
//! `plan`/`run`/`execute` flags and the `micco serve` submission body
//! deserialize into exactly the same struct.
//!
//! ```
//! use micco_core::SessionConfig;
//!
//! let cfg = SessionConfig::parse(r#"{"gpus": 2, "vectors": 2, "vector_size": 8,
//!                                    "tensor_size": 48, "scheduler": "micco"}"#)?;
//! let report = cfg.run()?;
//! assert!(report.gflops() > 0.0);
//! // serialization round-trips
//! assert_eq!(SessionConfig::parse(&cfg.to_json())?, cfg);
//! # Ok::<(), micco_core::ConfigError>(())
//! ```

use std::fmt;

use micco_gpusim::{FaultPlan, LinkTopology, MachineConfig};
use micco_obs::json::{ObjBuilder, Value};
use micco_workload::{RepeatDistribution, TensorPairStream, WorkloadSpec};

use crate::baselines::{CodaScheduler, GrouteScheduler, RoundRobinScheduler};
use crate::bounds::ReuseBounds;
use crate::driver::{DriverOptions, ScheduleReport, Scheduler};
use crate::micco::MiccoScheduler;
use crate::session::Session;

/// A retry policy for fault-tolerant execution: up to `max_attempts`
/// tries per task with `delay_us` microseconds of backoff between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per task (1 = no retry).
    pub max_attempts: u32,
    /// Backoff between attempts, microseconds.
    pub delay_us: u64,
}

/// Config error: a field failed validation or the JSON was malformed.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<crate::driver::ScheduleError> for ConfigError {
    fn from(e: crate::driver::ScheduleError) -> Self {
        ConfigError(e.to_string())
    }
}

impl From<crate::store::DurableError> for ConfigError {
    fn from(e: crate::store::DurableError) -> Self {
        ConfigError(e.to_string())
    }
}

/// The full decision surface of one scheduled contraction job.
///
/// Every field has a default matching the CLI's defaults, so a config can
/// be as sparse as `{}`. Unknown JSON keys are rejected — a typoed field
/// fails loudly instead of silently running with defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    // -- workload --
    /// Pairs per correlation vector.
    pub vector_size: usize,
    /// Square tensor dimension.
    pub tensor_size: usize,
    /// Cross-vector operand repeat rate in `[0, 1]`.
    pub rate: f64,
    /// Repeat distribution: `uniform` | `gaussian` | `zipf`.
    pub dist: String,
    /// Number of correlation vectors (stages).
    pub vectors: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Tensors per batch slot.
    pub batch: usize,
    /// Optional explicit dimension choices (empty = generator default).
    pub dims: Vec<usize>,
    // -- machine --
    /// Simulated GPU count.
    pub gpus: usize,
    /// Memory oversubscription factor (0 = off): per-GPU memory is sized
    /// to `working_set * oversub / gpus`.
    pub oversub: f64,
    // -- scheduler --
    /// Scheduler name: `micco` | `micco-naive` | `groute` | `coda` | `rr`.
    pub scheduler: String,
    /// MICCO reuse bounds `(l, r, v)`.
    pub bounds: [usize; 3],
    // -- driver --
    /// Copy/compute overlap (the async-copy engine).
    pub overlap: bool,
    /// DMA staging window in tasks (0 = unbounded).
    pub prefetch_tasks: usize,
    /// Link topology spec (`nvlink{…}` grammar), `None` = flat.
    pub topology: Option<String>,
    /// Let the scheduler see the topology when scoring candidates.
    pub topology_aware: bool,
    // -- resilience --
    /// Fault-injection spec (`kernel:T*N,timeout:T*N,lose:G@S,flake:G@S`
    /// grammar), `None` = no faults.
    pub faults: Option<String>,
    /// Retry policy for fault-tolerant execution, `None` = engine default.
    pub retry: Option<RetryPolicy>,
    // -- persistence --
    /// Durable plan store directory; planning goes through the
    /// write-ahead log for warm starts.
    pub store: Option<String>,
    // -- real-engine knobs --
    /// Work stealing between executor workers.
    pub steal: bool,
    /// Prefetch hints in the real engine.
    pub prefetch: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            vector_size: 64,
            tensor_size: 384,
            rate: 0.5,
            dist: "uniform".to_owned(),
            vectors: 10,
            seed: 0,
            batch: 4,
            dims: Vec::new(),
            gpus: 8,
            oversub: 0.0,
            scheduler: "micco".to_owned(),
            bounds: [0, 2, 0],
            overlap: false,
            prefetch_tasks: 0,
            topology: None,
            topology_aware: false,
            faults: None,
            retry: None,
            store: None,
            steal: false,
            prefetch: false,
        }
    }
}

/// All keys `SessionConfig::parse` accepts, in schema order.
pub const CONFIG_KEYS: &[&str] = &[
    "vector_size",
    "tensor_size",
    "rate",
    "dist",
    "vectors",
    "seed",
    "batch",
    "dims",
    "gpus",
    "oversub",
    "scheduler",
    "bounds",
    "overlap",
    "prefetch_tasks",
    "topology",
    "topology_aware",
    "faults",
    "retry",
    "store",
    "steal",
    "prefetch",
];

impl SessionConfig {
    /// A config with every field at its CLI default.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- JSON ----

    /// Parse from JSON. Absent fields take defaults; unknown keys and
    /// type mismatches are errors.
    pub fn parse(json: &str) -> Result<SessionConfig, ConfigError> {
        let v = Value::parse(json).map_err(|e| ConfigError(e.to_string()))?;
        Self::from_value(&v)
    }

    /// Parse from an already decoded JSON value (e.g. a field of a larger
    /// request body).
    pub fn from_value(v: &Value) -> Result<SessionConfig, ConfigError> {
        let obj = v
            .as_obj()
            .ok_or_else(|| ConfigError("config must be a JSON object".into()))?;
        for key in obj.keys() {
            if !CONFIG_KEYS.contains(&key.as_str()) {
                return Err(ConfigError(format!("unknown config key '{key}'")));
            }
        }
        let mut cfg = SessionConfig::default();
        get_usize(v, "vector_size", &mut cfg.vector_size)?;
        get_usize(v, "tensor_size", &mut cfg.tensor_size)?;
        get_f64(v, "rate", &mut cfg.rate)?;
        get_str(v, "dist", &mut cfg.dist)?;
        get_usize(v, "vectors", &mut cfg.vectors)?;
        get_u64(v, "seed", &mut cfg.seed)?;
        get_usize(v, "batch", &mut cfg.batch)?;
        if let Some(dims) = v.get("dims") {
            let arr = dims
                .as_arr()
                .ok_or_else(|| ConfigError("'dims' must be an array".into()))?;
            cfg.dims = arr
                .iter()
                .map(|d| {
                    d.as_u64().map(|n| n as usize).ok_or_else(|| {
                        ConfigError("'dims' entries must be non-negative integers".into())
                    })
                })
                .collect::<Result<_, _>>()?;
        }
        get_usize(v, "gpus", &mut cfg.gpus)?;
        get_f64(v, "oversub", &mut cfg.oversub)?;
        get_str(v, "scheduler", &mut cfg.scheduler)?;
        if let Some(b) = v.get("bounds") {
            let arr = b
                .as_arr()
                .ok_or_else(|| ConfigError("'bounds' must be an array".into()))?;
            if arr.len() != 3 {
                return Err(ConfigError("'bounds' needs exactly three integers".into()));
            }
            for (i, x) in arr.iter().enumerate() {
                cfg.bounds[i] = x.as_u64().ok_or_else(|| {
                    ConfigError("'bounds' entries must be non-negative integers".into())
                })? as usize;
            }
        }
        get_bool(v, "overlap", &mut cfg.overlap)?;
        get_usize(v, "prefetch_tasks", &mut cfg.prefetch_tasks)?;
        get_opt_str(v, "topology", &mut cfg.topology)?;
        get_bool(v, "topology_aware", &mut cfg.topology_aware)?;
        get_opt_str(v, "faults", &mut cfg.faults)?;
        if let Some(r) = v.get("retry") {
            if *r != Value::Null {
                let max = r
                    .get("max_attempts")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| ConfigError("'retry.max_attempts' must be an integer".into()))?;
                let delay = match r.get("delay_us") {
                    None => 0,
                    Some(d) => d
                        .as_u64()
                        .ok_or_else(|| ConfigError("'retry.delay_us' must be an integer".into()))?,
                };
                cfg.retry = Some(RetryPolicy {
                    max_attempts: max as u32,
                    delay_us: delay,
                });
            }
        }
        get_opt_str(v, "store", &mut cfg.store)?;
        get_bool(v, "steal", &mut cfg.steal)?;
        get_bool(v, "prefetch", &mut cfg.prefetch)?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Serialize to compact JSON (round-trips through [`Self::parse`]).
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// The config as a JSON value (for embedding in larger documents).
    pub fn to_value(&self) -> Value {
        let mut b = ObjBuilder::new()
            .field("vector_size", self.vector_size)
            .field("tensor_size", self.tensor_size)
            .field("rate", self.rate)
            .field("dist", self.dist.as_str())
            .field("vectors", self.vectors)
            .field("seed", self.seed)
            .field("batch", self.batch)
            .field("gpus", self.gpus)
            .field("oversub", self.oversub)
            .field("scheduler", self.scheduler.as_str())
            .field(
                "bounds",
                Value::Arr(self.bounds.iter().map(|&x| Value::from(x)).collect()),
            )
            .field("overlap", self.overlap)
            .field("prefetch_tasks", self.prefetch_tasks)
            .field("topology_aware", self.topology_aware)
            .field("steal", self.steal)
            .field("prefetch", self.prefetch);
        if !self.dims.is_empty() {
            b = b.field(
                "dims",
                Value::Arr(self.dims.iter().map(|&d| Value::from(d)).collect()),
            );
        }
        b = b
            .opt("topology", self.topology.as_deref())
            .opt("faults", self.faults.as_deref())
            .opt("store", self.store.as_deref());
        if let Some(r) = &self.retry {
            b = b.field(
                "retry",
                ObjBuilder::new()
                    .field("max_attempts", r.max_attempts as u64)
                    .field("delay_us", r.delay_us)
                    .build(),
            );
        }
        b.build()
    }

    // ---- validation ----

    /// Check every field that has a constrained domain; the builders
    /// below assume a validated config.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.gpus == 0 {
            return Err(ConfigError("'gpus' must be at least 1".into()));
        }
        if self.vector_size == 0 || self.vectors == 0 {
            return Err(ConfigError(
                "'vector_size' and 'vectors' must be at least 1".into(),
            ));
        }
        if self.tensor_size == 0 {
            return Err(ConfigError("'tensor_size' must be at least 1".into()));
        }
        if !(0.0..=1.0).contains(&self.rate) {
            return Err(ConfigError("'rate' must be in [0, 1]".into()));
        }
        self.distribution()?;
        if self.oversub < 0.0 {
            return Err(ConfigError("'oversub' must be non-negative".into()));
        }
        // scheduler + bounds check by construction
        self.build_scheduler()?;
        // topology / faults specs must parse
        self.link_topology()?;
        self.fault_plan()?;
        if let Some(r) = &self.retry {
            if r.max_attempts == 0 {
                return Err(ConfigError(
                    "'retry.max_attempts' must be at least 1".into(),
                ));
            }
        }
        Ok(())
    }

    fn distribution(&self) -> Result<RepeatDistribution, ConfigError> {
        match self.dist.as_str() {
            "uniform" => Ok(RepeatDistribution::Uniform),
            "gaussian" => Ok(RepeatDistribution::Gaussian),
            "zipf" => Ok(RepeatDistribution::Zipf),
            other => Err(ConfigError(format!(
                "unknown distribution '{other}' (uniform|gaussian|zipf)"
            ))),
        }
    }

    // ---- builders ----

    /// Generate the synthetic workload this config describes.
    pub fn stream(&self) -> Result<TensorPairStream, ConfigError> {
        let mut spec = WorkloadSpec::new(self.vector_size, self.tensor_size)
            .with_repeat_rate(self.rate)
            .with_distribution(self.distribution()?)
            .with_vectors(self.vectors)
            .with_seed(self.seed)
            .with_batch(self.batch);
        if !self.dims.is_empty() {
            spec = spec.with_dim_choices(self.dims.clone());
        }
        Ok(spec.generate())
    }

    /// The machine shape (needs the stream for oversubscription sizing).
    pub fn machine(&self, stream: &TensorPairStream) -> MachineConfig {
        let mut cfg = MachineConfig::mi100_like(self.gpus);
        if self.overlap {
            cfg = cfg.with_cost(cfg.cost.with_async_copy());
        }
        if self.prefetch_tasks > 0 {
            cfg = cfg.with_cost(cfg.cost.with_prefetch_tasks(self.prefetch_tasks));
        }
        if self.oversub > 0.0 {
            cfg = cfg.with_oversubscription(stream.unique_bytes(), self.oversub);
        }
        cfg
    }

    /// The scheduler this config names.
    pub fn build_scheduler(&self) -> Result<Box<dyn Scheduler>, ConfigError> {
        match self.scheduler.as_str() {
            "micco" => Ok(Box::new(MiccoScheduler::new(ReuseBounds::new(
                self.bounds[0],
                self.bounds[1],
                self.bounds[2],
            )))),
            "micco-naive" => Ok(Box::new(MiccoScheduler::naive())),
            "groute" => Ok(Box::new(GrouteScheduler::new())),
            "coda" => Ok(Box::new(CodaScheduler::new())),
            "rr" | "round-robin" => Ok(Box::new(RoundRobinScheduler::new())),
            other => Err(ConfigError(format!(
                "unknown scheduler '{other}' (micco|micco-naive|groute|coda|rr)"
            ))),
        }
    }

    /// Execution-side driver options (overlap / prefetch / overhead /
    /// topology-awareness).
    pub fn driver_options(&self) -> DriverOptions {
        let mut opts = DriverOptions::default().with_measure_overhead();
        if self.overlap {
            opts = opts.with_overlap();
        }
        if self.prefetch_tasks > 0 {
            opts = opts.with_prefetch_tasks(self.prefetch_tasks);
        }
        if self.topology_aware {
            opts = opts.with_topology_aware();
        }
        opts
    }

    /// The canonical options plans are *keyed* with in a durable store —
    /// execution-side flags (overlap, prefetch) do not change the decided
    /// IR, so they stay out of the key. Identical to the CLI's
    /// `plan --store` keying, so plans decided there warm-start the
    /// daemon and vice versa.
    pub fn plan_options(&self) -> DriverOptions {
        let mut opts = DriverOptions::default().with_measure_overhead();
        if self.topology_aware {
            opts = opts.with_topology_aware();
        }
        opts
    }

    /// The parsed link topology, `None` when flat.
    pub fn link_topology(&self) -> Result<Option<LinkTopology>, ConfigError> {
        match self.topology.as_deref() {
            None | Some("flat") => Ok(None),
            Some(spec) => LinkTopology::parse(spec.trim())
                .map(Some)
                .map_err(|e| ConfigError(format!("'topology': {e}"))),
        }
    }

    /// The parsed fault plan (empty when none configured).
    pub fn fault_plan(&self) -> Result<FaultPlan, ConfigError> {
        match self.faults.as_deref() {
            None => Ok(FaultPlan::none()),
            Some(spec) => FaultPlan::parse(spec).map_err(|e| ConfigError(format!("'faults': {e}"))),
        }
    }

    /// Assemble the [`Session`] this config describes: machine + driver
    /// options + topology + faults + retry + store, ready to plan or run.
    pub fn session(&self, stream: &TensorPairStream) -> Result<Session, ConfigError> {
        let mut session = Session::new(self.machine(stream)).with_options(self.driver_options());
        if let Some(topo) = self.link_topology()? {
            session = session.with_topology(topo);
        }
        let faults = self.fault_plan()?;
        if faults.fault_count() > 0 {
            session = session.with_faults(faults);
        }
        if let Some(r) = &self.retry {
            session = session.retry(r.max_attempts, std::time::Duration::from_micros(r.delay_us));
        }
        if let Some(dir) = &self.store {
            session = session.with_store(dir);
        }
        Ok(session)
    }

    /// Decide and execute in one call — generates the stream, builds the
    /// session and scheduler, plans (through the durable store when one
    /// is configured) and replays.
    pub fn run(&self) -> Result<ScheduleReport, ConfigError> {
        let stream = self.stream()?;
        let session = self.session(&stream)?;
        let mut scheduler = self.build_scheduler()?;
        if self.store.is_some() {
            let (planned, _stats) = session.plan_durable(scheduler.as_mut(), &stream)?;
            Ok(planned.execute(&stream)?)
        } else {
            Ok(session.run(scheduler.as_mut(), &stream)?)
        }
    }
}

fn get_usize(v: &Value, key: &str, out: &mut usize) -> Result<(), ConfigError> {
    if let Some(x) = v.get(key) {
        *out = x
            .as_u64()
            .ok_or_else(|| ConfigError(format!("'{key}' must be a non-negative integer")))?
            as usize;
    }
    Ok(())
}

fn get_u64(v: &Value, key: &str, out: &mut u64) -> Result<(), ConfigError> {
    if let Some(x) = v.get(key) {
        *out = x
            .as_u64()
            .ok_or_else(|| ConfigError(format!("'{key}' must be a non-negative integer")))?;
    }
    Ok(())
}

fn get_f64(v: &Value, key: &str, out: &mut f64) -> Result<(), ConfigError> {
    if let Some(x) = v.get(key) {
        *out = x
            .as_f64()
            .ok_or_else(|| ConfigError(format!("'{key}' must be a number")))?;
    }
    Ok(())
}

fn get_bool(v: &Value, key: &str, out: &mut bool) -> Result<(), ConfigError> {
    if let Some(x) = v.get(key) {
        *out = x
            .as_bool()
            .ok_or_else(|| ConfigError(format!("'{key}' must be a boolean")))?;
    }
    Ok(())
}

fn get_str(v: &Value, key: &str, out: &mut String) -> Result<(), ConfigError> {
    if let Some(x) = v.get(key) {
        *out = x
            .as_str()
            .ok_or_else(|| ConfigError(format!("'{key}' must be a string")))?
            .to_owned();
    }
    Ok(())
}

fn get_opt_str(v: &Value, key: &str, out: &mut Option<String>) -> Result<(), ConfigError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(()),
        Some(x) => {
            *out = Some(
                x.as_str()
                    .ok_or_else(|| ConfigError(format!("'{key}' must be a string")))?
                    .to_owned(),
            );
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips_and_runs() {
        let cfg = SessionConfig {
            vector_size: 8,
            tensor_size: 48,
            vectors: 2,
            gpus: 2,
            ..SessionConfig::default()
        };
        let json = cfg.to_json();
        let back = SessionConfig::parse(&json).expect("round trip");
        assert_eq!(back, cfg);
        let report = cfg.run().expect("runs");
        assert!(report.gflops() > 0.0);
    }

    #[test]
    fn sparse_json_takes_defaults() {
        let cfg = SessionConfig::parse("{}").expect("empty object is the default config");
        assert_eq!(cfg, SessionConfig::default());
        let cfg = SessionConfig::parse(r#"{"gpus": 4, "scheduler": "rr"}"#).unwrap();
        assert_eq!(cfg.gpus, 4);
        assert_eq!(cfg.scheduler, "rr");
        assert_eq!(cfg.vector_size, 64);
    }

    #[test]
    fn full_surface_round_trips() {
        let cfg = SessionConfig {
            vector_size: 16,
            tensor_size: 96,
            rate: 0.25,
            dist: "zipf".into(),
            vectors: 3,
            seed: 42,
            batch: 2,
            dims: vec![32, 64],
            gpus: 4,
            oversub: 1.5,
            scheduler: "micco".into(),
            bounds: [1, 3, 1],
            overlap: true,
            prefetch_tasks: 2,
            topology: Some("nvlink{gpus: 4, island: 2}".into()),
            topology_aware: true,
            faults: Some("kernel:3*1".into()),
            retry: Some(RetryPolicy {
                max_attempts: 3,
                delay_us: 50,
            }),
            store: Some("/tmp/plans".into()),
            steal: true,
            prefetch: true,
        };
        let back = SessionConfig::parse(&cfg.to_json()).expect("round trip");
        assert_eq!(back, cfg);
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected() {
        assert!(SessionConfig::parse(r#"{"gpu": 4}"#).is_err(), "typo key");
        assert!(SessionConfig::parse(r#"{"gpus": -1}"#).is_err());
        assert!(SessionConfig::parse(r#"{"gpus": 0}"#).is_err());
        assert!(SessionConfig::parse(r#"{"rate": 1.5}"#).is_err());
        assert!(SessionConfig::parse(r#"{"scheduler": "magic"}"#).is_err());
        assert!(SessionConfig::parse(r#"{"dist": "pareto"}"#).is_err());
        assert!(SessionConfig::parse(r#"{"bounds": [1, 2]}"#).is_err());
        assert!(SessionConfig::parse(r#"{"topology": "nvlink{"}"#).is_err());
        assert!(SessionConfig::parse(r#"{"faults": "bogus"}"#).is_err());
        assert!(SessionConfig::parse(r#"{"retry": {"max_attempts": 0}}"#).is_err());
        assert!(SessionConfig::parse("[1]").is_err(), "non-object");
        assert!(SessionConfig::parse("not json").is_err());
    }

    #[test]
    fn topology_flat_is_none_and_specs_parse() {
        let mut cfg = SessionConfig {
            topology: Some("flat".into()),
            ..SessionConfig::default()
        };
        assert!(cfg.link_topology().unwrap().is_none());
        cfg.topology = Some("nvlink{gpus: 8, island: 4}".into());
        let topo = cfg.link_topology().unwrap().expect("parses");
        assert_eq!(topo.num_gpus(), 8);
    }

    #[test]
    fn same_config_decides_the_same_plan() {
        let cfg = SessionConfig {
            vector_size: 8,
            tensor_size: 48,
            vectors: 2,
            gpus: 2,
            ..SessionConfig::default()
        };
        let stream = cfg.stream().unwrap();
        let session = cfg.session(&stream).unwrap();
        let a = session
            .plan(cfg.build_scheduler().unwrap().as_mut(), &stream)
            .unwrap();
        let b = session
            .plan(cfg.build_scheduler().unwrap().as_mut(), &stream)
            .unwrap();
        // the decided placement is deterministic (the measured overhead
        // float is wall-clock and excluded from the comparison)
        assert_eq!(a.plan().stages, b.plan().stages);
        assert_eq!(a.plan().fingerprint, b.plan().fingerprint);
    }
}
