//! The MICCO heuristic scheduling algorithm (Alg. 1 + Alg. 2).
//!
//! Per tensor pair, the scheduler toggles among three policies:
//!
//! 1. **data-centric** — build the candidate queue from devices already
//!    holding the pair's operands, gated by the pattern's reuse bound
//!    (Alg. 1);
//! 2. **computation-centric** — among candidates, pick the least-loaded
//!    device (Alg. 2, no-eviction branch);
//! 3. **memory-eviction-sensitive** — if any candidate would have to evict,
//!    pick the device with the most free memory instead (Alg. 2, eviction
//!    branch).
//!
//! Ties break by the secondary metric and then uniformly at random from a
//! seeded RNG (the paper's `random(min …)`; seeded here so every experiment
//! is reproducible).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use micco_gpusim::{GpuId, MachineView};
use micco_workload::{ContractionTask, DataCharacteristics, FastIdSet, TensorId, Vector};

use crate::bounds::{BoundsProvider, FixedBounds, ReuseBounds};
use crate::driver::Scheduler;
use crate::pattern::{classify_into, ClassifiedPair};
use crate::state::VectorState;

/// Reusable per-assign scratch: holder classification, the candidate
/// queue, the per-candidate score cache, and the finalist list. Cleared
/// and refilled on every [`MiccoScheduler::assign`] call so the steady
/// state of a million-task plan allocates nothing.
#[derive(Debug, Clone, Default)]
struct AssignScratch {
    class: ClassifiedPair,
    candidates: Vec<GpuId>,
    keys: Vec<(f64, f64)>,
    finalists: Vec<GpuId>,
}

/// The MICCO scheduler, generic over where its reuse bounds come from.
///
/// * `MiccoScheduler::new(bounds)` — fixed bounds (Fig. 8 sweeps);
/// * `MiccoScheduler::naive()` — all-zero bounds (the paper's MICCO-naive);
/// * `MiccoScheduler::with_provider(model)` — per-vector bounds from the
///   regression model (the paper's MICCO-optimal).
///
/// # Examples
///
/// ```
/// use micco_core::{run_schedule, GrouteScheduler, MiccoScheduler, ReuseBounds};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let stream = WorkloadSpec::new(32, 256).with_repeat_rate(0.75).with_vectors(6).generate();
/// let machine = MachineConfig::mi100_like(4);
/// let micco = run_schedule(
///     &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
///     &stream,
///     &machine,
/// ).unwrap();
/// let groute = run_schedule(&mut GrouteScheduler::new(), &stream, &machine).unwrap();
/// // reuse-aware placement finds strictly more resident operands
/// assert!(micco.stats.total_reuse_hits() >= groute.stats.total_reuse_hits());
/// ```
#[derive(Debug, Clone)]
pub struct MiccoScheduler<P: BoundsProvider = FixedBounds> {
    provider: P,
    state: VectorState,
    bounds: ReuseBounds,
    rng: StdRng,
    seen: FastIdSet<TensorId>,
    scratch: AssignScratch,
    topology_aware: bool,
}

impl MiccoScheduler<FixedBounds> {
    /// MICCO with a fixed reuse-bound setting.
    pub fn new(bounds: ReuseBounds) -> Self {
        MiccoScheduler::with_provider(FixedBounds(bounds))
    }

    /// MICCO-naive: reuse bounds all zero.
    pub fn naive() -> Self {
        MiccoScheduler::new(ReuseBounds::naive())
    }
}

impl<P: BoundsProvider> MiccoScheduler<P> {
    /// MICCO with a per-vector bounds provider (e.g. the regression model).
    pub fn with_provider(provider: P) -> Self {
        MiccoScheduler {
            provider,
            state: VectorState::default(),
            bounds: ReuseBounds::naive(),
            rng: StdRng::seed_from_u64(0x4d49_4343_4f00), // "MICCO"
            seen: FastIdSet::default(),
            scratch: AssignScratch::default(),
            topology_aware: false,
        }
    }

    /// Override the tie-break RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// The bounds in effect for the current vector.
    pub fn current_bounds(&self) -> ReuseBounds {
        self.bounds
    }

    /// Alg. 2: pick from the candidate queue, toggling between the
    /// computation-centric and memory-eviction-sensitive policies.
    ///
    /// Candidate scoring fans out through `rayon` (`par_iter`) and is
    /// collected *in candidate order*; the reduction to the winner is then
    /// a fixed-order sequential scan over that ordered score vector. The
    /// extremum, the finalist list, and the single RNG draw per assignment
    /// are therefore bit-identical to a fully sequential evaluation no
    /// matter how the scoring work is scheduled.
    #[allow(clippy::too_many_arguments)]
    fn select(
        rng: &mut StdRng,
        keys: &mut Vec<(f64, f64)>,
        finalists: &mut Vec<GpuId>,
        candidates: &[GpuId],
        task: &ContractionTask,
        view: &dyn MachineView,
        class: &ClassifiedPair,
        topology_aware: bool,
    ) -> GpuId {
        debug_assert!(!candidates.is_empty());
        // order-independent boolean OR over candidates
        let evict_risk = candidates.par_iter().any(|g| view.would_evict(*g, task));
        // Topology-aware fetch estimate: the routed link time the machine
        // would charge to pull each missing operand from its lowest-id
        // holder (the source the machine deterministically picks). Exactly
        // the execute-phase charge, so candidates reachable over NVLink
        // outrank candidates that would pull the same tensor across an
        // island or node boundary.
        let aware = topology_aware && view.topology().is_some();
        let fetch = |g: GpuId| -> f64 {
            let Some(topo) = view.topology() else {
                return 0.0;
            };
            let mut secs = 0.0;
            if !class.holders_a.is_empty() && !class.holders_a.contains(&g) {
                secs += topo.transfer_secs(class.holders_a[0].0, g.0, task.a.bytes);
            }
            if task.b.id != task.a.id
                && !class.holders_b.is_empty()
                && !class.holders_b.contains(&g)
            {
                secs += topo.transfer_secs(class.holders_b[0].0, g.0, task.b.bytes);
            }
            secs
        };
        // (primary, secondary) sort key per candidate. The computation-
        // centric policy ranks by least accumulated cost this stage
        // (`mapGPUCom`: busy time, so a device slowed by transfers is not
        // overloaded further), tie-broken by least memory; the memory-
        // eviction-sensitive policy flips the two.
        let key = |g: GpuId| {
            let busy = if aware {
                view.stage_busy_secs(g) + fetch(g)
            } else {
                view.stage_busy_secs(g)
            };
            if evict_risk {
                (view.mem_used(g) as f64, busy)
            } else {
                (busy, view.mem_used(g) as f64)
            }
        };
        keys.clear();
        keys.extend(candidates.par_iter().map(|&g| key(g)));
        let cmp = |a: &(f64, f64), b: &(f64, f64)| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1));
        let best = *keys.iter().min_by(|a, b| cmp(a, b)).expect("non-empty");
        finalists.clear();
        finalists.extend(
            candidates
                .iter()
                .zip(keys.iter())
                .filter(|(_, k)| cmp(k, &best) == std::cmp::Ordering::Equal)
                .map(|(&g, _)| g),
        );
        *finalists.choose(rng).expect("non-empty")
    }
}

impl<P: BoundsProvider> Scheduler for MiccoScheduler<P> {
    fn name(&self) -> String {
        format!("micco[{}]", self.provider.name())
    }

    fn write_name(&self, out: &mut dyn std::fmt::Write) -> std::fmt::Result {
        out.write_str("micco[")?;
        self.provider.write_name(out)?;
        out.write_str("]")
    }

    fn begin_vector(&mut self, vector: &Vector, view: &dyn MachineView) {
        let characteristics = DataCharacteristics::measure(vector, &mut self.seen);
        self.bounds = self.provider.bounds_for(&characteristics);
        self.state.begin(vector, view.num_gpus());
    }

    fn stage_bounds(&self) -> Option<ReuseBounds> {
        Some(self.bounds)
    }

    fn assign(&mut self, task: &ContractionTask, view: &dyn MachineView) -> GpuId {
        let AssignScratch {
            class,
            candidates,
            keys,
            finalists,
        } = &mut self.scratch;
        classify_into(task, view, class);
        let bounds = self.bounds;
        candidates.clear();

        // Step I (data-centric, mapping (1)): devices holding both operands.
        if !class.holders_both.is_empty() {
            candidates.extend(
                class
                    .holders_both
                    .iter()
                    .copied()
                    .filter(|&g| self.state.available(g, bounds.get(0))),
            );
        }

        // Step II (mappings (2)/(3)): devices holding one operand.
        if candidates.is_empty() && (!class.holders_a.is_empty() || !class.holders_b.is_empty()) {
            for &g in class.holders_a.iter().chain(&class.holders_b) {
                if self.state.available(g, bounds.get(1)) && !candidates.contains(&g) {
                    candidates.push(g);
                }
            }
        }

        // Step II fallback / TwoNew (mappings (4)–(7)): any available device.
        if candidates.is_empty() {
            candidates.extend(
                (0..view.num_gpus())
                    .map(GpuId)
                    .filter(|&g| self.state.available(g, bounds.get(2))),
            );
        }

        // Guarantee progress even under pathological bounds.
        if candidates.is_empty() {
            candidates.push(self.state.least_loaded());
        }

        let gpu = Self::select(
            &mut self.rng,
            keys,
            finalists,
            candidates,
            task,
            view,
            class,
            self.topology_aware,
        );
        self.state.record(gpu);
        gpu
    }

    fn set_topology_aware(&mut self, on: bool) {
        self.topology_aware = on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::GrouteScheduler;
    use crate::driver::{run_schedule, run_schedule_on};
    use micco_gpusim::{MachineConfig, SimMachine};
    use micco_workload::{RepeatDistribution, TaskId, TensorDesc, TensorPairStream, WorkloadSpec};

    const MB: u64 = 1 << 20;

    fn task(a: u64, b: u64, out: u64) -> ContractionTask {
        ContractionTask {
            id: TaskId(out),
            a: TensorDesc {
                id: TensorId(a),
                bytes: MB,
            },
            b: TensorDesc {
                id: TensorId(b),
                bytes: MB,
            },
            out: TensorDesc {
                id: TensorId(out),
                bytes: MB,
            },
            flops: 1_000_000,
        }
    }

    fn vector_of(tasks: Vec<ContractionTask>) -> Vector {
        Vector::new(tasks)
    }

    #[test]
    fn two_repeated_same_goes_to_holder() {
        let mut m = SimMachine::new(MachineConfig::mi100_like(4));
        // place tensors 1, 2 on gpu2 by executing a warm-up task there
        m.execute(&task(1, 2, 900), micco_gpusim::GpuId(2)).unwrap();
        m.barrier();
        let mut s = MiccoScheduler::new(ReuseBounds::new(2, 2, 2));
        let v = vector_of(vec![task(1, 2, 100)]);
        s.begin_vector(&v, &m);
        let g = s.assign(&v.tasks[0], &m);
        assert_eq!(g, micco_gpusim::GpuId(2));
    }

    #[test]
    fn one_repeated_goes_to_holder() {
        let mut m = SimMachine::new(MachineConfig::mi100_like(4));
        m.execute(&task(1, 9, 900), micco_gpusim::GpuId(3)).unwrap();
        m.barrier();
        let mut s = MiccoScheduler::new(ReuseBounds::new(2, 2, 2));
        let v = vector_of(vec![task(1, 5, 100)]);
        s.begin_vector(&v, &m);
        assert_eq!(s.assign(&v.tasks[0], &m), micco_gpusim::GpuId(3));
    }

    #[test]
    fn saturated_holder_is_skipped_under_naive_bounds() {
        let mut m = SimMachine::new(MachineConfig::mi100_like(2));
        m.execute(&task(1, 2, 900), micco_gpusim::GpuId(0)).unwrap();
        m.barrier();
        let mut s = MiccoScheduler::naive();
        // vector of 2 pairs → 4 slots / 2 GPUs → balance 2; bound 0
        let v = vector_of(vec![task(1, 2, 100), task(1, 2, 101)]);
        s.begin_vector(&v, &m);
        let g0 = s.assign(&v.tasks[0], &m);
        assert_eq!(g0, micco_gpusim::GpuId(0), "first pair reuses gpu0");
        m.execute(&v.tasks[0], g0).unwrap();
        // gpu0 now has 2 assigned tensors = bound(0) + balance(2)... wait,
        // 2 < 0 + 2 is false → gpu0 unavailable; pair must go to gpu1
        let g1 = s.assign(&v.tasks[1], &m);
        assert_eq!(g1, micco_gpusim::GpuId(1), "bound forces spill to gpu1");
    }

    #[test]
    fn generous_bounds_allow_piling_on_holder() {
        let mut m = SimMachine::new(MachineConfig::mi100_like(2));
        m.execute(&task(1, 2, 900), micco_gpusim::GpuId(0)).unwrap();
        m.barrier();
        let mut s = MiccoScheduler::new(ReuseBounds::new(4, 4, 4));
        let v = vector_of(vec![task(1, 2, 100), task(1, 2, 101)]);
        s.begin_vector(&v, &m);
        let g0 = s.assign(&v.tasks[0], &m);
        m.execute(&v.tasks[0], g0).unwrap();
        let g1 = s.assign(&v.tasks[1], &m);
        assert_eq!((g0, g1), (micco_gpusim::GpuId(0), micco_gpusim::GpuId(0)));
    }

    #[test]
    fn two_new_prefers_least_compute() {
        let mut m = SimMachine::new(MachineConfig::mi100_like(2));
        // load gpu0 with work in the current stage
        let warm = task(1, 2, 900);
        m.execute(&warm, micco_gpusim::GpuId(0)).unwrap();
        let mut s = MiccoScheduler::new(ReuseBounds::new(2, 2, 2));
        let v = vector_of(vec![task(10, 11, 100)]);
        s.begin_vector(&v, &m);
        assert_eq!(s.assign(&v.tasks[0], &m), micco_gpusim::GpuId(1));
    }

    #[test]
    fn eviction_risk_switches_to_memory_policy() {
        // capacity 4 MB; gpu0 holds 3 MB (busy but roomless), gpu1 holds 1 MB
        let cfg = MachineConfig::mi100_like(2).with_mem_bytes(4 * MB);
        let mut m = SimMachine::new(cfg);
        m.execute(&task(1, 2, 900), micco_gpusim::GpuId(0)).unwrap(); // 3 MB on gpu0
        m.barrier();
        let mut s = MiccoScheduler::new(ReuseBounds::new(4, 4, 4));
        // new pair needs 3 MB: gpu0 would evict (1 MB free), gpu1 not (4 MB
        // free). Under compute-centric both are idle this stage, so gpu0
        // could win the tie; the eviction check must force gpu1.
        let v = vector_of(vec![task(10, 11, 100)]);
        s.begin_vector(&v, &m);
        assert_eq!(s.assign(&v.tasks[0], &m), micco_gpusim::GpuId(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = WorkloadSpec::new(32, 128)
            .with_repeat_rate(0.7)
            .with_vectors(4)
            .generate();
        let cfg = MachineConfig::mi100_like(4);
        let run = |seed| {
            let mut s = MiccoScheduler::new(ReuseBounds::new(0, 2, 0)).with_seed(seed);
            run_schedule(&mut s, &stream, &cfg).unwrap().assignments
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn micco_beats_groute_on_reuse_heavy_workload() {
        let stream = WorkloadSpec::new(64, 384)
            .with_repeat_rate(0.75)
            .with_distribution(RepeatDistribution::Uniform)
            .with_vectors(6)
            .with_seed(3)
            .generate();
        let cfg = MachineConfig::mi100_like(8);
        let micco = run_schedule(
            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
        )
        .unwrap();
        let groute = run_schedule(&mut GrouteScheduler::new(), &stream, &cfg).unwrap();
        let speedup = micco.speedup_over(&groute);
        assert!(
            speedup > 1.05,
            "MICCO should beat Groute on reuse-heavy input; got speedup {speedup:.3} \
             (micco {:.1} GF, groute {:.1} GF)",
            micco.gflops(),
            groute.gflops()
        );
        // and it should do so via fewer peer transfers / more reuse hits
        // (h2d counts tie: every distinct tensor is fetched exactly once
        // under either scheduler; the savings are in replication traffic)
        assert!(micco.stats.total_d2d() < groute.stats.total_d2d());
        assert!(micco.stats.total_reuse_hits() > groute.stats.total_reuse_hits());
    }

    #[test]
    fn progress_under_pathological_bounds() {
        // bounds 0 with balance 1: every device saturates instantly, the
        // least-loaded fallback must still assign every pair
        let stream = WorkloadSpec::new(16, 64)
            .with_repeat_rate(1.0)
            .with_vectors(2)
            .generate();
        let cfg = MachineConfig::mi100_like(2);
        let r = run_schedule(&mut MiccoScheduler::naive(), &stream, &cfg).unwrap();
        assert_eq!(r.assignments.len(), stream.total_tasks());
    }

    #[test]
    fn saturated_same_holder_falls_back_to_one_tensor_holders() {
        // tensors 1,2 both on gpu0 (saturated); tensor 1 ALSO on gpu1.
        // Step I fails on bounds; step II must find gpu1 via holders-of-one.
        let mut m = SimMachine::new(MachineConfig::mi100_like(3));
        m.execute(&task(1, 2, 900), micco_gpusim::GpuId(0)).unwrap();
        m.execute(&task(1, 9, 901), micco_gpusim::GpuId(1)).unwrap();
        m.barrier();
        let mut s = MiccoScheduler::new(ReuseBounds::new(0, 4, 0));
        // balance = 2·1/3 → 1; saturate gpu0's per-vector count first
        let v = vector_of(vec![task(5, 6, 100), task(1, 2, 101)]);
        s.begin_vector(&v, &m);
        // force the first pair onto gpu0 by making it the only holder…
        // actually assign normally: TwoNew → least busy = any; then check
        // the second (TwoRepeatedSame on gpu0) must dodge to gpu1 if gpu0
        // is saturated.
        let g0 = s.assign(&v.tasks[0], &m);
        m.execute(&v.tasks[0], g0).unwrap();
        let g1 = s.assign(&v.tasks[1], &m);
        if g0 == micco_gpusim::GpuId(0) {
            assert_eq!(
                g1,
                micco_gpusim::GpuId(1),
                "saturated same-holder must fall back to the one-tensor holder"
            );
        } else {
            // gpu0 still available: the data-centric step takes it
            assert_eq!(g1, micco_gpusim::GpuId(0));
        }
    }

    #[test]
    fn eviction_branch_breaks_ties_by_compute() {
        // two candidates with equal memory: the eviction-sensitive branch
        // falls back to least compute among them
        let cfg = MachineConfig::mi100_like(2).with_mem_bytes(3 * MB);
        let mut m = SimMachine::new(cfg);
        // both GPUs hold 3 MB (full): any new task forces eviction risk
        m.execute(&task(1, 2, 900), micco_gpusim::GpuId(0)).unwrap();
        m.execute(&task(3, 4, 901), micco_gpusim::GpuId(1)).unwrap();
        // gpu0 now also has more stage compute
        m.execute(&task(1, 2, 902), micco_gpusim::GpuId(0)).unwrap();
        let mut s = MiccoScheduler::new(ReuseBounds::new(4, 4, 4));
        let v = vector_of(vec![task(10, 11, 100)]);
        s.begin_vector(&v, &m);
        // equal mem_used; gpu1 has less stage busy time → wins the tie
        assert_eq!(s.assign(&v.tasks[0], &m), micco_gpusim::GpuId(1));
    }

    #[test]
    fn current_bounds_reflect_provider() {
        let mut s = MiccoScheduler::new(ReuseBounds::new(1, 2, 3));
        let m = SimMachine::new(MachineConfig::mi100_like(2));
        let v = vector_of(vec![task(1, 2, 100)]);
        s.begin_vector(&v, &m);
        assert_eq!(s.current_bounds(), ReuseBounds::new(1, 2, 3));
    }

    #[test]
    fn name_reflects_provider() {
        let s = MiccoScheduler::new(ReuseBounds::new(0, 2, 0));
        assert_eq!(s.name(), "micco[fixed(0,2,0)]");
    }

    #[test]
    fn warm_machine_reuse_spans_vectors() {
        // run the same single-pair vector twice on one machine: the second
        // pass must classify as TwoRepeatedSame and stay on the same GPU
        let mut m = SimMachine::new(MachineConfig::mi100_like(4));
        m.enable_trace();
        let stream = TensorPairStream::new(vec![
            vector_of(vec![task(1, 2, 100)]),
            vector_of(vec![task(1, 2, 101)]),
        ]);
        let mut s = MiccoScheduler::new(ReuseBounds::new(2, 2, 2));
        let r = run_schedule_on(&mut s, &stream, &mut m).unwrap();
        assert_eq!(r.assignments[0].gpu, r.assignments[1].gpu);
        assert_eq!(r.stats.total_reuse_hits(), 2);
    }
}
