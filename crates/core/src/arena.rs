//! Bump-allocated plan assembly: one flat buffer per planning pass.
//!
//! The seed planner allocated a fresh `Vec<Assignment>` per stage and a
//! fresh stage vector per plan. At a million tasks that is thousands of
//! allocator round-trips per plan — and a [`crate::PlanCache`] that plans
//! many streams repays them every miss. A [`PlanArena`] turns the whole
//! decide phase into appends onto two flat, reusable vectors (assignments
//! in stream order, per-stage `(bounds, len)` records), reset with two
//! `clear()` calls between plans. The finished [`crate::SchedulePlan`] is
//! carved out of the arena in one pass with exact-capacity stage vectors.

use crate::bounds::ReuseBounds;
use crate::driver::Assignment;
use crate::plan::{PlanStage, SchedulePlan};

/// Reusable backing store for plan assembly (see module docs).
///
/// # Examples
///
/// ```
/// use micco_core::{plan_schedule_in, DriverOptions, PlanArena, RoundRobinScheduler};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let stream = WorkloadSpec::new(8, 64).with_vectors(2).generate();
/// let cfg = MachineConfig::mi100_like(2);
/// let mut arena = PlanArena::new();
/// let opts = DriverOptions::default();
/// let a = plan_schedule_in(&mut RoundRobinScheduler::new(), &stream, &cfg, opts, &mut arena)
///     .unwrap();
/// // replanning reuses the arena's buffers instead of reallocating
/// let b = plan_schedule_in(&mut RoundRobinScheduler::new(), &stream, &cfg, opts, &mut arena)
///     .unwrap();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PlanArena {
    assignments: Vec<Assignment>,
    stages: Vec<(Option<ReuseBounds>, u32)>,
}

impl PlanArena {
    /// An empty arena.
    pub fn new() -> Self {
        PlanArena::default()
    }

    /// An arena pre-sized for `tasks` assignments over `stages` stages.
    pub fn with_capacity(tasks: usize, stages: usize) -> Self {
        PlanArena {
            assignments: Vec::with_capacity(tasks),
            stages: Vec::with_capacity(stages),
        }
    }

    /// Drop the previous plan's contents, keeping the backing buffers.
    pub fn reset(&mut self) {
        self.assignments.clear();
        self.stages.clear();
    }

    /// Assignments recorded since the last [`Self::reset`].
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when nothing has been recorded since the last reset.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Append one placement to the current (open) stage.
    pub(crate) fn push(&mut self, a: Assignment) {
        self.assignments.push(a);
    }

    /// Close the current stage: all assignments pushed since the previous
    /// close belong to it.
    pub(crate) fn close_stage(&mut self, bounds: Option<ReuseBounds>) {
        let prior: u32 = self.stages.iter().map(|&(_, n)| n).sum();
        let len = u32::try_from(self.assignments.len())
            .ok()
            .and_then(|total| total.checked_sub(prior))
            .expect("stage length fits u32");
        self.stages.push((bounds, len));
    }

    /// Materialise the recorded stages into a [`SchedulePlan`] (one pass,
    /// exact-capacity stage vectors; the arena stays intact for reuse).
    pub(crate) fn to_plan(
        &self,
        scheduler: String,
        num_gpus: usize,
        fingerprint: u64,
        overhead_secs: f64,
    ) -> SchedulePlan {
        let mut stages = Vec::with_capacity(self.stages.len());
        let mut cursor = 0usize;
        for &(bounds, len) in &self.stages {
            let end = cursor + len as usize;
            stages.push(PlanStage {
                bounds,
                assignments: self.assignments[cursor..end].to_vec(),
            });
            cursor = end;
        }
        SchedulePlan {
            scheduler,
            num_gpus,
            fingerprint,
            overhead_secs,
            stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micco_gpusim::GpuId;
    use micco_workload::TaskId;

    fn a(task: u64, gpu: usize) -> Assignment {
        Assignment {
            task: TaskId(task),
            gpu: GpuId(gpu),
        }
    }

    #[test]
    fn stages_are_carved_in_order() {
        let mut arena = PlanArena::new();
        arena.push(a(0, 1));
        arena.push(a(1, 0));
        arena.close_stage(Some(ReuseBounds::new(0, 2, 0)));
        arena.close_stage(None); // empty stage
        arena.push(a(2, 1));
        arena.close_stage(None);
        let plan = arena.to_plan("t".to_owned(), 2, 99, 0.0);
        assert_eq!(plan.stages.len(), 3);
        assert_eq!(plan.stages[0].assignments, vec![a(0, 1), a(1, 0)]);
        assert_eq!(plan.stages[0].bounds, Some(ReuseBounds::new(0, 2, 0)));
        assert!(plan.stages[1].assignments.is_empty());
        assert_eq!(plan.stages[2].assignments, vec![a(2, 1)]);
        assert_eq!((plan.fingerprint, plan.num_gpus), (99, 2));
    }

    #[test]
    fn reset_keeps_capacity_and_clears_contents() {
        let mut arena = PlanArena::with_capacity(16, 4);
        for i in 0..10 {
            arena.push(a(i, 0));
        }
        arena.close_stage(None);
        assert_eq!(arena.len(), 10);
        arena.reset();
        assert!(arena.is_empty());
        let plan = arena.to_plan("t".to_owned(), 1, 0, 0.0);
        assert!(plan.stages.is_empty());
    }
}
