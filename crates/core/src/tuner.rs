//! Reuse-bound auto-tuning: grid search over bound settings (the ground
//! truth the regression model is trained on) and the Fig. 8 candidate set.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::collections::HashSet;

use micco_gpusim::MachineConfig;
use micco_workload::{DataCharacteristics, RepeatDistribution, TensorPairStream, WorkloadSpec};

use crate::bounds::ReuseBounds;
use crate::driver::run_schedule;
use crate::micco::MiccoScheduler;

/// The thirteen reuse-bound settings measured in Fig. 8 (values 0–2).
pub const FIG8_BOUND_SETTINGS: [[usize; 3]; 13] = [
    [0, 0, 0],
    [1, 0, 0],
    [2, 0, 0],
    [0, 1, 0],
    [0, 2, 0],
    [0, 0, 1],
    [0, 0, 2],
    [1, 1, 0],
    [0, 1, 1],
    [1, 1, 1],
    [0, 2, 2],
    [2, 2, 0],
    [2, 2, 2],
];

/// The full 0–2 cube (27 settings) — the "all possible values" sweep used to
/// label training samples (Sec. IV-C).
pub fn bound_cube() -> Vec<[usize; 3]> {
    let mut v = Vec::with_capacity(27);
    for a in 0..=2 {
        for b in 0..=2 {
            for c in 0..=2 {
                v.push([a, b, c]);
            }
        }
    }
    v
}

/// Simulated GFLOPS of MICCO with `bounds` on `stream`.
pub fn evaluate_bounds(
    stream: &TensorPairStream,
    config: &MachineConfig,
    bounds: ReuseBounds,
) -> f64 {
    let mut s = MiccoScheduler::new(bounds);
    match run_schedule(&mut s, stream, config) {
        Ok(report) => report.gflops(),
        // A setting that drives the machine out of memory scores zero.
        Err(_) => 0.0,
    }
}

/// Exhaustively evaluate `candidates` and return the best setting with its
/// GFLOPS.
pub fn grid_search(
    stream: &TensorPairStream,
    config: &MachineConfig,
    candidates: &[[usize; 3]],
) -> (ReuseBounds, f64) {
    assert!(!candidates.is_empty(), "no candidate bounds");
    candidates
        .iter()
        .map(|&c| {
            let b = ReuseBounds::from(c);
            (b, evaluate_bounds(stream, config, b))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty")
}

/// Grid search with label regularisation for training-set construction:
/// each candidate is scored as the *mean* GFLOPS over several streams of
/// the same spec (different seeds), and among all settings within
/// `tolerance` of the best mean, the smallest (L1, then lexicographic)
/// setting wins. Raw argmax labels are dominated by tie-breaking noise —
/// many settings land within a fraction of a percent of each other — and
/// unlearnable; preferring the smallest near-optimal bounds yields the
/// stable "how much imbalance is actually worth accepting" signal the
/// regression model is meant to capture.
pub fn grid_search_regularized(
    streams: &[TensorPairStream],
    config: &MachineConfig,
    candidates: &[[usize; 3]],
    tolerance: f64,
) -> (ReuseBounds, f64) {
    assert!(!candidates.is_empty(), "no candidate bounds");
    assert!(!streams.is_empty(), "no streams");
    let scored: Vec<([usize; 3], f64)> = candidates
        .iter()
        .map(|&c| {
            let mean = streams
                .iter()
                .map(|s| evaluate_bounds(s, config, c.into()))
                .sum::<f64>()
                / streams.len() as f64;
            (c, mean)
        })
        .collect();
    // NaN-safe maximum: folding from 0.0 with `f64::max` silently drops
    // NaN and negative scores, and the tolerance filter below could then
    // reject every candidate and panic. `total_cmp` totally orders the
    // scores, and clamping the threshold to `best` guarantees the best
    // candidate always survives its own filter.
    let best = scored
        .iter()
        .map(|(_, g)| *g)
        .fold(f64::NEG_INFINITY, |acc, g| {
            if g.total_cmp(&acc).is_gt() {
                g
            } else {
                acc
            }
        });
    let threshold = best.min(best * (1.0 - tolerance));
    let (setting, gflops) = scored
        .into_iter()
        .filter(|(_, g)| g.total_cmp(&threshold).is_ge())
        .min_by(|(a, ga), (b, gb)| {
            let norm = |s: &[usize; 3]| s.iter().sum::<usize>();
            norm(a).cmp(&norm(b)).then(a.cmp(b)).then(gb.total_cmp(ga))
        })
        .expect("at least the best survives the filter");
    (ReuseBounds::from(setting), gflops)
}

/// Candidate bound values for a vector of `tensor_slots` tensors on
/// `num_gpus` devices, spanning the paper's full training range: "reuse
/// bounds range from 0 to numTensor − balanceNum (i.e., assigning all data
/// to one GPU)" (Sec. IV-C). Geometric spacing keeps the sweep cheap while
/// covering the whole range.
pub fn candidate_bound_values(tensor_slots: usize, num_gpus: usize) -> Vec<usize> {
    let balance = tensor_slots.div_ceil(num_gpus).max(1);
    let max = tensor_slots.saturating_sub(balance);
    let mut vals = vec![0usize];
    let mut v = 2usize;
    while v < max {
        vals.push(v);
        v *= 2;
    }
    if max > 0 {
        vals.push(max);
    }
    vals.dedup();
    vals
}

/// Full-range per-component optimum by coordinate ascent: each bound
/// component is swept over `candidate_bound_values` in the context of the
/// components already fixed, scored as the mean GFLOPS over `streams`, and
/// set to the smallest value within `tolerance` of the component's best.
///
/// Coordinate ascent exposes the interactions between pattern classes (the
/// source of the relation's non-linearity, Table IV) while keeping the
/// label cost linear rather than cubic in the candidate count; the
/// smallest-within-tolerance rule keeps labels stable where the response
/// surface is flat (see DESIGN.md §6).
pub fn optimal_bounds_full_range(
    streams: &[TensorPairStream],
    config: &MachineConfig,
    tolerance: f64,
) -> (ReuseBounds, f64) {
    assert!(!streams.is_empty(), "no streams");
    let slots = streams[0]
        .vectors
        .first()
        .map(|v| v.tensor_slots())
        .unwrap_or(0);
    let candidates = candidate_bound_values(slots, config.num_gpus);
    let mean_gflops = |setting: [usize; 3]| {
        streams
            .iter()
            .map(|s| evaluate_bounds(s, config, setting.into()))
            .sum::<f64>()
            / streams.len() as f64
    };
    let mut bounds = [0usize; 3];
    for k in 0..3 {
        let scored: Vec<(usize, f64)> = candidates
            .iter()
            .map(|&v| {
                let mut setting = bounds;
                setting[k] = v;
                (v, mean_gflops(setting))
            })
            .collect();
        // same NaN-safe fold + clamped threshold as
        // `grid_search_regularized`: the component's best value always
        // survives its own filter
        let best = scored
            .iter()
            .map(|(_, g)| *g)
            .fold(f64::NEG_INFINITY, |acc, g| {
                if g.total_cmp(&acc).is_gt() {
                    g
                } else {
                    acc
                }
            });
        let threshold = best.min(best * (1.0 - tolerance));
        bounds[k] = scored
            .into_iter()
            .filter(|(_, g)| g.total_cmp(&threshold).is_ge())
            .map(|(v, _)| v)
            .min()
            .expect("the best setting survives its own filter");
    }
    let gflops = mean_gflops(bounds);
    (ReuseBounds::from(bounds), gflops)
}

/// One labelled training sample for the regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneSample {
    /// Mean measured data characteristics of the stream's vectors
    /// (`[vector_size, tensor_bytes, repeated_rate, distribution_bias]`).
    pub features: [f64; 4],
    /// The grid-search-optimal reuse bounds.
    pub bounds: [usize; 3],
    /// GFLOPS achieved at the optimum.
    pub gflops: f64,
}

/// Steady-state per-vector characteristics of a stream: the measured
/// characteristics of the *last* vector (warm `seen` set). The scheduler's
/// online inference measures exactly this kind of per-vector feature, so
/// training on it keeps the train and inference feature distributions
/// aligned (a stream-level mean would be diluted by the all-fresh first
/// vector and push inference into extrapolation).
pub fn stream_features(stream: &TensorPairStream) -> [f64; 4] {
    let mut seen: HashSet<micco_workload::TensorId> = HashSet::new();
    let mut last = [0.0; 4];
    for v in &stream.vectors {
        let c = DataCharacteristics::measure(v, &mut seen);
        last = c.features();
    }
    last
}

/// Configuration-space sampler for training-set construction. Ranges follow
/// the paper's evaluation: vector size 8–64, tensor size 128–768, repeated
/// rate 25–100 %, both distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Number of labelled samples (the paper uses 300).
    pub samples: usize,
    /// Vectors per sampled stream.
    pub vectors_per_stream: usize,
    /// RNG seed.
    pub seed: u64,
    /// Memory oversubscription applied to the training machine, relative to
    /// each sampled stream's working set. Reuse bounds matter most — and
    /// their optimum is stable and learnable — under memory pressure, which
    /// is the regime the paper designs for; 1.5 reproduces that. `None`
    /// keeps the base machine's memory.
    pub oversubscription: Option<f64>,
    /// Independent workload seeds averaged per candidate setting (denoises
    /// the response surface before the argmax).
    pub seeds_per_sample: usize,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            samples: 300,
            vectors_per_stream: 4,
            seed: 0xB00,
            oversubscription: Some(1.5),
            seeds_per_sample: 8,
        }
    }
}

/// Build a labelled training set by sampling workload specs and grid-
/// searching the bound cube for each (Sec. IV-C: "for each set of feature
/// variables, we measure GFLOPS of all possible values of reuse bounds and
/// set the optimal reuse bounds to be the response labels").
pub fn build_training_set(tc: &TrainingConfig, machine: &MachineConfig) -> Vec<TuneSample> {
    let mut rng = StdRng::seed_from_u64(tc.seed);
    let vector_sizes = [8usize, 16, 32, 64];
    let tensor_dims = [128usize, 256, 384, 768];
    (0..tc.samples)
        .map(|i| {
            let spec = WorkloadSpec::new(
                vector_sizes[rng.gen_range(0..vector_sizes.len())],
                tensor_dims[rng.gen_range(0..tensor_dims.len())],
            )
            .with_repeat_rate(rng.gen_range(0.2..=1.0))
            .with_distribution(if rng.gen_bool(0.5) {
                RepeatDistribution::Uniform
            } else {
                RepeatDistribution::Gaussian
            })
            .with_vectors(tc.vectors_per_stream)
            .with_seed(tc.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9));
            let streams: Vec<_> = (0..tc.seeds_per_sample as u64)
                .map(|r| {
                    spec.clone()
                        .with_seed(spec.seed.wrapping_add(r * 0x1_0001))
                        .generate()
                })
                .collect();
            let machine = match tc.oversubscription {
                Some(rate) => machine.with_oversubscription(streams[0].unique_bytes(), rate),
                None => *machine,
            };
            let (best, gflops) = optimal_bounds_full_range(&streams, &machine, 0.01);
            TuneSample {
                features: stream_features(&streams[0]),
                bounds: best.as_array(),
                gflops,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_machine() -> MachineConfig {
        MachineConfig::mi100_like(4)
    }

    #[test]
    fn fig8_settings_are_distinct_and_bounded() {
        let mut seen = std::collections::HashSet::new();
        for s in FIG8_BOUND_SETTINGS {
            assert!(seen.insert(s), "duplicate setting {s:?}");
            assert!(s.iter().all(|&v| v <= 2));
        }
        assert_eq!(FIG8_BOUND_SETTINGS.len(), 13);
    }

    #[test]
    fn cube_has_27_settings() {
        let cube = bound_cube();
        assert_eq!(cube.len(), 27);
        let set: std::collections::HashSet<_> = cube.iter().collect();
        assert_eq!(set.len(), 27);
    }

    #[test]
    fn grid_search_returns_argmax() {
        let stream = WorkloadSpec::new(16, 128)
            .with_repeat_rate(0.6)
            .with_vectors(2)
            .generate();
        let cfg = small_machine();
        let candidates = [[0, 0, 0], [0, 2, 0]];
        let (best, gf) = grid_search(&stream, &cfg, &candidates);
        let direct: f64 = candidates
            .iter()
            .map(|&c| evaluate_bounds(&stream, &cfg, c.into()))
            .fold(0.0, f64::max);
        assert!((gf - direct).abs() < 1e-9);
        assert!(candidates.contains(&best.as_array()));
    }

    #[test]
    fn evaluate_bounds_is_deterministic() {
        let stream = WorkloadSpec::new(16, 128).with_vectors(2).generate();
        let cfg = small_machine();
        let b = ReuseBounds::new(0, 2, 0);
        assert_eq!(
            evaluate_bounds(&stream, &cfg, b),
            evaluate_bounds(&stream, &cfg, b)
        );
    }

    #[test]
    fn stream_features_have_expected_shape() {
        let stream = WorkloadSpec::new(32, 256)
            .with_repeat_rate(0.5)
            .with_vectors(4)
            .with_seed(2)
            .generate();
        let f = stream_features(&stream);
        assert_eq!(f[0], 32.0); // vector size
        assert_eq!(f[1], (4 * 256 * 256 * 16) as f64); // tensor bytes
        assert!(f[2] > 0.2 && f[2] < 0.7, "repeat rate {}", f[2]);
        assert!((0.0..=1.0).contains(&f[3]));
    }

    #[test]
    fn regularized_search_survives_degenerate_scores() {
        // a machine too small for any setting: every candidate scores 0.0
        // (run_schedule errors out-of-memory) — the search must pick the
        // smallest setting instead of panicking on an emptied filter
        let streams = vec![WorkloadSpec::new(16, 128)
            .with_repeat_rate(0.5)
            .with_vectors(2)
            .generate()];
        let tiny = MachineConfig::mi100_like(2).with_mem_bytes(1);
        let (best, gf) = grid_search_regularized(&streams, &tiny, &bound_cube(), 0.02);
        assert_eq!(best.as_array(), [0, 0, 0]);
        assert_eq!(gf, 0.0);
        let (best_fr, gf_fr) = optimal_bounds_full_range(&streams, &tiny, 0.02);
        assert_eq!(best_fr.as_array(), [0, 0, 0]);
        assert_eq!(gf_fr, 0.0);
        // a pathological tolerance (> 1) pushes the old threshold above
        // the best score; the clamped threshold keeps the filter non-empty
        let cfg = small_machine();
        let (_, gf) = grid_search_regularized(&streams, &cfg, &bound_cube(), -0.5);
        assert!(gf > 0.0);
    }

    #[test]
    fn training_set_small_smoke() {
        let tc = TrainingConfig {
            samples: 4,
            vectors_per_stream: 2,
            seed: 1,
            seeds_per_sample: 2,
            ..TrainingConfig::default()
        };
        let samples = build_training_set(&tc, &small_machine());
        assert_eq!(samples.len(), 4);
        for s in &samples {
            assert!(s.gflops > 0.0);
            assert!(s.bounds.iter().all(|&b| b <= 2));
            assert!(s.features[0] >= 8.0);
        }
        // deterministic
        assert_eq!(samples, build_training_set(&tc, &small_machine()));
    }
}
