//! One front door for a scheduled run: [`Session`] bundles the machine
//! shape ([`MachineConfig`]), the driver knobs ([`DriverOptions`]) and an
//! optional telemetry sink ([`TraceSink`]) behind a fluent builder, so the
//! decide/execute split reads as one sentence:
//!
//! ```
//! use micco_core::{MiccoScheduler, ReuseBounds, Session};
//! use micco_gpusim::MachineConfig;
//! use micco_obs::Recorder;
//! use micco_workload::WorkloadSpec;
//!
//! let stream = WorkloadSpec::new(8, 64).with_vectors(2).with_seed(3).generate();
//! let recorder = Recorder::shared();
//! let report = Session::new(MachineConfig::mi100_like(2))
//!     .overlap(true)
//!     .trace(recorder.clone())
//!     .plan(&mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)), &stream)?
//!     .execute(&stream)?;
//! assert!(report.gflops() > 0.0);
//! // the traced timeline is ready for Perfetto
//! assert!(recorder.to_perfetto_json().contains("traceEvents"));
//! # Ok::<(), micco_core::ScheduleError>(())
//! ```
//!
//! A [`Session`] is cheap to clone and immutable once built: `plan` hands a
//! [`Planned`] run back, which replays on fresh simulators as many times as
//! needed — each execution re-attaches the session's sink and emits the
//! run-level span that parents the observer's stage and task spans.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use micco_gpusim::{FaultPlan, LinkTopology, MachineConfig, SimMachine};
use micco_obs::{
    MetricsRegistry, SpanObserver, TraceEvent, TraceSink, Track, CONTROL_PID, SECS_TO_US,
};
use micco_workload::TensorPairStream;

use crate::driver::{
    execute_plan_with_topology, plan_schedule_with_topology, DriverOptions, ScheduleError,
    ScheduleReport, Scheduler,
};
use crate::plan::SchedulePlan;
use crate::store::{DurableError, DurablePlanCache, DurableStats};

/// A configured scheduling context: machine + driver options + telemetry.
///
/// See the [module docs](self) for the fluent flow. All builder methods
/// take and return `self`, so a whole session can be assembled on one
/// temporary; [`Session::plan`] borrows (`&self`) and clones the session
/// into the returned [`Planned`], keeping the chain alive.
#[derive(Clone)]
pub struct Session {
    config: MachineConfig,
    options: DriverOptions,
    topology: Option<LinkTopology>,
    sink: Option<Arc<dyn TraceSink>>,
    metrics: Option<Arc<MetricsRegistry>>,
    faults: Option<FaultPlan>,
    retry: Option<(u32, Duration)>,
    store: Option<PathBuf>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("config", &self.config)
            .field("options", &self.options)
            .field("topology", &self.topology)
            .field("sink", &self.sink.as_ref().map(|_| "dyn TraceSink"))
            .field("metrics", &self.metrics.as_ref().map(|_| "MetricsRegistry"))
            .field("faults", &self.faults)
            .field("retry", &self.retry)
            .field("store", &self.store)
            .finish()
    }
}

impl Session {
    /// Session over `config` with default options and no telemetry.
    pub fn new(config: MachineConfig) -> Self {
        Session {
            config,
            options: DriverOptions::default(),
            topology: None,
            sink: None,
            metrics: None,
            faults: None,
            retry: None,
            store: None,
        }
    }

    /// Replace the driver options wholesale (for callers that already
    /// assembled a [`DriverOptions`], e.g. from CLI flags).
    pub fn with_options(mut self, options: DriverOptions) -> Self {
        self.options = options;
        self
    }

    /// Toggle copy/compute overlap (the async-copy engine).
    pub fn overlap(mut self, on: bool) -> Self {
        self.options.overlap = on;
        self
    }

    /// Bound the DMA staging window to `k` tasks (`0` = unbounded).
    pub fn prefetch_tasks(mut self, k: usize) -> Self {
        self.options.prefetch_tasks = k;
        self
    }

    /// Toggle wall-clock overhead measurement for both phases (decide-time
    /// `Scheduler::assign` and execute-time plan replay).
    pub fn measure_overhead(mut self, on: bool) -> Self {
        self.options.measure_overhead = on;
        self
    }

    /// Simulate transfers over an explicit link topology: both the
    /// planning shadow and every execution machine route device-to-device
    /// copies through `topology` and charge per-hop link time, so planned
    /// and executed timelines stay bit-identical. Panics on execution if
    /// the topology's GPU count differs from the machine config's.
    ///
    /// Routing alone does not change *placement*; pair it with
    /// [`Session::topology_aware`] to let schedulers penalize cross-island
    /// candidates.
    pub fn with_topology(mut self, topology: LinkTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Let the scheduler see the topology when scoring candidates
    /// (adds the routed fetch cost for each candidate's missing operands).
    /// A no-op unless a topology is attached with [`Session::with_topology`].
    pub fn topology_aware(mut self, on: bool) -> Self {
        self.options.topology_aware = on;
        self
    }

    /// Attach a telemetry sink; executions then carry a [`SpanObserver`]
    /// on the simulator and emit a run-level control span.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Aggregate observer metrics into `registry` instead of a private
    /// one (lets several sessions — or the real executor — share totals).
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Inject a deterministic [`FaultPlan`] into every simulator this
    /// session builds: kernel faults, transfer timeouts and device losses
    /// fire at the planned points during [`Session::replay`] /
    /// [`Session::run`] and surface as fault/retry telemetry.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Retry policy for fault-tolerant execution: up to `max_attempts`
    /// tries per task with `base_delay` backoff. Recorded on the session
    /// (see [`Session::retry_policy`]) for executors that honour it —
    /// the simulator itself models retries through the fault plan.
    pub fn retry(mut self, max_attempts: u32, base_delay: Duration) -> Self {
        self.retry = Some((max_attempts, base_delay));
        self
    }

    /// Route planning through the durable plan store at `dir`:
    /// [`Session::plan_durable`] serves warm plans from the store's
    /// write-ahead log (scheduler not invoked) and appends fresh
    /// decisions before returning.
    pub fn with_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store = Some(dir.into());
        self
    }

    /// The machine shape this session simulates.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The driver options in effect.
    pub fn options(&self) -> &DriverOptions {
        &self.options
    }

    /// The link topology transfers are routed over, if one is attached.
    pub fn topology(&self) -> Option<&LinkTopology> {
        self.topology.as_ref()
    }

    /// The fault plan injected into this session's simulators, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The retry policy, if one was set with [`Session::retry`].
    pub fn retry_policy(&self) -> Option<(u32, Duration)> {
        self.retry
    }

    /// The durable store directory, if one was set with
    /// [`Session::with_store`].
    pub fn store_dir(&self) -> Option<&std::path::Path> {
        self.store.as_deref()
    }

    /// Decide a schedule for `stream` without executing it. The returned
    /// [`Planned`] owns a clone of this session, so the fluent chain works
    /// on temporaries and the plan can be executed repeatedly.
    pub fn plan(
        &self,
        scheduler: &mut dyn Scheduler,
        stream: &TensorPairStream,
    ) -> Result<Planned, ScheduleError> {
        let plan = plan_schedule_with_topology(
            scheduler,
            stream,
            &self.config,
            self.options,
            self.topology.as_ref(),
        )?;
        Ok(Planned {
            session: self.clone(),
            plan,
        })
    }

    /// [`Session::plan`] through the durable store configured with
    /// [`Session::with_store`]: the store is opened, the plan is served
    /// from memory/log when the key matches (scheduler not invoked) or
    /// freshly decided and appended, and the store's hit/miss counters
    /// are returned alongside the planned run.
    ///
    /// # Errors
    /// [`DurableError::Plan`] wraps scheduling failures; other variants
    /// are store I/O. Calling without a configured store is an error.
    pub fn plan_durable(
        &self,
        scheduler: &mut dyn Scheduler,
        stream: &TensorPairStream,
    ) -> Result<(Planned, DurableStats), DurableError> {
        let dir = self.store.clone().ok_or_else(|| {
            DurableError::Store(micco_store::StoreError::Io {
                path: PathBuf::new(),
                source: std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "plan_durable needs a store: Session::with_store(dir)",
                ),
            })
        })?;
        let mut cache = DurablePlanCache::open(dir)?;
        let planned = self.plan_with_cache(&mut cache, scheduler, stream)?;
        Ok((planned, cache.stats()))
    }

    /// [`Session::plan`] against a caller-held [`DurablePlanCache`] — the
    /// long-running form used by `micco serve`, where one cache outlives
    /// many sessions and its counters accumulate across jobs.
    pub fn plan_with_cache(
        &self,
        cache: &mut DurablePlanCache,
        scheduler: &mut dyn Scheduler,
        stream: &TensorPairStream,
    ) -> Result<Planned, DurableError> {
        let plan = cache
            .plan_for_with_topology(
                scheduler,
                stream,
                &self.config,
                self.options,
                self.topology.as_ref(),
            )?
            .clone();
        Ok(Planned {
            session: self.clone(),
            plan,
        })
    }

    /// Decide and execute in one call (`plan` + `execute`).
    pub fn run(
        &self,
        scheduler: &mut dyn Scheduler,
        stream: &TensorPairStream,
    ) -> Result<ScheduleReport, ScheduleError> {
        self.plan(scheduler, stream)?.execute(stream)
    }

    /// Replay an externally decided plan (e.g. one deserialized with
    /// [`SchedulePlan::from_text`]) under this session's machine, options
    /// and telemetry — the plan-file counterpart of [`Session::run`].
    pub fn replay(
        &self,
        plan: &SchedulePlan,
        stream: &TensorPairStream,
    ) -> Result<ScheduleReport, ScheduleError> {
        let mut machine = self.machine();
        let report = execute_plan_with_topology(
            plan,
            stream,
            &mut machine,
            self.options,
            self.topology.as_ref(),
        )?;
        self.record_run_span(plan, &report);
        Ok(report)
    }

    /// Fresh simulator for this session, with the telemetry observer
    /// attached when a sink is configured.
    fn machine(&self) -> SimMachine {
        let cfg = self.options.apply(&self.config);
        let mut machine = SimMachine::new(cfg);
        if let Some(faults) = &self.faults {
            machine.set_faults(faults.clone());
        }
        if let Some(sink) = &self.sink {
            let mut obs = SpanObserver::new(Arc::clone(sink));
            if let Some(metrics) = &self.metrics {
                obs = obs.with_metrics(Arc::clone(metrics));
            }
            machine.set_observer(Box::new(obs));
        }
        machine
    }

    /// Emit the run-level span that parents the observer's stage spans,
    /// carrying the measured overheads as span arguments so the timeline
    /// reports them alongside the simulated time.
    fn record_run_span(&self, plan: &SchedulePlan, report: &ScheduleReport) {
        let Some(sink) = &self.sink else { return };
        let mut args = vec![
            ("scheduler".to_owned(), plan.scheduler.clone()),
            ("stages".to_owned(), plan.stages.len().to_string()),
            ("tasks".to_owned(), plan.total_tasks().to_string()),
        ];
        if self.options.measure_overhead {
            args.push((
                "scheduling_overhead_ms".to_owned(),
                format!("{:.6}", report.scheduling_overhead_secs * 1e3),
            ));
            args.push((
                "execution_overhead_ms".to_owned(),
                format!("{:.6}", report.execution_overhead_secs * 1e3),
            ));
        }
        sink.record(TraceEvent::Span {
            pid: CONTROL_PID,
            track: Track::Run,
            name: format!("run {}", plan.scheduler),
            start_us: 0.0,
            dur_us: report.elapsed_secs() * SECS_TO_US,
            args,
        });
    }
}

/// A decided schedule bound to the [`Session`] that produced it.
#[derive(Debug, Clone)]
pub struct Planned {
    session: Session,
    plan: SchedulePlan,
}

impl Planned {
    /// The decided plan IR.
    pub fn plan(&self) -> &SchedulePlan {
        &self.plan
    }

    /// Unwrap into the plan IR (e.g. to serialize it with
    /// [`SchedulePlan::to_text`]).
    pub fn into_plan(self) -> SchedulePlan {
        self.plan
    }

    /// The session this plan was decided under.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Replay the plan on a fresh simulator built from the session,
    /// recording telemetry when the session carries a sink.
    pub fn execute(&self, stream: &TensorPairStream) -> Result<ScheduleReport, ScheduleError> {
        self.session.replay(&self.plan, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RoundRobinScheduler;
    use crate::bounds::ReuseBounds;
    use crate::driver::run_schedule_with;
    use crate::micco::MiccoScheduler;
    use micco_obs::{reconcile_with_stats, Recorder};
    use micco_workload::WorkloadSpec;

    fn stream() -> TensorPairStream {
        WorkloadSpec::new(10, 64)
            .with_repeat_rate(0.5)
            .with_vectors(3)
            .with_seed(11)
            .generate()
    }

    #[test]
    fn session_run_matches_the_classic_driver() {
        let stream = stream();
        let cfg = MachineConfig::mi100_like(2);
        let opts = DriverOptions::default()
            .with_overlap()
            .with_prefetch_tasks(2);
        let classic = run_schedule_with(
            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
            opts,
        )
        .expect("fits");
        let via_session = Session::new(cfg)
            .with_options(opts)
            .run(&mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)), &stream)
            .expect("fits");
        assert_eq!(classic.assignments, via_session.assignments);
        assert_eq!(classic.stats, via_session.stats);
    }

    #[test]
    fn fluent_chain_works_on_a_temporary_and_replays() {
        let stream = stream();
        let planned = Session::new(MachineConfig::mi100_like(2))
            .overlap(true)
            .prefetch_tasks(1)
            .plan(&mut RoundRobinScheduler::new(), &stream)
            .expect("fits");
        let a = planned.execute(&stream).expect("replays");
        let b = planned.execute(&stream).expect("replays");
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.stats, b.stats);
        assert_eq!(planned.plan().stages.len(), stream.vectors.len());
    }

    #[test]
    fn traced_session_reconciles_and_carries_a_run_span() {
        let stream = stream();
        let recorder = Recorder::shared();
        let session = Session::new(MachineConfig::mi100_like(2))
            .trace(recorder.clone())
            .metrics(recorder.metrics())
            .measure_overhead(true);
        let report = session
            .run(&mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)), &stream)
            .expect("fits");
        let events = recorder.events();
        // per-device span totals reconstruct the simulator's accounting
        reconcile_with_stats(&events, &report.stats, 0, 1e-9).expect("spans match stats");
        // the run span parents the timeline and reports the overheads
        let run_span = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::Span {
                    pid: CONTROL_PID,
                    track: Track::Run,
                    dur_us,
                    args,
                    ..
                } => Some((*dur_us, args.clone())),
                _ => None,
            })
            .expect("session emits a run span");
        assert!((run_span.0 - report.elapsed_secs() * SECS_TO_US).abs() < 1e-9);
        assert!(run_span.1.iter().any(|(k, _)| k == "execution_overhead_ms"));
        // metrics aggregate through the shared registry
        let snap = recorder.metrics_snapshot();
        assert_eq!(snap.counter("tasks"), report.stats.total_tasks());
        // the execute-phase overhead was actually measured
        assert!(report.execution_overhead_secs > 0.0);
    }

    #[test]
    fn topology_session_threads_links_through_plan_and_replay() {
        let stream = stream();
        let cfg = MachineConfig::mi100_like(4);
        // single island: routing through NVLink with the flat-equivalent
        // spec must reproduce the flat session bit-for-bit
        let flat = Session::new(cfg)
            .run(&mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)), &stream)
            .expect("fits");
        let one_island =
            LinkTopology::nvlink(4, 4).with_nvlink(micco_gpusim::LinkSpec::new(25.0, 10.0));
        let routed = Session::new(cfg)
            .with_topology(one_island)
            .run(&mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)), &stream)
            .expect("fits");
        assert_eq!(flat.assignments, routed.assignments);
        assert_eq!(flat.stats, routed.stats);
        // split islands: the session still plans and replays deterministically
        let split = LinkTopology::nvlink(4, 2);
        let session = Session::new(cfg)
            .with_topology(split.clone())
            .topology_aware(true);
        assert_eq!(session.topology().map(|t| t.num_islands()), Some(2));
        let planned = session
            .plan(&mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)), &stream)
            .expect("fits");
        let a = planned.execute(&stream).expect("replays");
        let b = planned.execute(&stream).expect("replays");
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn faulted_session_injects_and_retry_policy_is_recorded() {
        let stream = stream();
        let cfg = MachineConfig::mi100_like(2);
        let clean = Session::new(cfg)
            .run(&mut RoundRobinScheduler::new(), &stream)
            .expect("fits");
        // a kernel fault on task 0 slows that task but the run completes
        let faulted = Session::new(cfg)
            .with_faults(FaultPlan::none().with_kernel_fault(0, 1))
            .retry(3, Duration::from_micros(10))
            .run(&mut RoundRobinScheduler::new(), &stream)
            .expect("retries through");
        assert_eq!(clean.assignments, faulted.assignments);
        assert!(faulted.elapsed_secs() >= clean.elapsed_secs());
        let session = Session::new(cfg).retry(5, Duration::from_micros(7));
        assert_eq!(session.retry_policy(), Some((5, Duration::from_micros(7))));
        assert!(session.faults().is_none());
    }

    #[test]
    fn durable_planning_replays_from_the_log_without_the_scheduler() {
        let stream = stream();
        let dir = std::env::temp_dir().join(format!(
            "micco-session-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = MachineConfig::mi100_like(2);
        let session = Session::new(cfg).with_store(&dir);
        assert_eq!(session.store_dir(), Some(dir.as_path()));
        // cold: the scheduler decides, the plan is appended
        let (cold, stats) = session
            .plan_durable(&mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)), &stream)
            .expect("plans");
        assert_eq!((stats.misses, stats.log_hits), (1, 0));
        // warm (fresh cache over the same dir): served from the log
        let (warm, stats) = session
            .plan_durable(&mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)), &stream)
            .expect("replays");
        assert_eq!((stats.misses, stats.log_hits), (0, 1));
        assert_eq!(cold.plan().to_text(), warm.plan().to_text());
        // the planned run executes like any other
        let report = warm.execute(&stream).expect("replays");
        assert!(report.gflops() > 0.0);
        // without a store the durable path refuses
        assert!(Session::new(cfg)
            .plan_durable(&mut RoundRobinScheduler::new(), &stream)
            .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn untraced_session_emits_nothing_and_changes_nothing() {
        let stream = stream();
        let cfg = MachineConfig::mi100_like(2);
        let plain = Session::new(cfg)
            .run(&mut RoundRobinScheduler::new(), &stream)
            .expect("fits");
        let recorder = Recorder::shared();
        let traced = Session::new(cfg)
            .trace(recorder.clone())
            .run(&mut RoundRobinScheduler::new(), &stream)
            .expect("fits");
        assert_eq!(plain.assignments, traced.assignments);
        assert_eq!(plain.stats, traced.stats);
        assert!(!recorder.events().is_empty());
        let debug = format!("{:?}", Session::new(cfg).trace(recorder));
        assert!(debug.contains("dyn TraceSink"));
    }
}
