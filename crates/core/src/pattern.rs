//! Local reuse patterns (Fig. 4 of the paper).
//!
//! Each incoming tensor pair is classified against the *current* residency
//! of the devices. The classification drives which reuse bound applies and
//! which candidate devices the data-centric policy proposes.

use micco_gpusim::{GpuId, MachineView};
use micco_workload::ContractionTask;

/// The four-way classification of a tensor pair against device residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalReusePattern {
    /// Both tensors are resident on at least one *common* device
    /// (mapping (1): zero memory operations possible).
    TwoRepeatedSame,
    /// Both tensors are resident somewhere, but on no common device
    /// (mappings (2)/(3): one transfer unavoidable).
    TwoRepeatedDiff,
    /// Exactly one tensor of the pair is resident on some device.
    OneRepeated,
    /// Neither tensor is resident anywhere (mappings (4)–(7): two
    /// allocations + two transfers).
    TwoNew,
}

impl LocalReusePattern {
    /// Index of the reuse bound governing this pattern (Table II):
    /// `TwoRepeatedSame → 0`, `TwoRepeatedDiff`/`OneRepeated → 1`,
    /// `TwoNew → 2`.
    pub fn bound_index(self) -> usize {
        match self {
            LocalReusePattern::TwoRepeatedSame => 0,
            LocalReusePattern::TwoRepeatedDiff | LocalReusePattern::OneRepeated => 1,
            LocalReusePattern::TwoNew => 2,
        }
    }
}

impl std::fmt::Display for LocalReusePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LocalReusePattern::TwoRepeatedSame => "TwoRepeatedSame",
            LocalReusePattern::TwoRepeatedDiff => "TwoRepeatedDiff",
            LocalReusePattern::OneRepeated => "OneRepeated",
            LocalReusePattern::TwoNew => "TwoNew",
        };
        write!(f, "{s}")
    }
}

/// The classified pair together with the residency evidence gathered while
/// classifying (so the scheduler does not look it up twice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedPair {
    /// The pattern.
    pub pattern: LocalReusePattern,
    /// Devices holding the first operand.
    pub holders_a: Vec<GpuId>,
    /// Devices holding the second operand.
    pub holders_b: Vec<GpuId>,
    /// Devices holding both operands (ascending order).
    pub holders_both: Vec<GpuId>,
}

impl ClassifiedPair {
    /// An empty classification usable as reusable scratch for
    /// [`classify_into`].
    pub fn empty() -> Self {
        ClassifiedPair {
            pattern: LocalReusePattern::TwoNew,
            holders_a: Vec::new(),
            holders_b: Vec::new(),
            holders_both: Vec::new(),
        }
    }
}

impl Default for ClassifiedPair {
    fn default() -> Self {
        ClassifiedPair::empty()
    }
}

/// Classify `task` against the machine's residency (Alg. 1, lines 2–4).
pub fn classify(task: &ContractionTask, view: &dyn MachineView) -> ClassifiedPair {
    let mut out = ClassifiedPair::empty();
    classify_into(task, view, &mut out);
    out
}

/// Allocation-free [`classify`]: overwrite `out` in place, reusing its
/// holder buffers. Produces exactly the classification `classify` would.
pub fn classify_into(task: &ContractionTask, view: &dyn MachineView, out: &mut ClassifiedPair) {
    view.holders_into(task.a.id, &mut out.holders_a);
    view.holders_into(task.b.id, &mut out.holders_b);
    out.holders_both.clear();
    out.holders_both.extend(
        out.holders_a
            .iter()
            .copied()
            .filter(|g| out.holders_b.contains(g)),
    );
    out.pattern = if !out.holders_both.is_empty() {
        LocalReusePattern::TwoRepeatedSame
    } else if !out.holders_a.is_empty() && !out.holders_b.is_empty() {
        LocalReusePattern::TwoRepeatedDiff
    } else if !out.holders_a.is_empty() || !out.holders_b.is_empty() {
        LocalReusePattern::OneRepeated
    } else {
        LocalReusePattern::TwoNew
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use micco_gpusim::{MachineConfig, SimMachine};
    use micco_workload::{ContractionTask, TaskId, TensorDesc, TensorId};

    fn task(a: u64, b: u64, out: u64) -> ContractionTask {
        ContractionTask {
            id: TaskId(out),
            a: TensorDesc {
                id: TensorId(a),
                bytes: 100,
            },
            b: TensorDesc {
                id: TensorId(b),
                bytes: 100,
            },
            out: TensorDesc {
                id: TensorId(out),
                bytes: 100,
            },
            flops: 1,
        }
    }

    fn machine_with(placements: &[(u64, usize)]) -> SimMachine {
        let mut m = SimMachine::new(MachineConfig::mi100_like(2));
        // place tensors by running tiny tasks that only load them
        for &(tensor, gpu) in placements {
            // a self-pair load: a == b == tensor
            let t = task(tensor, tensor, 1_000_000 + tensor);
            m.execute(&t, GpuId(gpu)).unwrap();
        }
        m
    }

    #[test]
    fn two_new_when_nothing_resident() {
        let m = machine_with(&[]);
        let c = classify(&task(1, 2, 100), &m);
        assert_eq!(c.pattern, LocalReusePattern::TwoNew);
        assert!(c.holders_a.is_empty() && c.holders_b.is_empty());
        assert_eq!(c.pattern.bound_index(), 2);
    }

    #[test]
    fn one_repeated_when_single_operand_resident() {
        let m = machine_with(&[(1, 0)]);
        let c = classify(&task(1, 2, 100), &m);
        assert_eq!(c.pattern, LocalReusePattern::OneRepeated);
        assert_eq!(c.holders_a, vec![GpuId(0)]);
        assert_eq!(c.pattern.bound_index(), 1);
        // symmetric: resident operand in position b
        let c2 = classify(&task(2, 1, 101), &m);
        assert_eq!(c2.pattern, LocalReusePattern::OneRepeated);
        assert_eq!(c2.holders_b, vec![GpuId(0)]);
    }

    #[test]
    fn two_repeated_diff_when_split_across_devices() {
        let m = machine_with(&[(1, 0), (2, 1)]);
        let c = classify(&task(1, 2, 100), &m);
        assert_eq!(c.pattern, LocalReusePattern::TwoRepeatedDiff);
        assert!(c.holders_both.is_empty());
        assert_eq!(c.pattern.bound_index(), 1);
    }

    #[test]
    fn two_repeated_same_when_cohabiting() {
        let m = machine_with(&[(1, 0), (2, 0)]);
        let c = classify(&task(1, 2, 100), &m);
        assert_eq!(c.pattern, LocalReusePattern::TwoRepeatedSame);
        assert_eq!(c.holders_both, vec![GpuId(0)]);
        assert_eq!(c.pattern.bound_index(), 0);
    }

    #[test]
    fn same_takes_precedence_over_diff() {
        // tensor 1 on both devices, tensor 2 on gpu1 → common holder gpu1
        let m = machine_with(&[(1, 0), (1, 1), (2, 1)]);
        let c = classify(&task(1, 2, 100), &m);
        assert_eq!(c.pattern, LocalReusePattern::TwoRepeatedSame);
        assert_eq!(c.holders_both, vec![GpuId(1)]);
    }

    #[test]
    fn identical_operands_count_as_same() {
        let m = machine_with(&[(1, 0)]);
        let c = classify(&task(1, 1, 100), &m);
        assert_eq!(c.pattern, LocalReusePattern::TwoRepeatedSame);
    }

    #[test]
    fn classify_into_reuses_scratch_and_matches_classify() {
        let m = machine_with(&[(1, 0), (1, 1), (2, 1), (7, 0)]);
        let mut scratch = ClassifiedPair::default();
        // seed the scratch with stale garbage from a previous pair
        classify_into(&task(7, 7, 300), &m, &mut scratch);
        for t in [task(1, 2, 100), task(3, 4, 101), task(1, 9, 102)] {
            classify_into(&t, &m, &mut scratch);
            assert_eq!(scratch, classify(&t, &m));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(
            LocalReusePattern::TwoRepeatedSame.to_string(),
            "TwoRepeatedSame"
        );
        assert_eq!(LocalReusePattern::TwoNew.to_string(), "TwoNew");
    }
}
