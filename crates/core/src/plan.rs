//! The schedule-plan IR: a durable, validated placement artifact.
//!
//! A [`SchedulePlan`] is what [`crate::plan_schedule`] produces and what
//! [`crate::execute_plan`] (and the real executor in `micco-exec`, and the
//! cluster driver) consume: per-stage assignment vectors, the scheduler
//! name and reuse bounds that produced them, and a content-hash
//! **fingerprint** of the workload the plan was decided for. Splitting
//! decide from execute makes the plan cacheable (hadron nodes repeat
//! across thousands of contraction graphs — the same schedule is worth
//! reusing), replayable across backends, and shippable between processes.
//!
//! Plans serialize to a versioned line-oriented text format (the same
//! no-dependency idiom as `micco-workload`'s stream format):
//!
//! ```text
//! micco-plan v1
//! scheduler micco[fixed(0,2,0)]
//! gpus 4
//! fingerprint 9322391459459612643
//! overhead 0
//! stage bounds 0 2 0
//! assign 0 1
//! assign 1 3
//! stage
//! assign 2 0
//! ```
//!
//! Future format versions bump the header; parsers reject versions they do
//! not understand with [`PlanFormatError::UnsupportedVersion`] rather than
//! misreading them.

use micco_gpusim::{GpuId, LinkTopology, MachineConfig};
use micco_workload::{FastIdMap, TaskId, TensorPairStream};

use crate::arena::PlanArena;
use crate::bounds::ReuseBounds;
use crate::driver::{
    plan_schedule_in_with_topology, Assignment, DriverOptions, ScheduleError, Scheduler,
};

/// Plan format version written by [`SchedulePlan::to_text`].
pub const PLAN_VERSION: u32 = 1;

const HEADER_PREFIX: &str = "micco-plan v";

/// One stage of a plan: the bounds the scheduler used for the vector (if
/// it uses bounds at all) and the placement of each of its tasks, in
/// stream order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanStage {
    /// Reuse bounds in effect while this stage was decided (`None` for
    /// schedulers without bounds, e.g. round-robin).
    pub bounds: Option<ReuseBounds>,
    /// One placement per task of the stage vector, in task order.
    pub assignments: Vec<Assignment>,
}

/// A complete schedule: who runs where, decided ahead of execution.
///
/// # Examples
///
/// ```
/// use micco_core::{plan_schedule, RoundRobinScheduler, SchedulePlan};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let stream = WorkloadSpec::new(8, 64).with_vectors(2).generate();
/// let cfg = MachineConfig::mi100_like(2);
/// let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
/// // round-trips through the text format exactly
/// let back = SchedulePlan::from_text(&plan.to_text()).unwrap();
/// assert_eq!(plan, back);
/// // and validates against the stream it was planned for
/// assert!(plan.validate(&stream).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulePlan {
    /// Name of the scheduler that decided the plan.
    pub scheduler: String,
    /// Number of devices the plan targets (every assignment is in range).
    pub num_gpus: usize,
    /// [`TensorPairStream::fingerprint`] of the workload the plan was
    /// decided for.
    pub fingerprint: u64,
    /// Wall-clock seconds spent inside `Scheduler::assign` while deciding
    /// (0.0 unless planned with [`DriverOptions::measure_overhead`]).
    pub overhead_secs: f64,
    /// Per-stage assignments, one entry per stream vector.
    pub stages: Vec<PlanStage>,
}

/// A plan that does not fit the stream or machine it was asked to run on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The plan was decided for a different workload.
    FingerprintMismatch {
        /// Fingerprint recorded in the plan.
        plan: u64,
        /// Fingerprint of the stream offered for execution.
        stream: u64,
    },
    /// Stage counts differ.
    StageCountMismatch {
        /// Stages in the plan.
        plan: usize,
        /// Vectors in the stream.
        stream: usize,
    },
    /// A stage covers a different number of tasks than its vector.
    StageLenMismatch {
        /// Stage index.
        stage: usize,
        /// Assignments in the plan stage.
        plan: usize,
        /// Tasks in the stream vector.
        stream: usize,
    },
    /// A stage assigns a task other than the one at that position.
    TaskMismatch {
        /// Stage index.
        stage: usize,
        /// Position within the stage.
        index: usize,
        /// Task the plan assigns.
        plan: TaskId,
        /// Task the stream has there.
        stream: TaskId,
    },
    /// An assignment targets a device the plan itself declares out of range.
    GpuOutOfRange {
        /// Offending task.
        task: TaskId,
        /// Target device.
        gpu: GpuId,
        /// Devices the plan targets.
        num_gpus: usize,
    },
    /// The executing machine has a different device count than the plan.
    DeviceCountMismatch {
        /// Devices the plan targets.
        plan: usize,
        /// Devices the machine has.
        machine: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::FingerprintMismatch { plan, stream } => write!(
                f,
                "plan fingerprint {plan:#x} does not match stream fingerprint {stream:#x}"
            ),
            PlanError::StageCountMismatch { plan, stream } => {
                write!(f, "plan has {plan} stages, stream has {stream} vectors")
            }
            PlanError::StageLenMismatch {
                stage,
                plan,
                stream,
            } => write!(
                f,
                "stage {stage}: plan assigns {plan} tasks, vector has {stream}"
            ),
            PlanError::TaskMismatch {
                stage,
                index,
                plan,
                stream,
            } => write!(
                f,
                "stage {stage} position {index}: plan assigns task {plan:?}, stream has {stream:?}"
            ),
            PlanError::GpuOutOfRange {
                task,
                gpu,
                num_gpus,
            } => write!(
                f,
                "task {task:?} assigned to {gpu} but plan targets {num_gpus} devices"
            ),
            PlanError::DeviceCountMismatch { plan, machine } => write!(
                f,
                "plan targets {plan} devices but the machine has {machine}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Serialisation/parse errors for the plan text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanFormatError {
    /// Missing or malformed header line.
    BadHeader,
    /// The header declares a format version this parser does not speak.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// A malformed line, with its 1-based line number.
    BadLine {
        /// Line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// An `assign` line appeared before any `stage` line.
    AssignOutsideStage {
        /// Line number.
        line: usize,
    },
    /// A required field never appeared.
    MissingField {
        /// Field name.
        field: &'static str,
    },
}

impl std::fmt::Display for PlanFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanFormatError::BadHeader => {
                write!(f, "missing '{HEADER_PREFIX}{PLAN_VERSION}' header")
            }
            PlanFormatError::UnsupportedVersion { found } => write!(
                f,
                "plan format v{found} is not supported (this build reads v{PLAN_VERSION})"
            ),
            PlanFormatError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            PlanFormatError::AssignOutsideStage { line } => {
                write!(f, "line {line}: assign before any 'stage' marker")
            }
            PlanFormatError::MissingField { field } => write!(f, "missing '{field}' field"),
        }
    }
}

impl std::error::Error for PlanFormatError {}

/// Why a degraded-mode repair could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairError {
    /// No lost devices were named — nothing to repair.
    NothingLost,
    /// A named device is outside the plan's declared range.
    LostGpuOutOfRange {
        /// Offending device index.
        gpu: usize,
        /// Devices the plan targets.
        num_gpus: usize,
    },
    /// Every device of the plan was lost — no survivor to repair onto.
    NoSurvivors,
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::NothingLost => write!(f, "no lost devices named, nothing to repair"),
            RepairError::LostGpuOutOfRange { gpu, num_gpus } => {
                write!(
                    f,
                    "lost device {gpu} is outside the plan's {num_gpus} devices"
                )
            }
            RepairError::NoSurvivors => {
                write!(f, "every device was lost, no survivor to repair onto")
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// Degraded-mode replan: re-place every assignment that targets a device
/// in `lost` onto the least-loaded surviving device of its stage (lowest
/// index breaking ties — the repair is deterministic).
///
/// The repaired plan keeps the original `num_gpus`, fingerprint, stage
/// structure, and per-stage bounds, so it still passes
/// [`SchedulePlan::validate`] against the original stream; the lost
/// devices simply receive no work. The repair is recorded in the plan's
/// lineage by appending `+repair(lost=…)` to the scheduler line (free
/// text in the v1 format, so no format bump) — the analysis engine keys
/// its degraded-placement diagnostic off that marker.
///
/// # Examples
///
/// ```
/// use micco_core::{plan_schedule, repair_plan, RoundRobinScheduler};
/// use micco_gpusim::{GpuId, MachineConfig};
/// use micco_workload::WorkloadSpec;
///
/// let stream = WorkloadSpec::new(8, 64).with_vectors(2).generate();
/// let plan = plan_schedule(
///     &mut RoundRobinScheduler::new(),
///     &stream,
///     &MachineConfig::mi100_like(3),
/// ).unwrap();
/// let repaired = repair_plan(&plan, &[GpuId(1)]).unwrap();
/// assert!(repaired.validate(&stream).is_ok());
/// assert!(repaired.scheduler.ends_with("+repair(lost=1)"));
/// assert!(repaired.flat_assignments().iter().all(|a| a.gpu != GpuId(1)));
/// ```
///
/// # Errors
///
/// [`RepairError::NothingLost`] for an empty `lost` list,
/// [`RepairError::LostGpuOutOfRange`] when a named device is not in the
/// plan, and [`RepairError::NoSurvivors`] when every device was lost.
pub fn repair_plan(plan: &SchedulePlan, lost: &[GpuId]) -> Result<SchedulePlan, RepairError> {
    repair_plan_with(plan, lost, None)
}

/// [`repair_plan`] honouring an interconnect topology: orphans are
/// re-placed onto the *topology-nearest* surviving device of their stage —
/// the survivor with the cheapest route from the lost device, so operands
/// that were staged near the casualty stay reachable over fast links —
/// breaking ties by least load and then lowest index. With `None` the
/// repair is exactly the least-loaded [`repair_plan`].
pub fn repair_plan_with(
    plan: &SchedulePlan,
    lost: &[GpuId],
    topology: Option<&LinkTopology>,
) -> Result<SchedulePlan, RepairError> {
    if lost.is_empty() {
        return Err(RepairError::NothingLost);
    }
    if let Some(g) = lost.iter().find(|g| g.0 >= plan.num_gpus) {
        return Err(RepairError::LostGpuOutOfRange {
            gpu: g.0,
            num_gpus: plan.num_gpus,
        });
    }
    let mut is_lost = vec![false; plan.num_gpus];
    for g in lost {
        is_lost[g.0] = true;
    }
    if is_lost.iter().all(|&l| l) {
        return Err(RepairError::NoSurvivors);
    }
    // route cost from the orphan's original device to each survivor,
    // quantized to link-time bits for a total-ordered integer key (0 when
    // no topology: the key degenerates to (load, index))
    let near_bytes = 1u64 << 26; // 64 MiB reference transfer
    let route_cost = |from: usize, to: usize| -> u64 {
        topology.map_or(0, |t| {
            if t.num_gpus() == plan.num_gpus {
                t.transfer_secs(from, to, near_bytes).to_bits()
            } else {
                0
            }
        })
    };
    let mut repaired = plan.clone();
    for stage in &mut repaired.stages {
        // survivors' existing load in this stage, in assignment counts
        let mut load = vec![0usize; plan.num_gpus];
        for a in &stage.assignments {
            if !is_lost[a.gpu.0] {
                load[a.gpu.0] += 1;
            }
        }
        for a in &mut stage.assignments {
            if is_lost[a.gpu.0] {
                let from = a.gpu.0;
                if let Some(target) = (0..plan.num_gpus)
                    .filter(|&g| !is_lost[g])
                    .min_by_key(|&g| (route_cost(from, g), load[g], g))
                {
                    a.gpu = GpuId(target);
                    load[target] += 1;
                }
            }
        }
    }
    let mut named: Vec<usize> = is_lost
        .iter()
        .enumerate()
        .filter_map(|(g, &l)| l.then_some(g))
        .collect();
    named.sort_unstable();
    let list = named
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    repaired.scheduler = format!("{}+repair(lost={list})", plan.scheduler);
    Ok(repaired)
}

impl SchedulePlan {
    /// Total assignments across all stages.
    pub fn total_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.assignments.len()).sum()
    }

    /// All assignments flattened into stream order (what slice-based
    /// consumers like the real executor take).
    pub fn flat_assignments(&self) -> Vec<Assignment> {
        self.stages
            .iter()
            .flat_map(|s| s.assignments.iter().copied())
            .collect()
    }

    /// Check the plan against the stream it is about to run on: matching
    /// fingerprint, one stage per vector, every task covered exactly once
    /// in order, every device within the plan's declared range.
    pub fn validate(&self, stream: &TensorPairStream) -> Result<(), PlanError> {
        let fp = stream.fingerprint();
        if self.fingerprint != fp {
            return Err(PlanError::FingerprintMismatch {
                plan: self.fingerprint,
                stream: fp,
            });
        }
        if self.stages.len() != stream.vectors.len() {
            return Err(PlanError::StageCountMismatch {
                plan: self.stages.len(),
                stream: stream.vectors.len(),
            });
        }
        for (si, (stage, vector)) in self.stages.iter().zip(&stream.vectors).enumerate() {
            if stage.assignments.len() != vector.tasks.len() {
                return Err(PlanError::StageLenMismatch {
                    stage: si,
                    plan: stage.assignments.len(),
                    stream: vector.tasks.len(),
                });
            }
            for (i, (a, t)) in stage.assignments.iter().zip(&vector.tasks).enumerate() {
                if a.task != t.id {
                    return Err(PlanError::TaskMismatch {
                        stage: si,
                        index: i,
                        plan: a.task,
                        stream: t.id,
                    });
                }
                if a.gpu.0 >= self.num_gpus {
                    return Err(PlanError::GpuOutOfRange {
                        task: a.task,
                        gpu: a.gpu,
                        num_gpus: self.num_gpus,
                    });
                }
            }
        }
        Ok(())
    }

    /// [`Self::validate`] plus a device-count check against the executing
    /// machine.
    pub fn validate_for(
        &self,
        stream: &TensorPairStream,
        machine_gpus: usize,
    ) -> Result<(), PlanError> {
        self.validate(stream)?;
        if self.num_gpus != machine_gpus {
            return Err(PlanError::DeviceCountMismatch {
                plan: self.num_gpus,
                machine: machine_gpus,
            });
        }
        Ok(())
    }

    /// Serialise to the versioned text format. Round-trips exactly through
    /// [`Self::from_text`] (the overhead float is stored as its bit
    /// pattern).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(96 + self.total_tasks() * 12);
        self.write_text(&mut out)
            .expect("writing to a String never fails");
        out
    }

    /// Stream the text format into any [`std::fmt::Write`] sink — the one
    /// serialiser behind both [`Self::to_text`] (a `String` sink) and
    /// [`Self::digest`] (a hashing sink, no intermediate allocation).
    fn write_text<W: std::fmt::Write>(&self, out: &mut W) -> std::fmt::Result {
        writeln!(out, "{HEADER_PREFIX}{PLAN_VERSION}")?;
        writeln!(out, "scheduler {}", self.scheduler)?;
        writeln!(out, "gpus {}", self.num_gpus)?;
        writeln!(out, "fingerprint {}", self.fingerprint)?;
        writeln!(out, "overhead {}", self.overhead_secs.to_bits())?;
        for stage in &self.stages {
            match stage.bounds {
                Some(b) => {
                    let [x, y, z] = b.as_array();
                    writeln!(out, "stage bounds {x} {y} {z}")?;
                }
                None => out.write_str("stage\n")?,
            }
            for a in &stage.assignments {
                writeln!(out, "assign {} {}", a.task.0, a.gpu.0)?;
            }
        }
        Ok(())
    }

    /// Parse the text format. Blank lines and `#` comments are ignored;
    /// unknown versions and malformed lines are typed errors.
    pub fn from_text(text: &str) -> Result<SchedulePlan, PlanFormatError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, l)) => {
                let l = l.trim();
                let version: u32 = l
                    .strip_prefix(HEADER_PREFIX)
                    .and_then(|v| v.parse().ok())
                    .ok_or(PlanFormatError::BadHeader)?;
                if version != PLAN_VERSION {
                    return Err(PlanFormatError::UnsupportedVersion { found: version });
                }
            }
            None => return Err(PlanFormatError::BadHeader),
        }
        let mut scheduler: Option<String> = None;
        let mut num_gpus: Option<usize> = None;
        let mut fingerprint: Option<u64> = None;
        let mut overhead_bits: u64 = 0;
        let mut stages: Vec<PlanStage> = Vec::new();
        for (idx, raw) in lines {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |reason: String| PlanFormatError::BadLine {
                line: line_no,
                reason,
            };
            if let Some(rest) = line.strip_prefix("scheduler ") {
                scheduler = Some(rest.trim().to_owned());
            } else if let Some(rest) = line.strip_prefix("gpus ") {
                num_gpus =
                    Some(rest.trim().parse().map_err(|_| {
                        bad(format!("'{}' is not an unsigned integer", rest.trim()))
                    })?);
            } else if let Some(rest) = line.strip_prefix("fingerprint ") {
                fingerprint =
                    Some(rest.trim().parse().map_err(|_| {
                        bad(format!("'{}' is not an unsigned integer", rest.trim()))
                    })?);
            } else if let Some(rest) = line.strip_prefix("overhead ") {
                overhead_bits = rest
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("'{}' is not an unsigned integer", rest.trim())))?;
            } else if line == "stage" {
                stages.push(PlanStage::default());
            } else if let Some(rest) = line.strip_prefix("stage bounds ") {
                let fields: Vec<&str> = rest.split_whitespace().collect();
                if fields.len() != 3 {
                    return Err(bad(format!("expected 3 bounds, got {}", fields.len())));
                }
                let mut nums = [0usize; 3];
                for (slot, f) in nums.iter_mut().zip(&fields) {
                    *slot = f
                        .parse()
                        .map_err(|_| bad(format!("'{f}' is not an unsigned integer")))?;
                }
                stages.push(PlanStage {
                    bounds: Some(ReuseBounds::from(nums)),
                    assignments: Vec::new(),
                });
            } else if let Some(rest) = line.strip_prefix("assign ") {
                let fields: Vec<&str> = rest.split_whitespace().collect();
                if fields.len() != 2 {
                    return Err(bad(format!("expected 2 fields, got {}", fields.len())));
                }
                let task: u64 = fields[0]
                    .parse()
                    .map_err(|_| bad(format!("'{}' is not an unsigned integer", fields[0])))?;
                let gpu: usize = fields[1]
                    .parse()
                    .map_err(|_| bad(format!("'{}' is not an unsigned integer", fields[1])))?;
                stages
                    .last_mut()
                    .ok_or(PlanFormatError::AssignOutsideStage { line: line_no })?
                    .assignments
                    .push(Assignment {
                        task: TaskId(task),
                        gpu: GpuId(gpu),
                    });
            } else {
                return Err(bad(format!("unrecognised line '{line}'")));
            }
        }
        Ok(SchedulePlan {
            scheduler: scheduler.ok_or(PlanFormatError::MissingField { field: "scheduler" })?,
            num_gpus: num_gpus.ok_or(PlanFormatError::MissingField { field: "gpus" })?,
            fingerprint: fingerprint.ok_or(PlanFormatError::MissingField {
                field: "fingerprint",
            })?,
            overhead_secs: f64::from_bits(overhead_bits),
            stages,
        })
    }

    /// Content hash of the serialised plan: FNV-1a over the exact bytes of
    /// [`Self::to_text`]. Two plans digest equal iff they serialise
    /// identically (scheduler line, device count, workload fingerprint,
    /// overhead bits, every stage bound and every assignment). This is
    /// what the golden fingerprint corpus (`tests/fixtures/fingerprints.txt`)
    /// pins across planner rewrites.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        self.write_text(&mut h).expect("hashing writer never fails");
        h.0
    }
}

/// Incremental FNV-1a accumulator; doubles as a [`std::fmt::Write`] sink
/// so scheduler names hash through [`Scheduler::write_name`] without a
/// `String` allocation.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn mix_byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    #[inline]
    fn mix(&mut self, value: u64) {
        for b in value.to_le_bytes() {
            self.mix_byte(b);
        }
    }
}

impl std::fmt::Write for Fnv {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.bytes() {
            self.mix_byte(b);
        }
        Ok(())
    }
}

/// Opaque cache key identifying a `(scheduler, stream, config, options)`
/// planning request (see [`PlanCache::key_for`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey(u64);

impl PlanKey {
    /// The raw 64-bit value — what `micco-store` keys durable records by.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a key from its raw value (a record read back from a store).
    pub fn from_raw(raw: u64) -> PlanKey {
        PlanKey(raw)
    }

    /// Derive a node-qualified key: folds the node name into the key so a
    /// cluster's per-node projection plans persist under distinct keys in
    /// one shared store. `with_node("")` still differs from the bare key
    /// (a length tag is mixed first).
    pub fn with_node(self, node: &str) -> PlanKey {
        let mut h = Fnv(self.0);
        h.mix(node.len() as u64);
        for b in node.bytes() {
            h.mix_byte(b);
        }
        PlanKey(h.0)
    }
}

/// In-memory plan cache: repeated streams skip scheduling entirely.
///
/// Keys combine the stream fingerprint with the scheduler name and the
/// machine/driver configuration, so a cache may safely serve multiple
/// schedulers and machine shapes at once. Any mutation of the stream —
/// task order, tensor footprints, vector boundaries — changes the
/// fingerprint and misses.
///
/// # Examples
///
/// ```
/// use micco_core::{PlanCache, RoundRobinScheduler};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let stream = WorkloadSpec::new(8, 64).with_vectors(2).generate();
/// let cfg = MachineConfig::mi100_like(2);
/// let mut cache = PlanCache::new();
/// let opts = Default::default();
/// cache.plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts).unwrap();
/// cache.plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts).unwrap();
/// assert_eq!((cache.misses(), cache.hits()), (1, 1));
/// ```
#[derive(Default)]
pub struct PlanCache {
    plans: FastIdMap<u64, SchedulePlan>,
    arena: PlanArena,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for `(scheduler, stream, config, options)` — served from
    /// cache when the same combination was planned before (the scheduler
    /// is not invoked at all on a hit), decided via
    /// [`crate::plan_schedule_in`] against the cache's reusable arena
    /// otherwise. The hit path performs **zero heap allocations** (a test
    /// with a counting allocator pins this): the key is accumulated
    /// through [`Scheduler::write_name`] rather than a `name()` `String`,
    /// and the plan is looked up once by its interned 64-bit key.
    pub fn plan_for(
        &mut self,
        scheduler: &mut dyn Scheduler,
        stream: &TensorPairStream,
        config: &MachineConfig,
        options: DriverOptions,
    ) -> Result<&SchedulePlan, ScheduleError> {
        self.plan_for_with_topology(scheduler, stream, config, options, None)
    }

    /// [`Self::plan_for`] deciding against a topology-carrying shadow
    /// (see [`crate::plan_schedule_with_topology`]). The key mixes the
    /// topology spec only when one is present, so flat requests keep the
    /// exact keys [`Self::plan_for`] has always produced and the two entry
    /// points share one cache safely.
    pub fn plan_for_with_topology(
        &mut self,
        scheduler: &mut dyn Scheduler,
        stream: &TensorPairStream,
        config: &MachineConfig,
        options: DriverOptions,
        topology: Option<&LinkTopology>,
    ) -> Result<&SchedulePlan, ScheduleError> {
        let key = Self::key_for_with_topology(scheduler, stream, config, options, topology);
        // single probe: the entry is resolved once and either served or
        // filled in place (the old contains_key → insert → get danced
        // through the map three times)
        match self.plans.entry(key.0) {
            std::collections::hash_map::Entry::Occupied(entry) => {
                self.hits += 1;
                Ok(entry.into_mut())
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                let plan = plan_schedule_in_with_topology(
                    scheduler,
                    stream,
                    config,
                    options,
                    &mut self.arena,
                    topology,
                )?;
                self.misses += 1;
                Ok(entry.insert(plan))
            }
        }
    }

    /// The cache key [`Self::plan_for`] would use for this request —
    /// exposed so callers can probe with [`Self::get`] without planning.
    /// Allocation-free for schedulers with an allocation-free
    /// [`Scheduler::write_name`] (all schedulers in this crate).
    pub fn key_for(
        scheduler: &dyn Scheduler,
        stream: &TensorPairStream,
        config: &MachineConfig,
        options: DriverOptions,
    ) -> PlanKey {
        let mut h = Fnv::new();
        h.mix(stream.fingerprint());
        scheduler
            .write_name(&mut h)
            .expect("hashing writer never fails");
        h.mix(config.num_gpus as u64);
        h.mix(config.mem_bytes);
        h.mix(config.cost.device_gflops.to_bits());
        h.mix(config.cost.h2d_gib_s.to_bits());
        h.mix(config.cost.d2d_gib_s.to_bits());
        h.mix(config.cost.transfer_latency_us.to_bits());
        h.mix(config.cost.alloc_latency_us.to_bits());
        h.mix(config.cost.evict_latency_us.to_bits());
        h.mix(config.cost.d2d_charges_source as u64);
        h.mix(config.cost.async_copy as u64);
        h.mix(config.cost.shared_h2d_link as u64);
        h.mix(config.cost.prefetch_tasks as u64);
        h.mix(config.eviction as u64);
        h.mix(options.overlap as u64);
        h.mix(options.prefetch_tasks as u64);
        if options.measure_overhead {
            // mixed only when set so non-measuring keys stay byte-stable;
            // without this a measuring request after a non-measuring one
            // hit the cached plan and reported a zero overhead
            h.mix(1);
        }
        PlanKey(h.0)
    }

    /// The cache key [`Self::plan_for_with_topology`] would use. With
    /// `topology: None` this is exactly [`Self::key_for`] — the topology
    /// spec (and the `topology_aware` knob) is mixed in only when a
    /// topology is actually present, so flat keys are byte-stable across
    /// this refactor.
    pub fn key_for_with_topology(
        scheduler: &dyn Scheduler,
        stream: &TensorPairStream,
        config: &MachineConfig,
        options: DriverOptions,
        topology: Option<&LinkTopology>,
    ) -> PlanKey {
        let PlanKey(flat) = Self::key_for(scheduler, stream, config, options);
        let Some(topo) = topology else {
            return PlanKey(flat);
        };
        let mut h = Fnv(flat);
        h.mix(options.topology_aware as u64);
        for byte in topo.to_spec().bytes() {
            h.mix_byte(byte);
        }
        PlanKey(h.0)
    }

    /// The cached plan under `key`, if any. Never plans and never touches
    /// the hit/miss counters.
    pub fn get(&self, key: PlanKey) -> Option<&SchedulePlan> {
        self.plans.get(&key.0)
    }

    /// True when a plan is cached under `key`. Counter-neutral.
    pub fn contains(&self, key: PlanKey) -> bool {
        self.plans.contains_key(&key.0)
    }

    /// Insert an externally decided plan under `key` (hydration from a
    /// durable store). Counter-neutral; a later [`Self::plan_for`] for the
    /// same request is a hit.
    pub fn insert(&mut self, key: PlanKey, plan: SchedulePlan) {
        self.plans.insert(key.0, plan);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (i.e. plans actually decided) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RoundRobinScheduler;
    use crate::driver::plan_schedule;
    use micco_workload::WorkloadSpec;

    fn plan_fixture() -> (TensorPairStream, SchedulePlan) {
        let stream = WorkloadSpec::new(8, 48)
            .with_vectors(3)
            .with_seed(5)
            .generate();
        let cfg = MachineConfig::mi100_like(3);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        (stream, plan)
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let (_, plan) = plan_fixture();
        let back = SchedulePlan::from_text(&plan.to_text()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn bounds_survive_roundtrip() {
        let mut plan = plan_fixture().1;
        plan.stages[0].bounds = Some(ReuseBounds::new(0, 2, 0));
        plan.stages[1].bounds = Some(ReuseBounds::unbounded());
        plan.overhead_secs = 1.5e-7;
        let back = SchedulePlan::from_text(&plan.to_text()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn unsupported_version_rejected() {
        let text = "micco-plan v2\nscheduler x\ngpus 1\nfingerprint 0\n";
        assert_eq!(
            SchedulePlan::from_text(text),
            Err(PlanFormatError::UnsupportedVersion { found: 2 })
        );
        assert!(SchedulePlan::from_text(text)
            .unwrap_err()
            .to_string()
            .contains("not supported"));
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(
            SchedulePlan::from_text("nope\n"),
            Err(PlanFormatError::BadHeader)
        );
        assert_eq!(SchedulePlan::from_text(""), Err(PlanFormatError::BadHeader));
        assert_eq!(
            SchedulePlan::from_text("micco-plan vX\n"),
            Err(PlanFormatError::BadHeader)
        );
    }

    #[test]
    fn assign_outside_stage_rejected() {
        let text = "micco-plan v1\nscheduler x\ngpus 1\nfingerprint 0\nassign 0 0\n";
        assert!(matches!(
            SchedulePlan::from_text(text),
            Err(PlanFormatError::AssignOutsideStage { line: 5 })
        ));
    }

    #[test]
    fn missing_fields_rejected() {
        let text = "micco-plan v1\ngpus 1\nfingerprint 0\n";
        assert_eq!(
            SchedulePlan::from_text(text),
            Err(PlanFormatError::MissingField { field: "scheduler" })
        );
    }

    #[test]
    fn malformed_lines_rejected_with_position() {
        let text = "micco-plan v1\nscheduler x\ngpus one\n";
        match SchedulePlan::from_text(text) {
            Err(PlanFormatError::BadLine { line, reason }) => {
                assert_eq!(line, 3);
                assert!(reason.contains("'one'"));
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
        let text = "micco-plan v1\nscheduler x\ngpus 1\nfingerprint 0\nwat\n";
        assert!(matches!(
            SchedulePlan::from_text(text),
            Err(PlanFormatError::BadLine { line: 5, .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "micco-plan v1\n# comment\n\nscheduler rr\ngpus 2\nfingerprint 7\noverhead 0\nstage\nassign 0 1\n";
        let plan = SchedulePlan::from_text(text).unwrap();
        assert_eq!(plan.scheduler, "rr");
        assert_eq!(plan.total_tasks(), 1);
        assert_eq!(plan.stages[0].assignments[0].gpu, GpuId(1));
    }

    #[test]
    fn validate_catches_every_mismatch_class() {
        let (stream, plan) = plan_fixture();
        assert_eq!(plan.validate(&stream), Ok(()));

        let mut other = stream.clone();
        other.vectors[0].tasks[0].flops += 1;
        assert!(matches!(
            plan.validate(&other),
            Err(PlanError::FingerprintMismatch { .. })
        ));

        let mut p = plan.clone();
        p.fingerprint = stream.fingerprint();
        p.stages.pop();
        assert!(matches!(
            p.validate(&stream),
            Err(PlanError::StageCountMismatch { .. })
        ));

        let mut p = plan.clone();
        p.stages[1].assignments.pop();
        assert!(matches!(
            p.validate(&stream),
            Err(PlanError::StageLenMismatch { stage: 1, .. })
        ));

        let mut p = plan.clone();
        p.stages[0].assignments[0].task = TaskId(u64::MAX);
        assert!(matches!(
            p.validate(&stream),
            Err(PlanError::TaskMismatch {
                stage: 0,
                index: 0,
                ..
            })
        ));

        let mut p = plan.clone();
        p.stages[0].assignments[0].gpu = GpuId(99);
        assert!(matches!(
            p.validate(&stream),
            Err(PlanError::GpuOutOfRange { .. })
        ));

        assert!(matches!(
            plan.validate_for(&stream, plan.num_gpus + 1),
            Err(PlanError::DeviceCountMismatch { .. })
        ));
        assert_eq!(plan.validate_for(&stream, plan.num_gpus), Ok(()));
    }

    #[test]
    fn repair_moves_every_orphan_onto_survivors() {
        let (stream, plan) = plan_fixture();
        let repaired = repair_plan(&plan, &[GpuId(1)]).unwrap();
        assert_eq!(repaired.validate(&stream), Ok(()));
        assert_eq!(repaired.num_gpus, plan.num_gpus);
        assert_eq!(repaired.fingerprint, plan.fingerprint);
        assert!(repaired
            .flat_assignments()
            .iter()
            .all(|a| a.gpu != GpuId(1)));
        assert_eq!(repaired.total_tasks(), plan.total_tasks());
        assert!(repaired.scheduler.ends_with("+repair(lost=1)"));
        // bounds metadata is untouched by the repair
        for (r, p) in repaired.stages.iter().zip(&plan.stages) {
            assert_eq!(r.bounds, p.bounds);
        }
    }

    #[test]
    fn repair_is_deterministic_and_balances_load() {
        let (_, plan) = plan_fixture();
        let a = repair_plan(&plan, &[GpuId(0)]).unwrap();
        let b = repair_plan(&plan, &[GpuId(0)]).unwrap();
        assert_eq!(a, b);
        // per stage, survivor loads stay within one task of each other
        // when the original placement was balanced (round-robin fixture)
        for stage in &a.stages {
            let mut load = vec![0usize; a.num_gpus];
            for asg in &stage.assignments {
                load[asg.gpu.0] += 1;
            }
            let survivors: Vec<usize> = load[1..].to_vec();
            let max = survivors.iter().max().copied().unwrap_or(0);
            let min = survivors.iter().min().copied().unwrap_or(0);
            assert!(max - min <= 1, "greedy repair must re-balance: {load:?}");
        }
    }

    #[test]
    fn repaired_plan_roundtrips_through_text() {
        let (stream, plan) = plan_fixture();
        let repaired = repair_plan(&plan, &[GpuId(2), GpuId(0)]).unwrap();
        assert!(repaired.scheduler.contains("+repair(lost=0,2)"));
        let back = SchedulePlan::from_text(&repaired.to_text()).unwrap();
        assert_eq!(repaired, back);
        assert_eq!(back.validate(&stream), Ok(()));
    }

    #[test]
    fn repair_rejects_degenerate_inputs() {
        let (_, plan) = plan_fixture();
        assert_eq!(repair_plan(&plan, &[]), Err(RepairError::NothingLost));
        assert_eq!(
            repair_plan(&plan, &[GpuId(9)]),
            Err(RepairError::LostGpuOutOfRange {
                gpu: 9,
                num_gpus: plan.num_gpus
            })
        );
        assert_eq!(
            repair_plan(&plan, &[GpuId(0), GpuId(1), GpuId(2)]),
            Err(RepairError::NoSurvivors)
        );
        assert!(RepairError::NoSurvivors.to_string().contains("survivor"));
    }

    #[test]
    fn error_displays_are_informative() {
        let e = PlanError::FingerprintMismatch { plan: 1, stream: 2 };
        assert!(e.to_string().contains("fingerprint"));
        let e = PlanFormatError::MissingField { field: "gpus" };
        assert!(e.to_string().contains("gpus"));
    }

    #[test]
    fn measuring_request_misses_a_plan_cached_without_measurement() {
        // regression: measure_overhead was omitted from the cache key, so
        // a measuring caller was served the unmeasured plan and silently
        // reported a scheduling overhead of zero
        let (stream, _) = plan_fixture();
        let cfg = MachineConfig::mi100_like(3);
        let mut cache = PlanCache::new();
        let mut sched = RoundRobinScheduler::new();
        let plain = DriverOptions::default();
        let measuring = DriverOptions::default().with_measure_overhead();

        let unmeasured = cache.plan_for(&mut sched, &stream, &cfg, plain).unwrap();
        assert_eq!(unmeasured.overhead_secs, 0.0);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let measured = cache
            .plan_for(&mut sched, &stream, &cfg, measuring)
            .unwrap();
        assert!(
            measured.overhead_secs > 0.0,
            "a measuring request must plan fresh and carry a real overhead"
        );
        assert_eq!((cache.hits(), cache.misses()), (0, 2));

        // both variants are now cached; repeats hit their own entry
        let again = cache
            .plan_for(&mut sched, &stream, &cfg, measuring)
            .unwrap();
        assert!(again.overhead_secs > 0.0);
        let again = cache.plan_for(&mut sched, &stream, &cfg, plain).unwrap();
        assert_eq!(again.overhead_secs, 0.0);
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn digest_streams_the_exact_serialised_bytes() {
        let (_, plan) = plan_fixture();
        // digest() hashes through the streaming serialiser; it must equal
        // FNV-1a over the exact to_text() bytes
        let mut h = Fnv::new();
        for b in plan.to_text().bytes() {
            h.mix_byte(b);
        }
        assert_eq!(plan.digest(), h.0);
    }

    #[test]
    fn plan_key_raw_roundtrip_and_node_qualification() {
        let (stream, _) = plan_fixture();
        let cfg = MachineConfig::mi100_like(3);
        let key = PlanCache::key_for(
            &RoundRobinScheduler::new(),
            &stream,
            &cfg,
            DriverOptions::default(),
        );
        assert_eq!(PlanKey::from_raw(key.raw()), key);
        let a = key.with_node("node-a");
        let b = key.with_node("node-b");
        assert_ne!(a, b);
        assert_ne!(a, key);
        assert_ne!(key.with_node(""), key, "empty node name still qualifies");
        assert_eq!(key.with_node("node-a"), a, "node qualification is stable");
    }
}
