//! The regression-model bounds provider (the paper's MICCO-optimal).
//!
//! Three random forests — one per reuse bound — map the measured data
//! characteristics of a vector to the predicted optimal bound values
//! (Sec. IV-C). The forests are trained offline once on grid-search-labelled
//! samples ([`crate::tuner::build_training_set`]) and queried online per
//! vector; inference cost is a few microseconds, matching the paper's
//! "negligible overhead" claim (Table V quantifies it).

use micco_ml::{RandomForestRegressor, Regressor};
use micco_workload::DataCharacteristics;

use crate::bounds::{BoundsProvider, ReuseBounds};
use crate::tuner::TuneSample;

/// Largest bound value the provider will ever emit. Training labels span
/// the paper's full range (0 to numTensor − balanceNum, i.e. up to ~112 at
/// vector size 64); the cap only guards against pathological extrapolation.
const BOUND_CAP: usize = 512;

/// Pre-trained per-vector reuse-bound predictor.
#[derive(Debug, Clone)]
pub struct RegressionBounds {
    forests: [RandomForestRegressor; 3],
}

impl RegressionBounds {
    /// Train on labelled samples. `seed` drives the forests' bootstrap
    /// sampling.
    pub fn train(samples: &[TuneSample], seed: u64) -> Self {
        assert!(!samples.is_empty(), "cannot train on zero samples");
        let x: Vec<Vec<f64>> = samples.iter().map(|s| s.features.to_vec()).collect();
        let forests = std::array::from_fn(|k| {
            let y: Vec<f64> = samples.iter().map(|s| s.bounds[k] as f64).collect();
            let mut f = RandomForestRegressor::paper_default(seed.wrapping_add(k as u64));
            f.fit(&x, &y);
            f
        });
        RegressionBounds { forests }
    }

    /// Predict bounds for one set of characteristics.
    pub fn predict(&self, c: &DataCharacteristics) -> ReuseBounds {
        let row = c.features();
        let b = std::array::from_fn(|k| {
            let raw = self.forests[k].predict_one(&row);
            raw.round().clamp(0.0, BOUND_CAP as f64) as usize
        });
        ReuseBounds::from(b)
    }
}

impl BoundsProvider for RegressionBounds {
    fn bounds_for(&mut self, characteristics: &DataCharacteristics) -> ReuseBounds {
        self.predict(characteristics)
    }

    fn name(&self) -> String {
        "regression".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(features: [f64; 4], bounds: [usize; 3]) -> TuneSample {
        TuneSample {
            features,
            bounds,
            gflops: 1.0,
        }
    }

    fn characteristics(features: [f64; 4]) -> DataCharacteristics {
        DataCharacteristics {
            vector_size: features[0] as usize,
            tensor_bytes: features[1],
            repeated_rate: features[2],
            distribution_bias: features[3],
        }
    }

    /// A separable synthetic relation: high repeat rate → bounds (2,2,0),
    /// low repeat rate → (0,0,2). The forest must recover it.
    fn synthetic_samples() -> Vec<TuneSample> {
        let mut v = Vec::new();
        for i in 0..40 {
            let rate = i as f64 / 39.0;
            let bounds = if rate > 0.5 { [2, 2, 0] } else { [0, 0, 2] };
            v.push(sample([32.0, 1e6, rate, 0.3], bounds));
        }
        v
    }

    #[test]
    fn learns_a_separable_relation() {
        let model = RegressionBounds::train(&synthetic_samples(), 0);
        let high = model.predict(&characteristics([32.0, 1e6, 0.9, 0.3]));
        let low = model.predict(&characteristics([32.0, 1e6, 0.1, 0.3]));
        assert_eq!(high.as_array(), [2, 2, 0]);
        assert_eq!(low.as_array(), [0, 0, 2]);
    }

    #[test]
    fn predictions_within_cap() {
        let model = RegressionBounds::train(&synthetic_samples(), 1);
        for rate in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let b = model.predict(&characteristics([64.0, 1e7, rate, 0.8]));
            assert!(b.as_array().iter().all(|&v| v <= BOUND_CAP));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = synthetic_samples();
        let a = RegressionBounds::train(&s, 7);
        let b = RegressionBounds::train(&s, 7);
        let c = characteristics([32.0, 1e6, 0.4, 0.3]);
        assert_eq!(a.predict(&c), b.predict(&c));
    }

    #[test]
    fn provider_name() {
        let mut m = RegressionBounds::train(&synthetic_samples(), 0);
        assert_eq!(BoundsProvider::name(&m), "regression");
        let c = characteristics([32.0, 1e6, 0.9, 0.3]);
        assert_eq!(m.bounds_for(&c), m.predict(&c));
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_training_panics() {
        let _ = RegressionBounds::train(&[], 0);
    }
}
