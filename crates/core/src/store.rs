//! Durable plan cache: [`PlanCache`] with a crash-safe write-ahead log
//! behind it (`micco-store`).
//!
//! The layering keeps each half simple:
//!
//! * `micco-store`'s [`PlanStore`] is payload-agnostic — bytes keyed by
//!   `u64`, with per-record CRC + digest verification, torn-tail recovery
//!   and atomic manifests;
//! * this module is the plan-aware layer: it serialises every freshly
//!   decided [`SchedulePlan`] through the log (write-through), and on a
//!   warm start serves previously planned requests from the log **without
//!   invoking the scheduler** — after parsing the stored text and
//!   re-serialising it to prove byte equality. A record that parses but
//!   does not round-trip bit-identically is rejected, never served.
//!
//! Three-level lookup, with counters distinguishing the levels:
//!
//! ```text
//! request ──► memory (PlanCache) ──► log (PlanStore) ──► scheduler
//!                 mem_hits()           log_hits()         misses()
//! ```
//!
//! Log hits promote the plan into memory, so a request pays the parse
//! cost at most once per process lifetime.

use std::fmt;
use std::path::Path;

use micco_gpusim::MachineConfig;
use micco_workload::TensorPairStream;

use crate::driver::{DriverOptions, ScheduleError, Scheduler};
use crate::plan::{PlanCache, PlanKey, SchedulePlan};
use micco_store::{
    CompactReport, PlanStore, RecoveryReport, StoreError, StoreOptions, StoreStats, VerifyReport,
};

/// Failure of a durable-cache operation: planning itself failed, or the
/// underlying store did.
#[derive(Debug)]
pub enum DurableError {
    /// The scheduler could not decide a plan.
    Plan(ScheduleError),
    /// The write-ahead log could not be read or written.
    Store(StoreError),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Plan(e) => write!(f, "planning failed: {e}"),
            DurableError::Store(e) => write!(f, "plan store failed: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Plan(e) => Some(e),
            DurableError::Store(e) => Some(e),
        }
    }
}

impl From<ScheduleError> for DurableError {
    fn from(e: ScheduleError) -> Self {
        DurableError::Plan(e)
    }
}

impl From<StoreError> for DurableError {
    fn from(e: StoreError) -> Self {
        DurableError::Store(e)
    }
}

/// Counter snapshot of a [`DurablePlanCache`], including the underlying
/// store's shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableStats {
    /// Requests served from the in-memory cache.
    pub mem_hits: u64,
    /// Requests served from the log (parsed, byte-verified, promoted).
    pub log_hits: u64,
    /// Requests that invoked the scheduler (and were written through).
    pub misses: u64,
    /// Log records rejected at serve time (unparseable or not
    /// byte-identical after a round-trip) — never served.
    pub rejected: u64,
    /// The underlying store's shape and recovery report.
    pub store: StoreStats,
}

/// A [`PlanCache`] with write-through persistence to a [`PlanStore`].
///
/// Every plan decided through [`DurablePlanCache::plan_for`] is appended
/// to the write-ahead log before being returned; reopening the same
/// directory warm-starts the cache, so repeated runs of the same workload
/// skip the scheduler entirely (the log-hit counter proves it).
///
/// # Examples
///
/// ```
/// use micco_core::{DurablePlanCache, DriverOptions, RoundRobinScheduler};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let dir = std::env::temp_dir().join(format!("micco-durable-doc-{}", std::process::id()));
/// # std::fs::remove_dir_all(&dir).ok();
/// let stream = WorkloadSpec::new(8, 64).with_vectors(2).generate();
/// let cfg = MachineConfig::mi100_like(2);
/// let opts = DriverOptions::default();
///
/// let mut cache = DurablePlanCache::open(&dir)?;
/// cache.plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts)?;
/// assert_eq!(cache.misses(), 1);
/// drop(cache);
///
/// // warm restart: served from the log, scheduler not invoked
/// let mut cache = DurablePlanCache::open(&dir)?;
/// cache.plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts)?;
/// assert_eq!((cache.log_hits(), cache.misses()), (1, 0));
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), micco_core::DurableError>(())
/// ```
pub struct DurablePlanCache {
    cache: PlanCache,
    store: PlanStore,
    mem_hits: u64,
    log_hits: u64,
    misses: u64,
    rejected: u64,
}

impl DurablePlanCache {
    /// Open (creating if necessary) the durable cache backed by the store
    /// in `dir`, running the store's crash recovery. Previously persisted
    /// plans become servable immediately — they are parsed and verified
    /// lazily, on first request.
    ///
    /// # Errors
    ///
    /// Propagates the store's I/O and manifest errors; torn or corrupt
    /// records are not errors (see [`DurablePlanCache::recovery`]).
    pub fn open(dir: impl AsRef<Path>) -> Result<DurablePlanCache, DurableError> {
        Ok(DurablePlanCache::from_store(PlanStore::open(dir)?))
    }

    /// [`DurablePlanCache::open`] with explicit [`StoreOptions`].
    pub fn open_with(
        dir: impl AsRef<Path>,
        options: StoreOptions,
    ) -> Result<DurablePlanCache, DurableError> {
        Ok(DurablePlanCache::from_store(PlanStore::open_with(
            dir, options,
        )?))
    }

    /// Wrap an already opened [`PlanStore`].
    pub fn from_store(store: PlanStore) -> DurablePlanCache {
        DurablePlanCache {
            cache: PlanCache::new(),
            store,
            mem_hits: 0,
            log_hits: 0,
            misses: 0,
            rejected: 0,
        }
    }

    /// The plan for `(scheduler, stream, config, options)` — from memory,
    /// else from the log (parsed and byte-verified), else freshly decided
    /// and durably appended before this call returns.
    pub fn plan_for(
        &mut self,
        scheduler: &mut dyn Scheduler,
        stream: &TensorPairStream,
        config: &MachineConfig,
        options: DriverOptions,
    ) -> Result<&SchedulePlan, DurableError> {
        self.plan_for_with_topology(scheduler, stream, config, options, None)
    }

    /// [`Self::plan_for`] deciding against a topology-carrying shadow —
    /// same key discipline as [`PlanCache::plan_for_with_topology`].
    pub fn plan_for_with_topology(
        &mut self,
        scheduler: &mut dyn Scheduler,
        stream: &TensorPairStream,
        config: &MachineConfig,
        options: DriverOptions,
        topology: Option<&micco_gpusim::LinkTopology>,
    ) -> Result<&SchedulePlan, DurableError> {
        let key = PlanCache::key_for_with_topology(scheduler, stream, config, options, topology);
        if self.cache.contains(key) {
            self.mem_hits += 1;
            return Ok(self.cache.get(key).expect("contains() checked"));
        }
        if self.promote(key) {
            self.log_hits += 1;
            return Ok(self.cache.get(key).expect("promoted from log"));
        }
        // genuine miss: decide through the inner cache (reusing its arena),
        // then write through to the log before returning
        let text = self
            .cache
            .plan_for_with_topology(scheduler, stream, config, options, topology)?
            .to_text();
        self.misses += 1;
        self.store.put(key.raw(), text.as_bytes())?;
        Ok(self.cache.get(key).expect("just planned"))
    }

    /// The plan under `key` from memory or log, without ever planning.
    /// Counts as a memory/log hit; `None` never touches the counters.
    pub fn lookup(&mut self, key: PlanKey) -> Option<&SchedulePlan> {
        if self.cache.contains(key) {
            self.mem_hits += 1;
            return self.cache.get(key);
        }
        if self.promote(key) {
            self.log_hits += 1;
            return self.cache.get(key);
        }
        None
    }

    /// Durably persist an externally decided plan under `key` (e.g. a
    /// cluster node projection under a node-qualified key) and make it
    /// servable from memory.
    pub fn persist(&mut self, key: PlanKey, plan: &SchedulePlan) -> Result<(), DurableError> {
        self.store.put(key.raw(), plan.to_text().as_bytes())?;
        self.cache.insert(key, plan.clone());
        Ok(())
    }

    /// Pull `key` out of the log into memory, enforcing full byte
    /// equality: the stored text must parse *and* re-serialise to the
    /// identical bytes. Anything less is rejected (counted, never served).
    fn promote(&mut self, key: PlanKey) -> bool {
        let Some(bytes) = self.store.get(key.raw()) else {
            return false;
        };
        let Ok(text) = std::str::from_utf8(bytes) else {
            self.rejected += 1;
            return false;
        };
        let Ok(plan) = SchedulePlan::from_text(text) else {
            self.rejected += 1;
            return false;
        };
        if plan.to_text().as_bytes() != bytes {
            self.rejected += 1;
            return false;
        }
        self.cache.insert(key, plan);
        true
    }

    /// Requests served from the in-memory cache.
    pub fn mem_hits(&self) -> u64 {
        self.mem_hits
    }

    /// Requests served from the log (parse + byte-equality verified).
    pub fn log_hits(&self) -> u64 {
        self.log_hits
    }

    /// Requests that invoked the scheduler.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Log records rejected at serve time.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// What the store's crash recovery found when this cache was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        self.store.recovery()
    }

    /// Fold the log into a single snapshot fragment and GC dead files.
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors.
    pub fn compact(&mut self) -> Result<CompactReport, DurableError> {
        Ok(self.store.compact()?)
    }

    /// Read-only integrity scan of the underlying store.
    ///
    /// # Errors
    ///
    /// Propagates store I/O errors.
    pub fn verify(&self) -> Result<VerifyReport, DurableError> {
        Ok(self.store.verify()?)
    }

    /// Counter snapshot plus the store's shape.
    pub fn stats(&self) -> DurableStats {
        DurableStats {
            mem_hits: self.mem_hits,
            log_hits: self.log_hits,
            misses: self.misses,
            rejected: self.rejected,
            store: self.store.stats(),
        }
    }

    /// The underlying store (read-only).
    pub fn store(&self) -> &PlanStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RoundRobinScheduler;
    use micco_workload::WorkloadSpec;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("micco-durable-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fixture() -> (TensorPairStream, MachineConfig) {
        let stream = WorkloadSpec::new(8, 48)
            .with_vectors(3)
            .with_seed(7)
            .generate();
        (stream, MachineConfig::mi100_like(2))
    }

    #[test]
    fn warm_restart_serves_from_log_without_scheduling() {
        let dir = tmp_dir("warm");
        let (stream, cfg) = fixture();
        let opts = DriverOptions::default();
        let first = {
            let mut cache = DurablePlanCache::open(&dir).unwrap();
            let plan = cache
                .plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts)
                .unwrap()
                .clone();
            assert_eq!(
                (cache.mem_hits(), cache.log_hits(), cache.misses()),
                (0, 0, 1)
            );
            // second request in the same process: memory hit
            cache
                .plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts)
                .unwrap();
            assert_eq!(cache.mem_hits(), 1);
            plan
        };
        // warm restart: log hit, and the replayed plan is bit-identical
        let mut cache = DurablePlanCache::open(&dir).unwrap();
        let replayed = cache
            .plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts)
            .unwrap();
        assert_eq!(replayed.to_text(), first.to_text());
        assert_eq!(replayed.digest(), first.digest());
        assert_eq!(
            (cache.mem_hits(), cache.log_hits(), cache.misses()),
            (0, 1, 0)
        );
        // and the promotion sticks: next request is a memory hit
        cache
            .plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts)
            .unwrap();
        assert_eq!(cache.mem_hits(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_log_record_is_rejected_and_replanned() {
        let dir = tmp_dir("tamper");
        let (stream, cfg) = fixture();
        let opts = DriverOptions::default();
        let key = PlanCache::key_for(&RoundRobinScheduler::new(), &stream, &cfg, opts);
        {
            let mut cache = DurablePlanCache::open(&dir).unwrap();
            cache
                .plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts)
                .unwrap();
        }
        // store a record that parses but is NOT the canonical serialisation
        // (trailing comment changes the bytes, not the parse)
        {
            let mut store = PlanStore::open(&dir).unwrap();
            let text = String::from_utf8(store.get(key.raw()).unwrap().to_vec()).unwrap();
            store
                .put(key.raw(), format!("{text}# sneaky\n").as_bytes())
                .unwrap();
        }
        let mut cache = DurablePlanCache::open(&dir).unwrap();
        let plan = cache
            .plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts)
            .unwrap();
        assert_eq!(plan.validate(&stream), Ok(()));
        assert_eq!(cache.rejected(), 1, "non-canonical record must be rejected");
        assert_eq!(cache.misses(), 1, "and the request replanned");
        assert_eq!(cache.log_hits(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_and_lookup_under_node_qualified_keys() {
        let dir = tmp_dir("nodes");
        let (stream, cfg) = fixture();
        let opts = DriverOptions::default();
        let base = PlanCache::key_for(&RoundRobinScheduler::new(), &stream, &cfg, opts);
        {
            let mut cache = DurablePlanCache::open(&dir).unwrap();
            let plan = cache
                .plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts)
                .unwrap()
                .clone();
            cache.persist(base.with_node("node0"), &plan).unwrap();
            cache.persist(base.with_node("node1"), &plan).unwrap();
        }
        let mut cache = DurablePlanCache::open(&dir).unwrap();
        assert!(cache.lookup(base.with_node("node0")).is_some());
        assert!(cache.lookup(base.with_node("node1")).is_some());
        assert!(cache.lookup(base.with_node("node2")).is_none());
        assert_eq!(cache.log_hits(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_keeps_every_plan_servable_and_stats_track() {
        let dir = tmp_dir("compact");
        let (stream, cfg) = fixture();
        let opts = DriverOptions::default();
        let measuring = DriverOptions::default().with_measure_overhead();
        {
            let mut cache = DurablePlanCache::open(&dir).unwrap();
            cache
                .plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts)
                .unwrap();
            cache
                .plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, measuring)
                .unwrap();
            let report = cache.compact().unwrap();
            assert_eq!(report.live_records, 2);
            assert!(cache.verify().unwrap().is_clean());
        }
        let mut cache = DurablePlanCache::open(&dir).unwrap();
        cache
            .plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, opts)
            .unwrap();
        cache
            .plan_for(&mut RoundRobinScheduler::new(), &stream, &cfg, measuring)
            .unwrap();
        let stats = cache.stats();
        assert_eq!((stats.log_hits, stats.misses), (2, 0));
        assert_eq!(stats.store.live_records, 2);
        assert!(stats.store.snapshot.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_displays_and_sources() {
        let e = DurableError::from(StoreError::BadManifest {
            line: 1,
            reason: "x".into(),
        });
        assert!(e.to_string().contains("plan store"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
