//! The scheduling driver, split into *decide* and *execute*.
//!
//! [`plan_schedule`] runs the scheduler against a lightweight
//! [`ShadowMachine`] (full scheduler-visible state, no statistics) and
//! produces a [`SchedulePlan`]; [`execute_plan`] replays a validated plan
//! on a [`SimMachine`] and reports achieved performance. [`run_schedule`]
//! and [`run_schedule_with`] are thin compositions of the two with
//! unchanged signatures — and, because the shadow and the simulator share
//! one state-transition function, unchanged results. The interleaved
//! [`run_schedule_on`] remains for warm machines and tracing.

use std::time::Instant;

use micco_gpusim::{
    ExecError, ExecStats, GpuId, LinkTopology, MachineConfig, MachineView, ShadowMachine,
    SimMachine,
};
use micco_workload::{ContractionTask, TensorPairStream, Vector};

use crate::arena::PlanArena;
use crate::bounds::ReuseBounds;
use crate::plan::{PlanError, SchedulePlan};

/// An online multi-GPU scheduler.
///
/// The driver calls [`Scheduler::begin_vector`] at each stage boundary and
/// then [`Scheduler::assign`] once per tensor pair, in order. The machine
/// state passed in reflects all previously executed tasks, so residency
/// lookups see the real (simulated) world, including evictions.
pub trait Scheduler {
    /// Name for reports (e.g. `"micco(0,2,0)"`, `"groute"`).
    fn name(&self) -> String;
    /// Write [`Scheduler::name`] into `out` without building a `String`.
    /// The default forwards to `name()`; hot callers (the plan cache's
    /// key computation) rely on overrides being allocation-free, and every
    /// scheduler in this crate provides one.
    fn write_name(&self, out: &mut dyn std::fmt::Write) -> std::fmt::Result {
        out.write_str(&self.name())
    }
    /// Called once per stage vector before its tasks are assigned.
    fn begin_vector(&mut self, vector: &Vector, view: &dyn MachineView);
    /// Pick the device for one tensor pair.
    fn assign(&mut self, task: &ContractionTask, view: &dyn MachineView) -> GpuId;
    /// The reuse bounds in effect for the current vector, when the
    /// scheduler uses any (recorded into [`SchedulePlan`] stages by the
    /// planner). Defaults to `None` for bound-free schedulers.
    fn stage_bounds(&self) -> Option<ReuseBounds> {
        None
    }
    /// Toggle topology-aware candidate scoring. Called by the planner with
    /// [`DriverOptions::topology_aware`] before the first vector; the
    /// default is a no-op so topology-oblivious schedulers keep their
    /// decisions bit-identical whether or not the knob is set.
    fn set_topology_aware(&mut self, _on: bool) {}
}

/// A single placement decision (exposed for tests and traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The task assigned.
    pub task: micco_workload::TaskId,
    /// The chosen device.
    pub gpu: GpuId,
}

/// Failure of a scheduled run.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The simulated machine rejected a placement.
    Exec {
        /// Offending task.
        task: micco_workload::TaskId,
        /// Underlying machine error.
        source: ExecError,
    },
    /// A plan failed validation against the stream or machine.
    Plan(PlanError),
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::Exec { task, source } => {
                write!(f, "execution of task {:?} failed: {source}", task)
            }
            ScheduleError::Plan(e) => write!(f, "invalid plan: {e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<PlanError> for ScheduleError {
    fn from(e: PlanError) -> Self {
        ScheduleError::Plan(e)
    }
}

/// Outcome of [`run_schedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Simulated execution statistics.
    pub stats: ExecStats,
    /// Real wall-clock seconds spent inside `Scheduler::assign` — the
    /// paper's "scheduling overhead" (Table V). Measured only when
    /// [`DriverOptions::measure_overhead`] is set; `0.0` otherwise.
    pub scheduling_overhead_secs: f64,
    /// Real wall-clock seconds spent replaying the plan on the simulator
    /// (the cost of the execute phase itself, not the simulated time).
    /// Measured only when [`DriverOptions::measure_overhead`] is set and
    /// the run goes through [`execute_plan_with`] (or [`run_schedule_with`],
    /// which forwards its options); `0.0` otherwise.
    pub execution_overhead_secs: f64,
    /// Every placement decision, in task order.
    pub assignments: Vec<Assignment>,
}

impl ScheduleReport {
    /// Achieved throughput in GFLOP/s (simulated).
    pub fn gflops(&self) -> f64 {
        self.stats.gflops()
    }

    /// Simulated execution time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.stats.elapsed_secs
    }

    /// Speedup of `self` over `other` (ratio of simulated times).
    pub fn speedup_over(&self, other: &ScheduleReport) -> f64 {
        other.stats.elapsed_secs / self.stats.elapsed_secs
    }

    /// One-line human summary (scheduler, throughput, memory behaviour).
    pub fn summary(&self) -> String {
        format!(
            "{}: {:.0} GFLOPS in {:.3} ms | h2d {} d2d {} reuse {} evict {} | imbalance {:.3} | overhead {:.3} ms",
            self.scheduler,
            self.gflops(),
            self.elapsed_secs() * 1e3,
            self.stats.total_h2d(),
            self.stats.total_d2d(),
            self.stats.total_reuse_hits(),
            self.stats.total_evictions(),
            self.stats.imbalance(),
            self.scheduling_overhead_secs * 1e3,
        )
    }

    /// Total measured driver overhead: decide-phase (`Scheduler::assign`
    /// timing) plus execute-phase wall clock. Only meaningful when the run
    /// opted into [`DriverOptions::measure_overhead`].
    pub fn total_overhead_secs(&self) -> f64 {
        self.scheduling_overhead_secs + self.execution_overhead_secs
    }
}

impl std::fmt::Display for ScheduleReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.summary())
    }
}

/// Execution-engine options applied on top of a [`MachineConfig`] —
/// what the CLI's `--overlap`/`--prefetch-tasks` flags carry into the
/// simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverOptions {
    /// Enable the asynchronous copy engine (copy/compute overlap).
    pub overlap: bool,
    /// Staging-buffer depth bounding DMA lookahead (`0` = unbounded;
    /// only meaningful with `overlap`).
    pub prefetch_tasks: usize,
    /// Time every `Scheduler::assign` call with a wall-clock pair and
    /// report the total as `scheduling_overhead_secs`. Off by default:
    /// the syscall pair per task inflates reported overhead for
    /// sub-microsecond schedulers and adds noise to benchmarks that only
    /// care about simulated time.
    pub measure_overhead: bool,
    /// Let topology-capable schedulers penalize candidates whose operand
    /// fetches route over slow cross-island/cross-node links. Off by
    /// default (the pinned flat behaviour); has no effect unless a
    /// [`LinkTopology`] is actually threaded into the run (e.g. via
    /// [`plan_schedule_with_topology`]).
    pub topology_aware: bool,
}

impl DriverOptions {
    /// Options with copy/compute overlap enabled.
    pub fn with_overlap(mut self) -> Self {
        self.overlap = true;
        self
    }

    /// Options with a staging window of `k` tasks.
    pub fn with_prefetch_tasks(mut self, k: usize) -> Self {
        self.prefetch_tasks = k;
        self
    }

    /// Options with per-task scheduling-overhead timing enabled.
    pub fn with_measure_overhead(mut self) -> Self {
        self.measure_overhead = true;
        self
    }

    /// Options with topology-aware candidate scoring enabled.
    pub fn with_topology_aware(mut self) -> Self {
        self.topology_aware = true;
        self
    }

    /// `config` with these options applied to its cost model.
    pub fn apply(&self, config: &MachineConfig) -> MachineConfig {
        let mut cfg = *config;
        if self.overlap {
            cfg.cost.async_copy = true;
        }
        cfg.cost.prefetch_tasks = self.prefetch_tasks;
        cfg
    }
}

/// Decide a schedule without simulating: run `scheduler` over `stream`
/// against a [`ShadowMachine`] built from `config` and capture every
/// placement into a [`SchedulePlan`].
///
/// The shadow tracks exactly the state schedulers can observe through
/// [`MachineView`] — residency, occupancy, evictions, stage load — so the
/// decisions are identical to what the interleaved driver would make, at a
/// fraction of the cost (no statistics, no trace, no attribution).
pub fn plan_schedule(
    scheduler: &mut dyn Scheduler,
    stream: &TensorPairStream,
    config: &MachineConfig,
) -> Result<SchedulePlan, ScheduleError> {
    plan_schedule_with(scheduler, stream, config, DriverOptions::default())
}

/// [`plan_schedule`] with [`DriverOptions`] layered onto the cost model
/// (overlap changes timing, which changes what load-aware schedulers see).
pub fn plan_schedule_with(
    scheduler: &mut dyn Scheduler,
    stream: &TensorPairStream,
    config: &MachineConfig,
    options: DriverOptions,
) -> Result<SchedulePlan, ScheduleError> {
    let mut arena = PlanArena::with_capacity(stream.total_tasks(), stream.vectors.len());
    plan_schedule_in(scheduler, stream, config, options, &mut arena)
}

/// [`plan_schedule_with`] writing its working set into a caller-provided
/// [`PlanArena`] — the allocation-amortised entry point for callers that
/// plan repeatedly (the plan cache, the benches). The arena is reset on
/// entry and left populated on return, ready for the next pass; the
/// returned plan is identical to what [`plan_schedule_with`] produces.
pub fn plan_schedule_in(
    scheduler: &mut dyn Scheduler,
    stream: &TensorPairStream,
    config: &MachineConfig,
    options: DriverOptions,
    arena: &mut PlanArena,
) -> Result<SchedulePlan, ScheduleError> {
    plan_schedule_in_with_topology(scheduler, stream, config, options, arena, None)
}

/// [`plan_schedule_with`] deciding against a [`LinkTopology`]-carrying
/// shadow: peer transfers are routed and charged per hop, so load-aware
/// schedulers see the (slower) cross-island reality, and schedulers that
/// honour [`Scheduler::set_topology_aware`] additionally penalize
/// candidates that would pull operands over slow links. Passing `None`
/// is exactly [`plan_schedule_with`].
pub fn plan_schedule_with_topology(
    scheduler: &mut dyn Scheduler,
    stream: &TensorPairStream,
    config: &MachineConfig,
    options: DriverOptions,
    topology: Option<&LinkTopology>,
) -> Result<SchedulePlan, ScheduleError> {
    let mut arena = PlanArena::with_capacity(stream.total_tasks(), stream.vectors.len());
    plan_schedule_in_with_topology(scheduler, stream, config, options, &mut arena, topology)
}

/// [`plan_schedule_in`] with an optional [`LinkTopology`] — the arena
/// variant every other planning entry point funnels through.
pub fn plan_schedule_in_with_topology(
    scheduler: &mut dyn Scheduler,
    stream: &TensorPairStream,
    config: &MachineConfig,
    options: DriverOptions,
    arena: &mut PlanArena,
    topology: Option<&LinkTopology>,
) -> Result<SchedulePlan, ScheduleError> {
    let cfg = options.apply(config);
    let mut shadow = ShadowMachine::new(cfg);
    shadow.set_topology(topology.cloned());
    scheduler.set_topology_aware(options.topology_aware && topology.is_some());
    // Pre-intern every tensor of the stream so the per-symbol SoA tables
    // are sized once instead of growing inside the hot loop.
    shadow.reserve_stream(stream);
    arena.reset();
    let mut overhead = 0.0;
    for vector in &stream.vectors {
        scheduler.begin_vector(vector, &shadow);
        let bounds = scheduler.stage_bounds();
        for task in &vector.tasks {
            let gpu = if options.measure_overhead {
                let t0 = Instant::now();
                let gpu = scheduler.assign(task, &shadow);
                overhead += t0.elapsed().as_secs_f64();
                gpu
            } else {
                scheduler.assign(task, &shadow)
            };
            shadow
                .execute(task, gpu)
                .map_err(|source| ScheduleError::Exec {
                    task: task.id,
                    source,
                })?;
            arena.push(Assignment { task: task.id, gpu });
        }
        shadow.barrier();
        arena.close_stage(bounds);
    }
    Ok(arena.to_plan(
        scheduler.name(),
        cfg.num_gpus,
        stream.fingerprint(),
        overhead,
    ))
}

/// Execute a validated plan on `machine`, one stage per stream vector with
/// a barrier between stages. The plan is checked against the stream and
/// the machine first ([`SchedulePlan::validate_for`]); a plan decided for
/// a different workload or device count is a typed error, not a panic.
pub fn execute_plan(
    plan: &SchedulePlan,
    stream: &TensorPairStream,
    machine: &mut SimMachine,
) -> Result<ScheduleReport, ScheduleError> {
    execute_plan_with(plan, stream, machine, DriverOptions::default())
}

/// [`execute_plan`] honouring [`DriverOptions`]: with `measure_overhead`
/// set, the wall-clock cost of the execute phase is captured into
/// [`ScheduleReport::execution_overhead_secs`], so plan-time and exec-time
/// overhead are reported consistently. (Historically `measure_overhead`
/// was silently ignored on the plan-replay path.) Timing never changes the
/// simulated outcome — a test pins that.
pub fn execute_plan_with(
    plan: &SchedulePlan,
    stream: &TensorPairStream,
    machine: &mut SimMachine,
    options: DriverOptions,
) -> Result<ScheduleReport, ScheduleError> {
    let t0 = options.measure_overhead.then(Instant::now);
    plan.validate_for(stream, MachineView::num_gpus(machine))?;
    let mut assignments = Vec::with_capacity(plan.total_tasks());
    for (vector, stage) in stream.vectors.iter().zip(&plan.stages) {
        for (task, a) in vector.tasks.iter().zip(&stage.assignments) {
            machine
                .execute(task, a.gpu)
                .map_err(|source| ScheduleError::Exec {
                    task: task.id,
                    source,
                })?;
            assignments.push(*a);
        }
        machine.barrier();
    }
    Ok(ScheduleReport {
        scheduler: plan.scheduler.clone(),
        stats: machine.stats().clone(),
        scheduling_overhead_secs: plan.overhead_secs,
        execution_overhead_secs: t0.map_or(0.0, |t| t.elapsed().as_secs_f64()),
        assignments,
    })
}

/// [`execute_plan_with`] on a machine armed with `topology` (the machine's
/// existing topology is replaced — cleared when `None` — so planned and
/// executed routes stay bit-identical when both phases receive the same
/// topology).
pub fn execute_plan_with_topology(
    plan: &SchedulePlan,
    stream: &TensorPairStream,
    machine: &mut SimMachine,
    options: DriverOptions,
    topology: Option<&LinkTopology>,
) -> Result<ScheduleReport, ScheduleError> {
    machine.set_topology(topology.cloned());
    execute_plan_with(plan, stream, machine, options)
}

/// Run `scheduler` over `stream` on a fresh machine built from `config`.
///
/// Since the decide/execute split this is a composition of
/// [`plan_schedule`] and [`execute_plan`]; assignments and statistics are
/// identical to the historical interleaved driver (a conformance test
/// enforces it for every scheduler).
pub fn run_schedule(
    scheduler: &mut dyn Scheduler,
    stream: &TensorPairStream,
    config: &MachineConfig,
) -> Result<ScheduleReport, ScheduleError> {
    run_schedule_with(scheduler, stream, config, DriverOptions::default())
}

/// [`run_schedule`] with [`DriverOptions`] layered onto the machine's cost
/// model — the entry point for overlap experiments.
///
/// # Examples
///
/// ```
/// use micco_core::{run_schedule_with, DriverOptions, RoundRobinScheduler};
/// use micco_gpusim::MachineConfig;
/// use micco_workload::WorkloadSpec;
///
/// let stream = WorkloadSpec::new(8, 64).with_vectors(2).generate();
/// let cfg = MachineConfig::mi100_like(2);
/// let sync = run_schedule_with(
///     &mut RoundRobinScheduler::new(), &stream, &cfg, DriverOptions::default(),
/// ).unwrap();
/// let overlapped = run_schedule_with(
///     &mut RoundRobinScheduler::new(), &stream, &cfg, DriverOptions::default().with_overlap(),
/// ).unwrap();
/// // overlapping copies with compute never slows the simulated run down
/// assert!(overlapped.elapsed_secs() <= sync.elapsed_secs());
/// ```
pub fn run_schedule_with(
    scheduler: &mut dyn Scheduler,
    stream: &TensorPairStream,
    config: &MachineConfig,
    options: DriverOptions,
) -> Result<ScheduleReport, ScheduleError> {
    let cfg = options.apply(config);
    let plan = plan_schedule_with(scheduler, stream, &cfg, options)?;
    let mut machine = SimMachine::new(cfg);
    execute_plan_with(&plan, stream, &mut machine, options)
}

/// [`run_schedule_with`] with both phases routed over `topology`: the plan
/// is decided against a topology-carrying shadow and replayed on a
/// topology-carrying simulator, so the executed transfer paths are exactly
/// the planned ones. `None` is exactly [`run_schedule_with`].
pub fn run_schedule_with_topology(
    scheduler: &mut dyn Scheduler,
    stream: &TensorPairStream,
    config: &MachineConfig,
    options: DriverOptions,
    topology: Option<&LinkTopology>,
) -> Result<ScheduleReport, ScheduleError> {
    let cfg = options.apply(config);
    let plan = plan_schedule_with_topology(scheduler, stream, &cfg, options, topology)?;
    let mut machine = SimMachine::new(cfg);
    execute_plan_with_topology(&plan, stream, &mut machine, options, topology)
}

/// Run `scheduler` over `stream` on an existing machine (lets callers enable
/// tracing or chain multiple streams on warm devices). This is the
/// interleaved path: decisions and execution advance the same machine, so
/// it works from any starting state — but produces no reusable plan.
pub fn run_schedule_on(
    scheduler: &mut dyn Scheduler,
    stream: &TensorPairStream,
    machine: &mut SimMachine,
) -> Result<ScheduleReport, ScheduleError> {
    let mut assignments = Vec::with_capacity(stream.total_tasks());
    for vector in &stream.vectors {
        scheduler.begin_vector(vector, machine);
        for task in &vector.tasks {
            let gpu = scheduler.assign(task, machine);
            machine
                .execute(task, gpu)
                .map_err(|source| ScheduleError::Exec {
                    task: task.id,
                    source,
                })?;
            assignments.push(Assignment { task: task.id, gpu });
        }
        machine.barrier();
    }
    Ok(ScheduleReport {
        scheduler: scheduler.name(),
        stats: machine.stats().clone(),
        scheduling_overhead_secs: 0.0,
        execution_overhead_secs: 0.0,
        assignments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RoundRobinScheduler;
    use micco_workload::WorkloadSpec;

    #[test]
    fn round_robin_runs_and_reports() {
        let stream = WorkloadSpec::new(8, 64)
            .with_vectors(3)
            .with_seed(1)
            .generate();
        let mut s = RoundRobinScheduler::new();
        let report = run_schedule(&mut s, &stream, &MachineConfig::mi100_like(4)).unwrap();
        assert_eq!(report.assignments.len(), stream.total_tasks());
        assert_eq!(report.stats.total_tasks() as usize, stream.total_tasks());
        assert!(report.gflops() > 0.0);
        assert!(report.scheduling_overhead_secs >= 0.0);
        assert_eq!(report.scheduler, "round-robin");
        // all four devices used
        let mut used: Vec<usize> = report.assignments.iter().map(|a| a.gpu.0).collect();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used, vec![0, 1, 2, 3]);
    }

    #[test]
    fn out_of_memory_surfaces_as_schedule_error() {
        let stream = WorkloadSpec::new(4, 512).with_vectors(1).generate();
        // device memory smaller than one task's working set
        let cfg = MachineConfig::mi100_like(1).with_mem_bytes(1024);
        let mut s = RoundRobinScheduler::new();
        let err = run_schedule(&mut s, &stream, &cfg).unwrap_err();
        assert!(matches!(err, ScheduleError::Exec { .. }));
        assert!(err.to_string().contains("failed"));
    }

    #[test]
    fn speedup_is_ratio_of_elapsed() {
        let stream = WorkloadSpec::new(8, 64).with_vectors(2).generate();
        let cfg = MachineConfig::mi100_like(2);
        let a = run_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let b = a.clone();
        assert!((a.speedup_over(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_is_a_clean_noop() {
        let stream = micco_workload::TensorPairStream::default();
        let cfg = MachineConfig::mi100_like(2);
        let r = run_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        assert!(r.assignments.is_empty());
        assert_eq!(r.stats.total_tasks(), 0);
        assert_eq!(r.gflops(), 0.0);
        assert!(r.stats.stage_makespans.is_empty());
    }

    #[test]
    fn summary_and_display_agree() {
        let stream = WorkloadSpec::new(4, 64).with_vectors(1).generate();
        let cfg = MachineConfig::mi100_like(2);
        let r = run_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        assert_eq!(r.summary(), r.to_string());
        assert!(r.summary().contains("round-robin"));
        assert!(r.summary().contains("GFLOPS"));
    }

    #[test]
    fn driver_options_apply_to_cost_model() {
        let cfg = MachineConfig::mi100_like(2);
        let applied = DriverOptions::default()
            .with_overlap()
            .with_prefetch_tasks(2)
            .apply(&cfg);
        assert!(applied.cost.async_copy);
        assert_eq!(applied.cost.prefetch_tasks, 2);
        // defaults leave the config untouched
        assert_eq!(DriverOptions::default().apply(&cfg), cfg);
    }

    #[test]
    fn overlap_run_matches_async_config_and_keeps_assignments_comparable() {
        let stream = WorkloadSpec::new(8, 64)
            .with_vectors(2)
            .with_seed(4)
            .generate();
        let cfg = MachineConfig::mi100_like(2);
        let via_options = run_schedule_with(
            &mut RoundRobinScheduler::new(),
            &stream,
            &cfg,
            DriverOptions::default().with_overlap(),
        )
        .unwrap();
        let via_cost = run_schedule(
            &mut RoundRobinScheduler::new(),
            &stream,
            &cfg.with_cost(cfg.cost.with_async_copy()),
        )
        .unwrap();
        assert_eq!(via_options.stats, via_cost.stats);
        assert_eq!(via_options.assignments, via_cost.assignments);
    }

    #[test]
    fn stage_makespans_match_vector_count() {
        let stream = WorkloadSpec::new(4, 64).with_vectors(5).generate();
        let cfg = MachineConfig::mi100_like(2);
        let r = run_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        assert_eq!(r.stats.stage_makespans.len(), 5);
    }

    #[test]
    fn overhead_zero_unless_opted_in() {
        let stream = WorkloadSpec::new(8, 64).with_vectors(2).generate();
        let cfg = MachineConfig::mi100_like(2);
        let silent = run_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        assert_eq!(silent.scheduling_overhead_secs, 0.0);
        assert_eq!(silent.execution_overhead_secs, 0.0);
        let measured = run_schedule_with(
            &mut RoundRobinScheduler::new(),
            &stream,
            &cfg,
            DriverOptions::default().with_measure_overhead(),
        )
        .unwrap();
        assert!(measured.scheduling_overhead_secs > 0.0);
        // timing never changes the decisions or the simulated outcome
        assert_eq!(silent.assignments, measured.assignments);
        assert_eq!(silent.stats, measured.stats);
    }

    #[test]
    fn execute_phase_overhead_is_measured_when_opted_in() {
        let stream = WorkloadSpec::new(8, 64).with_vectors(2).generate();
        let cfg = MachineConfig::mi100_like(2);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();

        // the plan-replay path honours measure_overhead (it used to be
        // silently dropped here)
        let mut machine = SimMachine::new(cfg);
        let timed = execute_plan_with(
            &plan,
            &stream,
            &mut machine,
            DriverOptions::default().with_measure_overhead(),
        )
        .unwrap();
        assert!(timed.execution_overhead_secs > 0.0);

        // and measurement never perturbs the simulated outcome
        let mut machine = SimMachine::new(cfg);
        let silent = execute_plan(&plan, &stream, &mut machine).unwrap();
        assert_eq!(silent.execution_overhead_secs, 0.0);
        assert_eq!(silent.stats, timed.stats);
        assert_eq!(silent.assignments, timed.assignments);
        assert!(timed.total_overhead_secs() >= timed.execution_overhead_secs);

        // composed runs forward the options to the execute phase
        let composed = run_schedule_with(
            &mut RoundRobinScheduler::new(),
            &stream,
            &cfg,
            DriverOptions::default().with_measure_overhead(),
        )
        .unwrap();
        assert!(composed.execution_overhead_secs > 0.0);
    }

    #[test]
    fn composition_matches_interleaved_path() {
        let stream = WorkloadSpec::new(12, 96)
            .with_vectors(3)
            .with_seed(9)
            .generate();
        let cfg = MachineConfig::mi100_like(3);
        let composed = run_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let mut machine = SimMachine::new(cfg);
        let interleaved =
            run_schedule_on(&mut RoundRobinScheduler::new(), &stream, &mut machine).unwrap();
        assert_eq!(composed.assignments, interleaved.assignments);
        assert_eq!(composed.stats, interleaved.stats);
    }

    #[test]
    fn execute_plan_rejects_mismatched_stream() {
        let stream = WorkloadSpec::new(8, 64).with_vectors(2).generate();
        let cfg = MachineConfig::mi100_like(2);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let other = WorkloadSpec::new(8, 64)
            .with_vectors(2)
            .with_seed(99)
            .generate();
        let mut machine = SimMachine::new(cfg);
        let err = execute_plan(&plan, &other, &mut machine).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::Plan(PlanError::FingerprintMismatch { .. })
        ));
        // and a machine with the wrong shape is rejected too
        let mut small = SimMachine::new(MachineConfig::mi100_like(1));
        let err = execute_plan(&plan, &stream, &mut small).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::Plan(PlanError::DeviceCountMismatch { .. })
        ));
    }
}
