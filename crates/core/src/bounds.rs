//! Reuse bounds (Table II) and the provider abstraction that feeds them to
//! the scheduler per vector.

use micco_workload::DataCharacteristics;

/// The three reuse bounds of Table II.
///
/// A reuse bound is "the allowed level of load imbalance" (Sec. III-B2):
/// device `g` is an *available* candidate for a pair of bound class `k` only
/// while the number of tensors assigned to `g` in the current vector stays
/// below `bounds[k] + balanceNum`, where `balanceNum = numTensor / numGPU`
/// is the perfectly balanced share.
///
/// * `bounds[0]` governs `TwoRepeatedSame` pairs (mapping (1));
/// * `bounds[1]` governs `TwoRepeatedDiff` / `OneRepeated` pairs
///   (mappings (2)–(3));
/// * `bounds[2]` governs `TwoNew` pairs (mappings (4)–(7)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ReuseBounds {
    bounds: [usize; 3],
}

impl ReuseBounds {
    /// Build from the three per-class bounds.
    pub const fn new(same: usize, one: usize, new: usize) -> Self {
        ReuseBounds {
            bounds: [same, one, new],
        }
    }

    /// All-zero bounds — the *MICCO-naive* configuration of the evaluation
    /// (no imbalance allowed beyond the balanced share).
    pub const fn naive() -> Self {
        ReuseBounds::new(0, 0, 0)
    }

    /// Effectively unlimited bounds — pure data-centric scheduling (used by
    /// the ablation benches; equivalent to case ① of Fig. 2).
    pub const fn unbounded() -> Self {
        ReuseBounds::new(usize::MAX / 2, usize::MAX / 2, usize::MAX / 2)
    }

    /// The bound for pattern class `k` (see [`ReuseBounds`] docs).
    pub fn get(&self, class: usize) -> usize {
        self.bounds[class]
    }

    /// The raw triple.
    pub fn as_array(&self) -> [usize; 3] {
        self.bounds
    }
}

impl From<[usize; 3]> for ReuseBounds {
    fn from(bounds: [usize; 3]) -> Self {
        ReuseBounds { bounds }
    }
}

impl std::fmt::Display for ReuseBounds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // written piecewise (no temporary Strings): the plan cache hashes
        // scheduler names through this impl on every lookup
        f.write_str("(")?;
        for (i, &v) in self.bounds.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            if v >= usize::MAX / 2 {
                f.write_str("inf")?;
            } else {
                write!(f, "{v}")?;
            }
        }
        f.write_str(")")
    }
}

/// Source of per-vector reuse bounds.
///
/// MICCO-optimal plugs in the pre-trained regression model
/// ([`crate::model::RegressionBounds`]); MICCO-naive and the Fig. 8 sweeps
/// plug in [`FixedBounds`].
pub trait BoundsProvider {
    /// Bounds to use for a vector with the given measured characteristics.
    fn bounds_for(&mut self, characteristics: &DataCharacteristics) -> ReuseBounds;
    /// Human-readable name for reports.
    fn name(&self) -> String;
    /// Write [`BoundsProvider::name`] into `out` without building a
    /// `String` (see [`crate::Scheduler::write_name`]).
    fn write_name(&self, out: &mut dyn std::fmt::Write) -> std::fmt::Result {
        out.write_str(&self.name())
    }
}

/// A constant bounds setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedBounds(pub ReuseBounds);

impl BoundsProvider for FixedBounds {
    fn bounds_for(&mut self, _c: &DataCharacteristics) -> ReuseBounds {
        self.0
    }

    fn name(&self) -> String {
        format!("fixed{}", self.0)
    }

    fn write_name(&self, out: &mut dyn std::fmt::Write) -> std::fmt::Result {
        write!(out, "fixed{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let b = ReuseBounds::new(1, 2, 3);
        assert_eq!(b.get(0), 1);
        assert_eq!(b.get(1), 2);
        assert_eq!(b.get(2), 3);
        assert_eq!(b.as_array(), [1, 2, 3]);
    }

    #[test]
    fn naive_is_zero() {
        assert_eq!(ReuseBounds::naive().as_array(), [0, 0, 0]);
    }

    #[test]
    fn unbounded_never_saturates_when_added_to_balance() {
        let b = ReuseBounds::unbounded();
        // must not overflow when the scheduler adds balanceNum
        assert!(b.get(0).checked_add(10_000).is_some());
        assert!(b.get(0) > 1_000_000_000);
    }

    #[test]
    fn from_array_and_display() {
        let b: ReuseBounds = [0, 2, 0].into();
        assert_eq!(b.to_string(), "(0,2,0)");
        assert_eq!(ReuseBounds::unbounded().to_string(), "(inf,inf,inf)");
    }

    #[test]
    fn fixed_provider_ignores_characteristics() {
        let mut p = FixedBounds(ReuseBounds::new(0, 2, 0));
        let c = DataCharacteristics {
            vector_size: 64,
            tensor_bytes: 1e6,
            repeated_rate: 0.5,
            distribution_bias: 0.0,
        };
        assert_eq!(p.bounds_for(&c), ReuseBounds::new(0, 2, 0));
        assert!(p.name().contains("(0,2,0)"));
    }
}
