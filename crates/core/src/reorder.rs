//! Intra-vector task reordering (an optimisation extension).
//!
//! Tasks within a stage vector are independent, so the front end's emission
//! order is arbitrary — but the *scheduler* consumes them online, and under
//! memory pressure the distance between two uses of a tensor decides
//! whether the second use still finds it resident. Clustering tasks that
//! share operands shortens those distances, improving both reuse-hit rates
//! and eviction behaviour, at zero cost to correctness (any permutation of
//! an independent vector computes the same thing — asserted by tests).
//!
//! The paper keeps the front end's order; this module is a documented
//! extension (see DESIGN.md §6) with an experiment binary
//! (`ext_reordering`) quantifying the effect.

use std::collections::HashMap;

use micco_workload::{TensorId, TensorPairStream, Vector};

/// Greedy reuse-clustered permutation of a vector's tasks.
///
/// Starting from the first task, repeatedly append an unscheduled task that
/// shares an operand with the most recently scheduled one (preferring lower
/// original index for determinism); when none shares, fall back to the
/// lowest-index unscheduled task. `O(n·k)` with the operand index, `k` =
/// max tasks per tensor.
pub fn reuse_clustered_order(vector: &Vector) -> Vec<usize> {
    let n = vector.len();
    if n == 0 {
        return Vec::new();
    }
    // tensor -> task indices using it
    let mut users: HashMap<TensorId, Vec<usize>> = HashMap::new();
    for (i, t) in vector.tasks.iter().enumerate() {
        users.entry(t.a.id).or_default().push(i);
        if t.b.id != t.a.id {
            users.entry(t.b.id).or_default().push(i);
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut scheduled = vec![false; n];
    let mut cursor = 0usize; // lowest possibly-unscheduled index
    let mut current = 0usize;
    scheduled[0] = true;
    order.push(0);
    while order.len() < n {
        // neighbour sharing an operand with `current`
        let t = &vector.tasks[current];
        let next = [t.a.id, t.b.id]
            .iter()
            .flat_map(|id| users.get(id).into_iter().flatten())
            .copied()
            .filter(|&j| !scheduled[j])
            .min();
        let pick = next.unwrap_or_else(|| {
            while scheduled[cursor] {
                cursor += 1;
            }
            cursor
        });
        scheduled[pick] = true;
        order.push(pick);
        current = pick;
    }
    order
}

/// Apply a per-vector ordering function to a whole stream.
pub fn reorder_stream(
    stream: &TensorPairStream,
    order: impl Fn(&Vector) -> Vec<usize>,
) -> TensorPairStream {
    let vectors = stream
        .vectors
        .iter()
        .map(|v| {
            let perm = order(v);
            debug_assert_eq!(perm.len(), v.len());
            Vector::new(perm.into_iter().map(|i| v.tasks[i].clone()).collect())
        })
        .collect();
    TensorPairStream::new(vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use micco_tensor::ContractionKind;
    use micco_workload::{ContractionTask, TaskId, WorkloadSpec};

    fn task(id: u64, a: u64, b: u64) -> ContractionTask {
        ContractionTask::uniform(
            TaskId(id),
            TensorId(a),
            TensorId(b),
            TensorId(1000 + id),
            ContractionKind::Meson,
            1,
            4,
        )
    }

    #[test]
    fn order_is_a_permutation() {
        let stream = WorkloadSpec::new(32, 64)
            .with_repeat_rate(0.7)
            .with_vectors(3)
            .generate();
        for v in &stream.vectors {
            let mut order = reuse_clustered_order(v);
            order.sort_unstable();
            assert_eq!(order, (0..v.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn clusters_shared_operands() {
        // tasks 0 and 3 share tensor 1; 1 and 2 share nothing with 0
        let v = Vector::new(vec![
            task(0, 1, 2),
            task(1, 10, 11),
            task(2, 20, 21),
            task(3, 1, 30),
        ]);
        let order = reuse_clustered_order(&v);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 3, "task sharing tensor 1 must follow immediately");
    }

    #[test]
    fn chain_is_followed_transitively() {
        // 0 -(a)- 2 -(b)- 1: clustered order follows the chain
        let v = Vector::new(vec![task(0, 1, 2), task(1, 3, 4), task(2, 2, 3)]);
        assert_eq!(reuse_clustered_order(&v), vec![0, 2, 1]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(reuse_clustered_order(&Vector::default()).is_empty());
        let v = Vector::new(vec![task(0, 1, 2)]);
        assert_eq!(reuse_clustered_order(&v), vec![0]);
    }

    #[test]
    fn deterministic() {
        let stream = WorkloadSpec::new(64, 64)
            .with_repeat_rate(0.8)
            .with_vectors(2)
            .generate();
        for v in &stream.vectors {
            assert_eq!(reuse_clustered_order(v), reuse_clustered_order(v));
        }
    }

    #[test]
    fn reorder_stream_preserves_task_multiset() {
        let stream = WorkloadSpec::new(16, 64)
            .with_repeat_rate(0.5)
            .with_vectors(3)
            .generate();
        let reordered = reorder_stream(&stream, reuse_clustered_order);
        assert_eq!(reordered.total_tasks(), stream.total_tasks());
        assert_eq!(reordered.total_flops(), stream.total_flops());
        for (a, b) in stream.vectors.iter().zip(&reordered.vectors) {
            let mut x: Vec<_> = a.tasks.iter().map(|t| t.id).collect();
            let mut y: Vec<_> = b.tasks.iter().map(|t| t.id).collect();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn reordering_improves_reuse_adjacency() {
        // measure: mean index distance between consecutive uses of a tensor
        // vector 0 is all-fresh by construction; measure the second vector,
        // where intra-vector repeats exist
        let stream = WorkloadSpec::new(64, 64)
            .with_repeat_rate(0.8)
            .with_vectors(2)
            .with_seed(4)
            .generate();
        let adjacency = |v: &Vector| {
            let mut last: HashMap<TensorId, usize> = HashMap::new();
            let mut dist = 0usize;
            let mut n = 0usize;
            for (i, t) in v.tasks.iter().enumerate() {
                for id in [t.a.id, t.b.id] {
                    if let Some(&p) = last.get(&id) {
                        dist += i - p;
                        n += 1;
                    }
                    last.insert(id, i);
                }
            }
            dist as f64 / n.max(1) as f64
        };
        let before = adjacency(&stream.vectors[1]);
        let after = adjacency(&reorder_stream(&stream, reuse_clustered_order).vectors[1]);
        assert!(
            after < before,
            "mean reuse distance {after:.2} !< {before:.2}"
        );
    }
}
