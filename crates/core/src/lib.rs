#![warn(missing_docs)]

//! # micco-core
//!
//! The MICCO multi-GPU scheduler — the paper's primary contribution — plus
//! the baselines it is evaluated against.
//!
//! ## What MICCO does
//!
//! Tensor-pair contractions arrive online, one stage vector at a time. For
//! every pair MICCO must pick a device, trading **data reuse** (placing a
//! pair where its operands already live avoids allocations and transfers)
//! against **load balance** (piling reuse onto one device starves the rest),
//! while steering clear of **memory eviction** under oversubscription.
//!
//! The pieces map one-to-one onto the paper:
//!
//! * [`pattern::LocalReusePattern`] — the four-way classification of an
//!   incoming pair against current device residency (Fig. 4);
//! * [`ReuseBounds`] — three integers bounding the load imbalance the
//!   scheduler may accept for each pattern class (Table II);
//! * [`MiccoScheduler`] — the heuristic (Alg. 1 + Alg. 2) toggling the
//!   data-centric, computation-centric and memory-eviction-sensitive
//!   policies;
//! * [`GrouteScheduler`] — the earliest-available-device baseline the paper
//!   compares against (reuse-oblivious load balancing);
//! * [`run_schedule`] — the driver interleaving scheduling with simulated
//!   execution, measuring both achieved GFLOPS and scheduling overhead;
//! * [`tuner`] — grid search over reuse-bound settings (ground truth for the
//!   regression model) and the Fig. 8 candidate set;
//! * [`model::RegressionBounds`] — the pre-trained random-forest provider
//!   that predicts per-vector optimal bounds from data characteristics.

pub mod arena;
pub mod baselines;
pub mod bounds;
pub mod config;
pub mod driver;
pub mod mapping;
pub mod micco;
pub mod model;
pub mod pattern;
pub mod plan;
pub mod reorder;
pub mod seedref;
pub mod session;
pub mod state;
pub mod store;
pub mod tuner;

pub use arena::PlanArena;
pub use baselines::{CodaScheduler, GrouteScheduler, RoundRobinScheduler};
pub use bounds::{BoundsProvider, FixedBounds, ReuseBounds};
pub use config::{ConfigError, RetryPolicy, SessionConfig, CONFIG_KEYS};
pub use driver::{
    execute_plan, execute_plan_with, execute_plan_with_topology, plan_schedule, plan_schedule_in,
    plan_schedule_in_with_topology, plan_schedule_with, plan_schedule_with_topology, run_schedule,
    run_schedule_on, run_schedule_with, run_schedule_with_topology, Assignment, DriverOptions,
    ScheduleError, ScheduleReport, Scheduler,
};
pub use mapping::{mapping_histogram, Mapping, MappingHistogram};
pub use micco::MiccoScheduler;
pub use model::RegressionBounds;
pub use pattern::LocalReusePattern;
pub use plan::{
    repair_plan, repair_plan_with, PlanCache, PlanError, PlanFormatError, PlanKey, PlanStage,
    RepairError, SchedulePlan, PLAN_VERSION,
};
pub use reorder::{reorder_stream, reuse_clustered_order};
pub use seedref::plan_schedule_seed;
pub use session::{Planned, Session};
pub use state::VectorState;
pub use store::{DurableError, DurablePlanCache, DurableStats};
