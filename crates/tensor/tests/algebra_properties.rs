//! Property-based tests of the tensor kernels' algebraic laws.

use proptest::prelude::*;

use micco_tensor::{BatchedMatrix, BatchedTensor3, Complex64, Matrix, Tensor3};

const EPS: f64 = 1e-9;

fn cpx() -> impl Strategy<Value = Complex64> {
    (-5.0f64..5.0, -5.0f64..5.0).prop_map(|(re, im)| Complex64::new(re, im))
}

fn matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(cpx(), n * n)
        .prop_map(move |v| Matrix::from_fn(n, |i, j| v[i * n + j]))
}

fn tensor3(n: usize) -> impl Strategy<Value = Tensor3> {
    proptest::collection::vec(cpx(), n * n * n)
        .prop_map(move |v| Tensor3::from_fn(n, |i, j, k| v[(i * n + j) * n + k]))
}

fn batched(batch: usize, n: usize) -> impl Strategy<Value = BatchedMatrix> {
    proptest::collection::vec(cpx(), batch * n * n)
        .prop_map(move |v| BatchedMatrix::from_fn(batch, n, |b, i, j| v[(b * n + i) * n + j]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn complex_field_laws(a in cpx(), b in cpx(), c in cpx()) {
        // commutativity and distributivity
        prop_assert!(((a * b) - (b * a)).abs() < EPS);
        prop_assert!(((a * (b + c)) - (a * b + a * c)).abs() < 1e-8);
        // conjugation is an involutive ring hom
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < EPS);
        prop_assert_eq!(a.conj().conj(), a);
        // |ab| = |a||b|
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-8);
    }

    #[test]
    fn matmul_associative(a in matrix(4), b in matrix(4), c in matrix(4)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right) < 1e-7);
    }

    #[test]
    fn matmul_identity_neutral(a in matrix(5)) {
        let id = Matrix::identity(5);
        prop_assert!(a.matmul(&id).unwrap().max_abs_diff(&a) < EPS);
        prop_assert!(id.matmul(&a).unwrap().max_abs_diff(&a) < EPS);
    }

    #[test]
    fn trace_inner_is_trace_of_product(a in matrix(4), b in matrix(4)) {
        let fast = a.trace_inner(&b).unwrap();
        let slow = a.matmul(&b).unwrap().trace();
        prop_assert!((fast - slow).abs() < 1e-8);
    }

    #[test]
    fn trace_is_cyclic(a in matrix(3), b in matrix(3)) {
        // tr(AB) = tr(BA)
        let ab = a.trace_inner(&b).unwrap();
        let ba = b.trace_inner(&a).unwrap();
        prop_assert!((ab - ba).abs() < 1e-8);
    }

    #[test]
    fn dagger_reverses_products(a in matrix(3), b in matrix(3)) {
        // (AB)† = B†A†
        let lhs = a.matmul(&b).unwrap().dagger();
        let rhs = b.dagger().matmul(&a.dagger()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-8);
    }

    #[test]
    fn tensor3_contraction_bilinear(a in tensor3(3), b in tensor3(3), s in -3.0f64..3.0) {
        // (s·a) ∘ b == s·(a ∘ b)
        let sa = Tensor3::from_fn(3, |i, j, k| a.get(i, j, k) * s);
        let lhs = sa.contract(&b).unwrap();
        let ab = a.contract(&b).unwrap();
        let rhs = Tensor3::from_fn(3, |i, j, k| ab.get(i, j, k) * s);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-7);
    }

    #[test]
    fn batched_ops_match_per_element(a in batched(3, 4), b in batched(3, 4)) {
        let c = a.matmul(&b).unwrap();
        for bi in 0..3 {
            let expect = a.element(bi).matmul(&b.element(bi)).unwrap();
            prop_assert!(c.element(bi).max_abs_diff(&expect) < EPS);
        }
        let ti = a.trace_inner(&b).unwrap();
        let mut sum = Complex64::ZERO;
        for bi in 0..3 {
            sum += a.element(bi).trace_inner(&b.element(bi)).unwrap();
        }
        prop_assert!((ti - sum).abs() < 1e-7);
    }

    #[test]
    fn frobenius_norm_triangle_inequality(a in matrix(4), b in matrix(4)) {
        let sum = Matrix::from_fn(4, |i, j| a.get(i, j) + b.get(i, j));
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + EPS);
    }

    #[test]
    fn batched_t3_inner_symmetric_under_index_reversal(n in 2usize..4) {
        // inner(a, b) uses b[k,j,i]; the zero tensor annihilates everything
        let z = BatchedTensor3::zeros(2, n);
        let t = BatchedTensor3::from_fn(2, n, |b, i, j, k| {
            Complex64::new((b + i) as f64, (j * k) as f64)
        });
        prop_assert_eq!(z.inner(&t).unwrap(), Complex64::ZERO);
        prop_assert_eq!(t.inner(&z).unwrap(), Complex64::ZERO);
    }
}
