//! Batched tensor payloads and rayon-parallel batched kernels.
//!
//! A hadron node carries a *batch* of identically-shaped tensors (one per
//! dilution index combination). On a real GPU the batch is dispatched as a
//! single batched GEMM / batched contraction (hipBLAS `gemmBatched`); here
//! the batch dimension is the rayon parallelism axis, which mirrors how the
//! device spreads batch elements across compute units.

use rayon::prelude::*;

use crate::complex::Complex64;
use crate::matrix::{matmul_into, Matrix};
use crate::tensor3::{contract_into, Tensor3};
use crate::TensorError;

/// A batch of dense `n × n` complex matrices in one contiguous allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedMatrix {
    batch: usize,
    n: usize,
    data: Vec<Complex64>,
}

impl BatchedMatrix {
    /// Zero-initialised batch.
    pub fn zeros(batch: usize, n: usize) -> Self {
        BatchedMatrix {
            batch,
            n,
            data: vec![Complex64::ZERO; batch * n * n],
        }
    }

    /// Batch of identity matrices.
    pub fn identity(batch: usize, n: usize) -> Self {
        let mut m = BatchedMatrix::zeros(batch, n);
        for b in 0..batch {
            for i in 0..n {
                m.data[b * n * n + i * n + i] = Complex64::ONE;
            }
        }
        m
    }

    /// Build from a generator over `(batch, row, col)`.
    pub fn from_fn(
        batch: usize,
        n: usize,
        mut f: impl FnMut(usize, usize, usize) -> Complex64,
    ) -> Self {
        let mut data = Vec::with_capacity(batch * n * n);
        for b in 0..batch {
            for i in 0..n {
                for j in 0..n {
                    data.push(f(b, i, j));
                }
            }
        }
        BatchedMatrix { batch, n, data }
    }

    /// Number of batch elements.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Mode length `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Borrow batch element `b` as a slice of length `n*n`.
    #[inline]
    pub fn slab(&self, b: usize) -> &[Complex64] {
        &self.data[b * self.n * self.n..(b + 1) * self.n * self.n]
    }

    /// Copy batch element `b` out as a [`Matrix`].
    pub fn element(&self, b: usize) -> Matrix {
        Matrix::from_fn(self.n, |i, j| self.slab(b)[i * self.n + j])
    }

    /// Overwrite batch element `b` from a [`Matrix`].
    pub fn set_element(&mut self, b: usize, m: &Matrix) {
        assert_eq!(m.dim(), self.n, "set_element dimension mismatch");
        let base = b * self.n * self.n;
        self.data[base..base + self.n * self.n].copy_from_slice(m.as_slice());
    }

    /// Batched GEMM: `C_b = A_b · B_b` for every batch element, parallel
    /// over the batch dimension.
    pub fn matmul(&self, rhs: &BatchedMatrix) -> Result<BatchedMatrix, TensorError> {
        if self.n != rhs.n || self.batch != rhs.batch {
            return Err(TensorError::ShapeMismatch {
                lhs: (self.batch, self.n),
                rhs: (rhs.batch, rhs.n),
            });
        }
        let n = self.n;
        let mut out = BatchedMatrix::zeros(self.batch, n);
        out.data
            .par_chunks_mut(n * n)
            .zip(self.data.par_chunks(n * n))
            .zip(rhs.data.par_chunks(n * n))
            .for_each(|((o, a), b)| matmul_into(a, b, o, n));
        Ok(out)
    }

    /// `Σ_b tr(A_b · B_b)` — the final scalar of a fully-contracted meson
    /// graph. Parallel reduction over the batch.
    pub fn trace_inner(&self, rhs: &BatchedMatrix) -> Result<Complex64, TensorError> {
        if self.n != rhs.n || self.batch != rhs.batch {
            return Err(TensorError::ShapeMismatch {
                lhs: (self.batch, self.n),
                rhs: (rhs.batch, rhs.n),
            });
        }
        let n = self.n;
        let total = self
            .data
            .par_chunks(n * n)
            .zip(rhs.data.par_chunks(n * n))
            .map(|(a, b)| {
                let mut acc = Complex64::ZERO;
                for i in 0..n {
                    for k in 0..n {
                        acc.mul_add_assign(a[i * n + k], b[k * n + i]);
                    }
                }
                acc
            })
            .fold(Complex64::ZERO, |x, y| x + y);
        Ok(total)
    }

    /// Frobenius norm over the whole batch.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .par_iter()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Element-wise maximum absolute difference (for tests).
    pub fn max_abs_diff(&self, rhs: &BatchedMatrix) -> f64 {
        assert_eq!((self.batch, self.n), (rhs.batch, rhs.n));
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }
}

/// A batch of dense `n × n × n` complex tensors in one contiguous allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedTensor3 {
    batch: usize,
    n: usize,
    data: Vec<Complex64>,
}

impl BatchedTensor3 {
    /// Zero-initialised batch.
    pub fn zeros(batch: usize, n: usize) -> Self {
        BatchedTensor3 {
            batch,
            n,
            data: vec![Complex64::ZERO; batch * n * n * n],
        }
    }

    /// Build from a generator over `(batch, i, j, k)`.
    pub fn from_fn(
        batch: usize,
        n: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> Complex64,
    ) -> Self {
        let mut data = Vec::with_capacity(batch * n * n * n);
        for b in 0..batch {
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        data.push(f(b, i, j, k));
                    }
                }
            }
        }
        BatchedTensor3 { batch, n, data }
    }

    /// Number of batch elements.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Mode length `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Copy batch element `b` out as a [`Tensor3`].
    pub fn element(&self, b: usize) -> Tensor3 {
        let n = self.n;
        let base = b * n * n * n;
        Tensor3::from_fn(n, |i, j, k| self.data[base + (i * n + j) * n + k])
    }

    /// Batched spectator contraction (see [`Tensor3::contract`]), parallel
    /// over the batch dimension.
    pub fn contract(&self, rhs: &BatchedTensor3) -> Result<BatchedTensor3, TensorError> {
        if self.n != rhs.n || self.batch != rhs.batch {
            return Err(TensorError::ShapeMismatch {
                lhs: (self.batch, self.n),
                rhs: (rhs.batch, rhs.n),
            });
        }
        let n = self.n;
        let vol = n * n * n;
        let mut out = BatchedTensor3::zeros(self.batch, n);
        out.data
            .par_chunks_mut(vol)
            .zip(self.data.par_chunks(vol))
            .zip(rhs.data.par_chunks(vol))
            .for_each(|((o, a), b)| contract_into(a, b, o, n));
        Ok(out)
    }

    /// Batched full scalar contraction (see [`Tensor3::inner`]) summed over
    /// the batch.
    pub fn inner(&self, rhs: &BatchedTensor3) -> Result<Complex64, TensorError> {
        if self.n != rhs.n || self.batch != rhs.batch {
            return Err(TensorError::ShapeMismatch {
                lhs: (self.batch, self.n),
                rhs: (rhs.batch, rhs.n),
            });
        }
        let n = self.n;
        let vol = n * n * n;
        let total = self
            .data
            .par_chunks(vol)
            .zip(rhs.data.par_chunks(vol))
            .map(|(a, b)| {
                let mut acc = Complex64::ZERO;
                for i in 0..n {
                    for j in 0..n {
                        for k in 0..n {
                            acc.mul_add_assign(a[(i * n + j) * n + k], b[(k * n + j) * n + i]);
                        }
                    }
                }
                acc
            })
            .fold(Complex64::ZERO, |x, y| x + y);
        Ok(total)
    }

    /// Frobenius norm over the whole batch.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .par_iter()
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Element-wise maximum absolute difference (for tests).
    pub fn max_abs_diff(&self, rhs: &BatchedTensor3) -> f64 {
        assert_eq!((self.batch, self.n), (rhs.batch, rhs.n));
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bm(batch: usize, n: usize, seed: f64) -> BatchedMatrix {
        BatchedMatrix::from_fn(batch, n, |b, i, j| {
            Complex64::new(
                seed + b as f64 * 0.9 + i as f64 * 0.31 - j as f64 * 0.17,
                b as f64 * 0.11 - i as f64 * 0.07 + j as f64 * 0.23 - seed,
            )
        })
    }

    fn sample_bt(batch: usize, n: usize, seed: f64) -> BatchedTensor3 {
        BatchedTensor3::from_fn(batch, n, |b, i, j, k| {
            Complex64::new(
                seed + b as f64 * 0.5 + i as f64 * 0.3 - j as f64 * 0.7 + k as f64 * 0.11,
                b as f64 * 0.2 + i as f64 * 0.05 + j as f64 * 0.2 - k as f64 * 0.01,
            )
        })
    }

    #[test]
    fn batched_matmul_matches_per_element() {
        let a = sample_bm(5, 6, 0.4);
        let b = sample_bm(5, 6, -1.1);
        let c = a.matmul(&b).unwrap();
        for bi in 0..5 {
            let expect = a.element(bi).matmul(&b.element(bi)).unwrap();
            assert!(c.element(bi).max_abs_diff(&expect) < 1e-12, "batch {bi}");
        }
    }

    #[test]
    fn batched_identity_neutral() {
        let a = sample_bm(3, 4, 2.0);
        let i = BatchedMatrix::identity(3, 4);
        let c = a.matmul(&i).unwrap();
        assert!(c.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn batched_trace_inner_matches_sum() {
        let a = sample_bm(4, 5, 0.9);
        let b = sample_bm(4, 5, -0.3);
        let fast = a.trace_inner(&b).unwrap();
        let mut slow = Complex64::ZERO;
        for bi in 0..4 {
            slow += a.element(bi).trace_inner(&b.element(bi)).unwrap();
        }
        assert!((fast - slow).abs() < 1e-10);
    }

    #[test]
    fn batched_shape_mismatch() {
        let a = BatchedMatrix::zeros(2, 3);
        let b = BatchedMatrix::zeros(2, 4);
        assert!(a.matmul(&b).is_err());
        let c = BatchedMatrix::zeros(3, 3);
        assert!(a.matmul(&c).is_err());
        assert!(a.trace_inner(&c).is_err());
    }

    #[test]
    fn batched_t3_contract_matches_per_element() {
        let a = sample_bt(3, 4, 0.8);
        let b = sample_bt(3, 4, -0.2);
        let c = a.contract(&b).unwrap();
        for bi in 0..3 {
            let expect = a.element(bi).contract(&b.element(bi)).unwrap();
            assert!(c.element(bi).max_abs_diff(&expect) < 1e-12, "batch {bi}");
        }
    }

    #[test]
    fn batched_t3_inner_matches_sum() {
        let a = sample_bt(4, 3, 1.4);
        let b = sample_bt(4, 3, 0.6);
        let fast = a.inner(&b).unwrap();
        let mut slow = Complex64::ZERO;
        for bi in 0..4 {
            slow += a.element(bi).inner(&b.element(bi)).unwrap();
        }
        assert!((fast - slow).abs() < 1e-10);
    }

    #[test]
    fn batched_t3_shape_mismatch() {
        let a = BatchedTensor3::zeros(2, 3);
        let b = BatchedTensor3::zeros(2, 4);
        assert!(a.contract(&b).is_err());
        assert!(a.inner(&b).is_err());
    }

    #[test]
    fn set_element_roundtrip() {
        let mut a = BatchedMatrix::zeros(2, 3);
        let m = Matrix::identity(3);
        a.set_element(1, &m);
        assert_eq!(a.element(1), m);
        assert_eq!(a.element(0), Matrix::zeros(3));
    }

    #[test]
    fn frobenius_norms() {
        let i = BatchedMatrix::identity(2, 4);
        // two identity matrices: 8 ones
        assert!((i.frobenius_norm() - 8.0_f64.sqrt()).abs() < 1e-12);
        let z = BatchedTensor3::zeros(3, 2);
        assert_eq!(z.frobenius_norm(), 0.0);
    }
}
