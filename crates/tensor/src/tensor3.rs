//! Dense rank-3 complex tensors (a single batch element of a baryon node).

use crate::complex::Complex64;
use crate::TensorError;

/// A dense `n × n × n` complex tensor stored row-major (`[i][j][k]`).
///
/// Baryon hadron nodes carry one of these per batch element; reducing an
/// edge between two baryon nodes contracts the last mode of the left tensor
/// with the first mode of the right tensor:
/// `C[i,j,l,m] -> C'[i,j,?]` — here we keep the result rank-3 by contracting
/// *two* modes (`C[i,a,b] B[b,a,j] -> pseudo-matrix`) as Redstar's colour
/// contraction does, then re-expanding with the spectator index. Concretely:
/// `out[i,j,k] = sum_a lhs[i,j,a] * rhs[a,j,k]` — mode-2 of `lhs` against
/// mode-0 of `rhs`, with mode-1 a shared spectator (the dilution index).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3 {
    n: usize,
    data: Vec<Complex64>,
}

impl Tensor3 {
    /// Zero tensor of mode length `n`.
    pub fn zeros(n: usize) -> Self {
        Tensor3 {
            n,
            data: vec![Complex64::ZERO; n * n * n],
        }
    }

    /// Build from a generator over `(i, j, k)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(n * n * n);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    data.push(f(i, j, k));
                }
            }
        }
        Tensor3 { n, data }
    }

    /// Mode length `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> Complex64 {
        self.data[(i * self.n + j) * self.n + k]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize, k: usize) -> &mut Complex64 {
        &mut self.data[(i * self.n + j) * self.n + k]
    }

    /// Raw storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Spectator-index contraction
    /// `out[i,j,k] = Σ_a self[i,j,a] · rhs[a,j,k]`.
    pub fn contract(&self, rhs: &Tensor3) -> Result<Tensor3, TensorError> {
        if self.n != rhs.n {
            return Err(TensorError::ShapeMismatch {
                lhs: (1, self.n),
                rhs: (1, rhs.n),
            });
        }
        let n = self.n;
        let mut out = Tensor3::zeros(n);
        contract_into(&self.data, &rhs.data, &mut out.data, n);
        Ok(out)
    }

    /// Full scalar contraction `Σ_{i,j,k} self[i,j,k] · rhs[k,j,i]`
    /// (final reduction when a graph is down to two baryon nodes).
    pub fn inner(&self, rhs: &Tensor3) -> Result<Complex64, TensorError> {
        if self.n != rhs.n {
            return Err(TensorError::ShapeMismatch {
                lhs: (1, self.n),
                rhs: (1, rhs.n),
            });
        }
        let n = self.n;
        let mut acc = Complex64::ZERO;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    acc.mul_add_assign(self.get(i, j, k), rhs.get(k, j, i));
                }
            }
        }
        Ok(acc)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Element-wise maximum absolute difference (for tests).
    pub fn max_abs_diff(&self, rhs: &Tensor3) -> f64 {
        assert_eq!(self.n, rhs.n, "max_abs_diff requires equal dims");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }
}

/// `out[i,j,k] += Σ_a lhs[i,j,a] · rhs[a,j,k]` for `n×n×n` row-major data.
/// Shared by [`Tensor3::contract`] and the batched kernels.
#[inline]
pub(crate) fn contract_into(lhs: &[Complex64], rhs: &[Complex64], out: &mut [Complex64], n: usize) {
    debug_assert_eq!(lhs.len(), n * n * n);
    debug_assert_eq!(rhs.len(), n * n * n);
    debug_assert_eq!(out.len(), n * n * n);
    for i in 0..n {
        for j in 0..n {
            let lrow = &lhs[(i * n + j) * n..(i * n + j + 1) * n];
            let orow = &mut out[(i * n + j) * n..(i * n + j + 1) * n];
            for (a, &l) in lrow.iter().enumerate() {
                let rrow = &rhs[(a * n + j) * n..(a * n + j + 1) * n];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    o.mul_add_assign(l, r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tensor that acts as identity under the spectator contraction:
    /// `delta[i,j,a] = 1 if i == a else 0` gives
    /// `out[i,j,k] = Σ_a delta[i,j,a] rhs[a,j,k] = rhs[i,j,k]`.
    fn left_identity(n: usize) -> Tensor3 {
        Tensor3::from_fn(n, |i, _j, a| {
            if i == a {
                Complex64::ONE
            } else {
                Complex64::ZERO
            }
        })
    }

    fn sample(n: usize, seed: f64) -> Tensor3 {
        Tensor3::from_fn(n, |i, j, k| {
            Complex64::new(
                seed + (i as f64) * 0.3 - (j as f64) * 0.7 + (k as f64) * 0.11,
                (i as f64) * 0.05 + (j as f64) * 0.2 - seed * (k as f64) * 0.01,
            )
        })
    }

    #[test]
    fn left_identity_preserves() {
        let t = sample(3, 1.5);
        let id = left_identity(3);
        let out = id.contract(&t).unwrap();
        assert!(out.max_abs_diff(&t) < 1e-12);
    }

    #[test]
    fn contract_reference_small() {
        // n = 2 hand-checked: out[0,0,0] = l[0,0,0] r[0,0,0] + l[0,0,1] r[1,0,0]
        let l = sample(2, 0.5);
        let r = sample(2, -1.0);
        let out = l.contract(&r).unwrap();
        let expect = l.get(0, 0, 0) * r.get(0, 0, 0) + l.get(0, 0, 1) * r.get(1, 0, 0);
        assert!((out.get(0, 0, 0) - expect).abs() < 1e-12);
        let expect2 = l.get(1, 1, 0) * r.get(0, 1, 1) + l.get(1, 1, 1) * r.get(1, 1, 1);
        assert!((out.get(1, 1, 1) - expect2).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Tensor3::zeros(2);
        let b = Tensor3::zeros(3);
        assert!(a.contract(&b).is_err());
        assert!(a.inner(&b).is_err());
    }

    #[test]
    fn inner_of_zero_is_zero() {
        let z = Tensor3::zeros(3);
        let t = sample(3, 2.0);
        assert_eq!(z.inner(&t).unwrap(), Complex64::ZERO);
    }

    #[test]
    fn contraction_is_linear_in_lhs() {
        let a = sample(3, 0.7);
        let b = sample(3, -0.4);
        let r = sample(3, 1.2);
        // (a + b) ∘ r == a∘r + b∘r
        let sum = Tensor3::from_fn(3, |i, j, k| a.get(i, j, k) + b.get(i, j, k));
        let lhs = sum.contract(&r).unwrap();
        let ar = a.contract(&r).unwrap();
        let br = b.contract(&r).unwrap();
        let rhs = Tensor3::from_fn(3, |i, j, k| ar.get(i, j, k) + br.get(i, j, k));
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn frobenius_norm_counts_all_entries() {
        let t = Tensor3::from_fn(2, |_, _, _| Complex64::ONE);
        // 8 entries of modulus 1 -> norm sqrt(8)
        assert!((t.frobenius_norm() - 8.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn get_mut_writes_through() {
        let mut t = Tensor3::zeros(2);
        *t.get_mut(1, 0, 1) = Complex64::I;
        assert_eq!(t.get(1, 0, 1), Complex64::I);
        assert_eq!(t.get(0, 0, 0), Complex64::ZERO);
    }
}
