//! Dense square complex matrices (a single batch element of a meson node).

use crate::complex::Complex64;
use crate::TensorError;

/// A dense, row-major `n × n` complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<Complex64>,
}

impl Matrix {
    /// Zero matrix of mode length `n`.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![Complex64::ZERO; n * n],
        }
    }

    /// Identity matrix of mode length `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m.data[i * n + i] = Complex64::ONE;
        }
        m
    }

    /// Build from a generator over `(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Matrix { n, data }
    }

    /// Mode length `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.data[i * self.n + j]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut Complex64 {
        &mut self.data[i * self.n + j]
    }

    /// Raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// The kernel iterates `i, k, j` so the inner loop streams contiguous
    /// rows of both `rhs` and the output (the classic cache-friendly
    /// ordering; see the Rust Performance Book on iteration order).
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, TensorError> {
        if self.n != rhs.n {
            return Err(TensorError::ShapeMismatch {
                lhs: (1, self.n),
                rhs: (1, rhs.n),
            });
        }
        let n = self.n;
        let mut out = Matrix::zeros(n);
        matmul_into(&self.data, &rhs.data, &mut out.data, n);
        Ok(out)
    }

    /// `tr(self · rhs)` without materialising the product.
    pub fn trace_inner(&self, rhs: &Matrix) -> Result<Complex64, TensorError> {
        if self.n != rhs.n {
            return Err(TensorError::ShapeMismatch {
                lhs: (1, self.n),
                rhs: (1, rhs.n),
            });
        }
        let n = self.n;
        let mut acc = Complex64::ZERO;
        for i in 0..n {
            for k in 0..n {
                acc.mul_add_assign(self.get(i, k), rhs.get(k, i));
            }
        }
        Ok(acc)
    }

    /// Trace `tr(self)`.
    pub fn trace(&self) -> Complex64 {
        (0..self.n).map(|i| self.get(i, i)).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Matrix {
        Matrix::from_fn(self.n, |i, j| self.get(j, i).conj())
    }

    /// Element-wise maximum absolute difference from `rhs` (for tests).
    pub fn max_abs_diff(&self, rhs: &Matrix) -> f64 {
        assert_eq!(self.n, rhs.n, "max_abs_diff requires equal dims");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }
}

/// Row-major `n×n` GEMM accumulating into `out` (which must be zeroed by the
/// caller when a fresh product is wanted). Shared by [`Matrix::matmul`] and
/// the batched kernels so they cannot drift apart.
///
/// Dispatches to a cache-blocked kernel for large matrices; both paths
/// produce **bitwise identical** results because every output element's
/// `k`-accumulation order is globally ascending either way.
#[inline]
pub(crate) fn matmul_into(a: &[Complex64], b: &[Complex64], out: &mut [Complex64], n: usize) {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n * n);
    debug_assert_eq!(out.len(), n * n);
    // A 256×256 complex matrix is 1 MiB — by 128 the B panel no longer
    // fits alongside A and out in L2, so blocking starts paying.
    if n >= 128 {
        gemm_blocked(a, b, out, n);
    } else {
        gemm_naive(a, b, out, n);
    }
}

/// The straightforward `i, k, j` kernel (inner loop streams rows of `b` and
/// `out`). Public for the `kernels` criterion bench; use [`Matrix::matmul`]
/// in real code.
#[doc(hidden)]
pub fn gemm_naive(a: &[Complex64], b: &[Complex64], out: &mut [Complex64], n: usize) {
    for i in 0..n {
        let arow = &a[i * n..(i + 1) * n];
        let orow = &mut out[i * n..(i + 1) * n];
        for (k, &aik) in arow.iter().enumerate() {
            let brow = &b[k * n..(k + 1) * n];
            for (o, &bkj) in orow.iter_mut().zip(brow) {
                o.mul_add_assign(aik, bkj);
            }
        }
    }
}

/// Cache-blocked variant: `k` is panelled so the active slab of `b`
/// (`KB × n` complex ≈ 64 KiB at n = 256) stays in L2 across all rows of
/// `a`. Per output element the `k` order is still globally ascending, so
/// results are bitwise identical to [`gemm_naive`] (floating-point addition
/// order is preserved).
#[doc(hidden)]
pub fn gemm_blocked(a: &[Complex64], b: &[Complex64], out: &mut [Complex64], n: usize) {
    const KB: usize = 16;
    let mut kk = 0;
    while kk < n {
        let kend = (kk + KB).min(n);
        for i in 0..n {
            let arow = &a[i * n + kk..i * n + kend];
            let orow = &mut out[i * n..(i + 1) * n];
            for (k, &aik) in (kk..kend).zip(arow) {
                let brow = &b[k * n..(k + 1) * n];
                for (o, &bkj) in orow.iter_mut().zip(brow) {
                    o.mul_add_assign(aik, bkj);
                }
            }
        }
        kk = kend;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[(f64, f64)]]) -> Matrix {
        let n = rows.len();
        Matrix::from_fn(n, |i, j| Complex64::new(rows[i][j].0, rows[i][j].1))
    }

    #[test]
    fn identity_is_neutral() {
        let a = mat(&[&[(1.0, 2.0), (0.0, -1.0)], &[(3.0, 0.5), (2.0, 2.0)]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn known_product() {
        // [[1, i], [0, 2]] * [[1, 0], [1, 1]] = [[1+i, i], [2, 2]]
        let a = mat(&[&[(1.0, 0.0), (0.0, 1.0)], &[(0.0, 0.0), (2.0, 0.0)]]);
        let b = mat(&[&[(1.0, 0.0), (0.0, 0.0)], &[(1.0, 0.0), (1.0, 0.0)]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.get(0, 0), Complex64::new(1.0, 1.0));
        assert_eq!(c.get(0, 1), Complex64::new(0.0, 1.0));
        assert_eq!(c.get(1, 0), Complex64::new(2.0, 0.0));
        assert_eq!(c.get(1, 1), Complex64::new(2.0, 0.0));
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Matrix::zeros(2);
        let b = Matrix::zeros(3);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
        assert!(a.trace_inner(&b).is_err());
    }

    #[test]
    fn trace_inner_matches_product_trace() {
        let a = mat(&[&[(1.0, 1.0), (2.0, 0.0)], &[(0.0, -1.0), (3.0, 0.0)]]);
        let b = mat(&[&[(0.5, 0.0), (1.0, 1.0)], &[(2.0, -2.0), (0.0, 1.0)]]);
        let direct = a.trace_inner(&b).unwrap();
        let via_product = a.matmul(&b).unwrap().trace();
        assert!((direct - via_product).abs() < 1e-12);
    }

    #[test]
    fn dagger_involution() {
        let a = mat(&[&[(1.0, 1.0), (2.0, -3.0)], &[(0.0, 4.0), (5.0, 0.0)]]);
        assert_eq!(a.dagger().dagger(), a);
        assert_eq!(a.dagger().get(0, 1), Complex64::new(0.0, -4.0));
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn associativity_numerically() {
        let a = mat(&[&[(1.0, 0.3), (0.2, 1.0)], &[(0.0, -0.7), (1.5, 0.0)]]);
        let b = mat(&[&[(0.9, 0.0), (1.1, -1.0)], &[(2.0, 0.4), (0.3, 1.0)]]);
        let c = mat(&[&[(0.1, 0.1), (0.0, 2.0)], &[(1.0, 0.0), (0.5, -0.5)]]);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        assert!(left.max_abs_diff(&right) < 1e-12);
    }

    #[test]
    fn max_abs_diff_zero_for_self() {
        let a = Matrix::identity(3);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn blocked_gemm_is_bitwise_identical_to_naive() {
        for n in [7usize, 16, 33, 128, 200] {
            let a = Matrix::from_fn(n, |i, j| {
                Complex64::new(
                    (i as f64 * 0.37 - j as f64 * 0.11).sin(),
                    (i as f64 + 2.0 * j as f64).cos() * 0.5,
                )
            });
            let b = Matrix::from_fn(n, |i, j| {
                Complex64::new(
                    (j as f64 * 0.29 + i as f64 * 0.07).cos(),
                    (3.0 * i as f64 - j as f64).sin() * 0.25,
                )
            });
            let mut naive = vec![Complex64::ZERO; n * n];
            let mut blocked = vec![Complex64::ZERO; n * n];
            gemm_naive(a.as_slice(), b.as_slice(), &mut naive, n);
            gemm_blocked(a.as_slice(), b.as_slice(), &mut blocked, n);
            assert_eq!(
                naive, blocked,
                "n = {n}: float addition order must be preserved"
            );
        }
    }
}
