#![warn(missing_docs)]

//! # micco-tensor
//!
//! Dense complex tensor kernels for many-body correlation functions.
//!
//! Hadron nodes in a correlation-function contraction graph carry *batched*
//! tensors: a meson node is a batch of complex `n × n` matrices (one per
//! dilution/spin combination), a baryon node is a batch of rank-3 tensors.
//! Reducing a graph edge multiplies/contracts the tensors of the two incident
//! nodes. This crate provides those kernels on the CPU (parallelised over the
//! batch dimension with rayon) together with the flop/byte accounting used by
//! the `micco-gpusim` cost model, so that the simulated GPU timing and the
//! actually-computed values share one source of truth.
//!
//! The kernels are *real* computations — integration tests use them to verify
//! that every scheduler produces numerically identical correlation values
//! (scheduling must never change results, only placement).

pub mod batched;
pub mod complex;
pub mod flops;
pub mod matrix;
pub mod tensor3;

pub use batched::{BatchedMatrix, BatchedTensor3};
pub use complex::Complex64;
pub use flops::{
    contraction_bytes, contraction_flops, tensor_bytes, ContractionKind, COMPLEX_BYTES,
};
pub use matrix::{gemm_blocked, gemm_naive, Matrix};
pub use tensor3::Tensor3;

/// A hadron-node payload: either a batch of matrices (meson systems) or a
/// batch of rank-3 tensors (baryon systems).
///
/// The paper (Sec. II-A) uses "tensor" for both; so do we.
#[derive(Debug, Clone, PartialEq)]
pub enum HadronTensor {
    /// Meson-system node: batched complex matrices.
    Mat(BatchedMatrix),
    /// Baryon-system node: batched rank-3 complex tensors.
    T3(BatchedTensor3),
}

impl HadronTensor {
    /// Batch count of the payload.
    pub fn batch(&self) -> usize {
        match self {
            HadronTensor::Mat(m) => m.batch(),
            HadronTensor::T3(t) => t.batch(),
        }
    }

    /// Mode length (`n` for `n×n` matrices or `n×n×n` tensors).
    pub fn dim(&self) -> usize {
        match self {
            HadronTensor::Mat(m) => m.dim(),
            HadronTensor::T3(t) => t.dim(),
        }
    }

    /// Device-memory footprint in bytes of this payload.
    pub fn bytes(&self) -> u64 {
        match self {
            HadronTensor::Mat(m) => flops::tensor_bytes(ContractionKind::Meson, m.batch(), m.dim()),
            HadronTensor::T3(t) => flops::tensor_bytes(ContractionKind::Baryon, t.batch(), t.dim()),
        }
    }

    /// Contract two hadron tensors (a graph-edge reduction).
    ///
    /// Meson nodes multiply batch-wise (`C_b = A_b · B_b`); baryon nodes
    /// contract their last/first modes. Mixed-kind contraction is a caller
    /// error and returns [`TensorError::KindMismatch`].
    pub fn contract(&self, rhs: &HadronTensor) -> Result<HadronTensor, TensorError> {
        match (self, rhs) {
            (HadronTensor::Mat(a), HadronTensor::Mat(b)) => Ok(HadronTensor::Mat(a.matmul(b)?)),
            (HadronTensor::T3(a), HadronTensor::T3(b)) => Ok(HadronTensor::T3(a.contract(b)?)),
            _ => Err(TensorError::KindMismatch),
        }
    }

    /// Frobenius-style scalar reduction used when a graph is fully contracted
    /// down to two nodes: `sum_b tr(A_b · B_b)` for mesons, and the full
    /// pairwise contraction for baryons.
    pub fn trace_inner(&self, rhs: &HadronTensor) -> Result<Complex64, TensorError> {
        match (self, rhs) {
            (HadronTensor::Mat(a), HadronTensor::Mat(b)) => a.trace_inner(b),
            (HadronTensor::T3(a), HadronTensor::T3(b)) => a.inner(b),
            _ => Err(TensorError::KindMismatch),
        }
    }
}

/// Errors from tensor kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorError {
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Left operand (batch, dim).
        lhs: (usize, usize),
        /// Right operand (batch, dim).
        rhs: (usize, usize),
    },
    /// Meson payload contracted with baryon payload (or vice versa).
    KindMismatch,
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs } => write!(
                f,
                "shape mismatch: lhs (batch {}, dim {}) vs rhs (batch {}, dim {})",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::KindMismatch => {
                write!(f, "cannot contract a meson payload with a baryon payload")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadron_tensor_contract_mesons() {
        let a = BatchedMatrix::identity(2, 3);
        let b = BatchedMatrix::identity(2, 3);
        let c = a.matmul(&b).unwrap();
        let h = HadronTensor::Mat(a)
            .contract(&HadronTensor::Mat(b))
            .unwrap();
        assert_eq!(h, HadronTensor::Mat(c));
    }

    #[test]
    fn hadron_tensor_kind_mismatch() {
        let a = HadronTensor::Mat(BatchedMatrix::identity(1, 2));
        let b = HadronTensor::T3(BatchedTensor3::zeros(1, 2));
        assert_eq!(a.contract(&b).unwrap_err(), TensorError::KindMismatch);
        assert_eq!(a.trace_inner(&b).unwrap_err(), TensorError::KindMismatch);
    }

    #[test]
    fn hadron_tensor_reports_dims() {
        let a = HadronTensor::Mat(BatchedMatrix::identity(4, 7));
        assert_eq!(a.batch(), 4);
        assert_eq!(a.dim(), 7);
        let t = HadronTensor::T3(BatchedTensor3::zeros(3, 5));
        assert_eq!(t.batch(), 3);
        assert_eq!(t.dim(), 5);
    }

    #[test]
    fn bytes_match_flops_module() {
        let a = HadronTensor::Mat(BatchedMatrix::identity(4, 8));
        assert_eq!(a.bytes(), 4 * 8 * 8 * 16);
        let t = HadronTensor::T3(BatchedTensor3::zeros(2, 4));
        assert_eq!(t.bytes(), 2 * 4 * 4 * 4 * 16);
    }

    #[test]
    fn error_display() {
        let e = TensorError::ShapeMismatch {
            lhs: (1, 2),
            rhs: (3, 4),
        };
        assert!(e.to_string().contains("shape mismatch"));
        assert!(TensorError::KindMismatch.to_string().contains("meson"));
    }
}
