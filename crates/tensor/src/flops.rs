//! Flop and byte accounting for hadron contractions.
//!
//! These formulas are the single source of truth shared by the CPU kernels
//! (what is actually computed) and the `micco-gpusim` cost model (how long
//! the simulated device takes). One complex multiply-add counts as 8 flops
//! (4 mul + 4 add), matching vendor GEMM accounting.

/// Size of one complex double (two f64).
pub const COMPLEX_BYTES: u64 = 16;

/// Flops per complex fused multiply-add.
pub const FLOPS_PER_CMADD: u64 = 8;

/// Whether a hadron node carries batched matrices (meson) or batched rank-3
/// tensors (baryon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContractionKind {
    /// Two-quark systems: batched `n × n` matrices.
    Meson,
    /// Three-quark systems: batched `n × n × n` tensors.
    Baryon,
}

impl ContractionKind {
    /// Number of complex elements in one batch element of mode length `n`.
    #[inline]
    pub fn elements(self, dim: usize) -> u64 {
        let n = dim as u64;
        match self {
            ContractionKind::Meson => n * n,
            ContractionKind::Baryon => n * n * n,
        }
    }
}

/// Device-memory footprint in bytes of a hadron tensor.
#[inline]
pub fn tensor_bytes(kind: ContractionKind, batch: usize, dim: usize) -> u64 {
    batch as u64 * kind.elements(dim) * COMPLEX_BYTES
}

/// Flops of one hadron contraction (one graph-edge reduction) between two
/// nodes of equal `batch` and `dim`.
///
/// * Meson: batched GEMM — `batch · n³` complex madds.
/// * Baryon: batched spectator contraction — `batch · n⁴` complex madds
///   (`n³` output elements, each an `n`-length dot product).
#[inline]
pub fn contraction_flops(kind: ContractionKind, batch: usize, dim: usize) -> u64 {
    let n = dim as u64;
    let madds = match kind {
        ContractionKind::Meson => n * n * n,
        ContractionKind::Baryon => n * n * n * n,
    };
    batch as u64 * madds * FLOPS_PER_CMADD
}

/// Bytes touched by one hadron contraction: both inputs read, output written.
#[inline]
pub fn contraction_bytes(kind: ContractionKind, batch: usize, dim: usize) -> u64 {
    3 * tensor_bytes(kind, batch, dim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meson_bytes() {
        // batch 4 of 384x384 complex doubles
        assert_eq!(
            tensor_bytes(ContractionKind::Meson, 4, 384),
            4 * 384 * 384 * 16
        );
    }

    #[test]
    fn baryon_bytes() {
        assert_eq!(tensor_bytes(ContractionKind::Baryon, 2, 10), 2 * 1000 * 16);
    }

    #[test]
    fn meson_flops() {
        assert_eq!(
            contraction_flops(ContractionKind::Meson, 1, 100),
            100u64.pow(3) * 8
        );
        assert_eq!(
            contraction_flops(ContractionKind::Meson, 7, 100),
            7 * 100u64.pow(3) * 8
        );
    }

    #[test]
    fn baryon_flops_scale_n4() {
        let f10 = contraction_flops(ContractionKind::Baryon, 1, 10);
        let f20 = contraction_flops(ContractionKind::Baryon, 1, 20);
        assert_eq!(f20 / f10, 16);
    }

    #[test]
    fn contraction_bytes_is_three_tensors() {
        for kind in [ContractionKind::Meson, ContractionKind::Baryon] {
            assert_eq!(
                contraction_bytes(kind, 3, 12),
                3 * tensor_bytes(kind, 3, 12)
            );
        }
    }

    #[test]
    fn no_overflow_at_paper_scale() {
        // tensor size 768, batch 512 — the largest evaluated configuration —
        // must stay far below u64::MAX.
        let f = contraction_flops(ContractionKind::Baryon, 512, 768);
        assert!(f < u64::MAX / 1024);
    }
}
