//! Minimal `Complex64` type.
//!
//! Lattice-QCD hadron tensors are complex-valued. We avoid an external
//! `num-complex` dependency: the handful of operations the contraction
//! kernels need fit in ~100 lines, and keeping the type local lets us
//! guarantee `#[repr(C)]` layout for cache-friendly batched kernels.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Complex zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// Complex one.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Construct a purely real value.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Fused multiply-accumulate: `self += a * b`.
    ///
    /// The inner loop of every contraction kernel; kept separate so the
    /// compiler reliably vectorises it.
    #[inline]
    pub fn mul_add_assign(&mut self, a: Complex64, b: Complex64) {
        self.re += a.re * b.re - a.im * b.im;
        self.im += a.re * b.im + a.im * b.re;
    }

    /// `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl std::fmt::Display for Complex64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(2.5, -1.5);
        let b = Complex64::new(0.5, 3.0);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), Complex64::from_re(25.0)));
    }

    #[test]
    fn mul_add_assign_matches_explicit() {
        let mut acc = Complex64::new(1.0, 1.0);
        let a = Complex64::new(2.0, -3.0);
        let b = Complex64::new(-1.0, 0.5);
        let expected = Complex64::new(1.0, 1.0) + a * b;
        acc.mul_add_assign(a, b);
        assert!(close(acc, expected));
    }

    #[test]
    fn assign_ops() {
        let mut a = Complex64::new(1.0, 2.0);
        a += Complex64::ONE;
        assert_eq!(a, Complex64::new(2.0, 2.0));
        a -= Complex64::I;
        assert_eq!(a, Complex64::new(2.0, 1.0));
        a *= Complex64::new(0.0, 1.0);
        assert_eq!(a, Complex64::new(-1.0, 2.0));
    }

    #[test]
    fn sum_and_from() {
        let v = [Complex64::ONE, Complex64::I, Complex64::new(1.0, 1.0)];
        let s: Complex64 = v.iter().copied().sum();
        assert_eq!(s, Complex64::new(2.0, 2.0));
        assert_eq!(Complex64::from(2.0), Complex64::new(2.0, 0.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn finiteness() {
        assert!(Complex64::ONE.is_finite());
        assert!(!Complex64::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex64::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn scalar_scaling() {
        assert_eq!(Complex64::new(1.0, -2.0) * 2.0, Complex64::new(2.0, -4.0));
    }
}
