//! The happens-before certifier: prove an executed trace is a
//! linearization of its plan.
//!
//! [`crate::analyze_plan`] checks a plan *before* execution; this module
//! closes the loop *after*: it derives a dependence DAG from the plan by
//! symbolic replay through the same [`ShadowMachine`] transition function
//! the schedulers decide against (producer→consumer edges for every
//! fetch, WAR edges from evictions, stage-barrier edges, and routed hop
//! ordering under a [`LinkTopology`]), ingests an executed `micco-obs`
//! event stream into a typed order, and checks that every observed event
//! respects the DAG. A buggy executor — or a racy steal path — cannot
//! produce a clean certificate.
//!
//! Violations surface as stable diagnostics through the ordinary
//! [`Report`] pipeline:
//!
//! * `MICCO-E006 trace-plan-divergence` — missing/duplicated/forged
//!   compute spans, a task on a device the plan (or a recorded steal)
//!   does not explain, transfers the replay never issued, planned
//!   transfers missing under strict mode, a consumer starting before its
//!   producer finished, overlapping kernels on one device, or broken hop
//!   ordering on a routed transfer;
//! * `MICCO-W205 unordered-conflicting-access` — a task's compute span
//!   starts before its own input-transfer span ends;
//! * `MICCO-W206 barrier-overlap` — spans from different stages overlap
//!   on one device, i.e. work leaked across a barrier;
//! * `MICCO-I302 steal-provenance` — informational chain of custody for
//!   every task that ran off its planned device via a recorded steal.
//!
//! Checks are *evidence-based*: they only fire on events present in the
//! trace, so the same certifier accepts simulator traces (timed spans,
//! D2D flow arrows, link lanes) and real-backend traces (wall-clock
//! spans, steal arrows, no transfer flows) without false positives.

use std::collections::{BTreeMap, HashMap};

use micco_core::SchedulePlan;
use micco_gpusim::{
    DeviceMemory, EvictionPolicy, ExecError, ExecObserver, GpuId, LinkTopology, MachineConfig,
    ShadowMachine,
};
use micco_obs::{TraceEvent, Track};
use micco_workload::{TensorId, TensorPairStream};

use crate::diag::{Code, Diagnostic, Report};
use crate::engine::PlacedStage;

/// How the certifier treats planned D2D transfers that never appear in
/// the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransferStrictness {
    /// Strict when the trace contains at least one D2D flow arrow (a
    /// simulator trace), lenient otherwise (the real backend records no
    /// transfer flows).
    #[default]
    Auto,
    /// Every planned transfer must appear — a missing one is `E006`.
    Strict,
    /// Missing transfers are never reported; observed ones are still
    /// checked against the replay.
    Lenient,
}

/// Tunables of the certification pass.
#[derive(Debug, Clone, Copy)]
pub struct CertifyConfig {
    /// Slop (µs) tolerated on every timestamp comparison. Simulator
    /// traces are exact; wall-clock traces need a hair of float slack.
    pub eps_us: f64,
    /// First device pid of the trace slice to certify (per-node cluster
    /// projections offset their device pids by `node × gpus_per_node`).
    pub pid_base: u32,
    /// Missing-transfer policy (see [`TransferStrictness`]).
    pub transfers: TransferStrictness,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        CertifyConfig {
            eps_us: 1e-3,
            pid_base: 0,
            transfers: TransferStrictness::Auto,
        }
    }
}

/// One task node of the dependence DAG.
#[derive(Debug, Clone, Copy)]
struct TaskNode {
    stage: usize,
    index: usize,
    gpu: usize,
    flops: u64,
    operands: [u64; 2],
}

/// One planned device-to-device transfer with its routed hop count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedTransfer {
    /// Task whose staging caused the transfer.
    pub task: u64,
    /// Source device.
    pub src: usize,
    /// Destination device.
    pub dst: usize,
    /// Tensor moved.
    pub tensor: u64,
    /// Hops on the routed path (`1` without a topology).
    pub hops: usize,
}

/// The dependence DAG derived from a plan by symbolic replay.
///
/// Produced by [`plan_dag`]; the linearization check
/// ([`certify_placements_with`]) validates a trace against it. The edge
/// counts are exposed so callers (and DESIGN.md examples) can report the
/// DAG's shape.
pub struct PlanDag {
    tasks: BTreeMap<u64, TaskNode>,
    transfers: Vec<PlannedTransfer>,
    /// tensor → producers as `(task, stage)`, in replay order.
    producers: HashMap<u64, Vec<(u64, usize)>>,
    num_stages: usize,
    num_gpus: usize,
    war_edges: usize,
}

impl PlanDag {
    /// Number of task nodes.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The planned transfers (producer→consumer data-movement edges).
    pub fn transfers(&self) -> &[PlannedTransfer] {
        &self.transfers
    }

    /// Number of WAR edges (each eviction during replay orders the
    /// evicted tensor's past readers before the evicting task).
    pub fn war_edges(&self) -> usize {
        self.war_edges
    }

    /// Number of stage-barrier edges (stages are totally ordered).
    pub fn barrier_edges(&self) -> usize {
        self.num_stages.saturating_sub(1)
    }

    /// Number of cross-stage producer→consumer edges.
    pub fn producer_edges(&self) -> usize {
        self.tasks
            .values()
            .map(|node| {
                node.operands
                    .iter()
                    .filter(|&&t| self.producer_before(t, node.stage).is_some())
                    .count()
            })
            .sum()
    }

    /// The most recent producer of `tensor` in a stage before `stage`.
    fn producer_before(&self, tensor: u64, stage: usize) -> Option<u64> {
        self.producers
            .get(&tensor)?
            .iter()
            .filter(|&&(_, s)| s < stage)
            .max_by_key(|&&(_, s)| s)
            .map(|&(t, _)| t)
    }
}

/// Replay observer recording the memory traffic the DAG needs.
#[derive(Default)]
struct DagCollector {
    d2d: Vec<(usize, usize, u64)>,
    evictions: usize,
}

impl ExecObserver for DagCollector {
    fn d2d(&mut self, src: GpuId, dst: GpuId, tensor: TensorId, _bytes: u64) {
        self.d2d.push((src.0, dst.0, tensor.0));
    }

    fn evict(&mut self, _gpu: GpuId, _tensor: TensorId, _writeback: bool, _bytes: u64) {
        self.evictions += 1;
    }
}

/// Derive the dependence DAG for `stages` by replaying them through a
/// fresh [`ShadowMachine`] built from `cfg` — the same transition
/// function the schedulers decided against, so the transfers recorded
/// here are exactly the ones a faithful execution must perform. With a
/// matching `topology`, each transfer also carries its routed hop count.
pub fn plan_dag(
    stages: &[PlacedStage],
    cfg: &MachineConfig,
    topology: Option<&LinkTopology>,
) -> PlanDag {
    let topo = topology.filter(|t| t.num_gpus() == cfg.num_gpus);
    let mut dag = PlanDag {
        tasks: BTreeMap::new(),
        transfers: Vec::new(),
        producers: HashMap::new(),
        num_stages: stages.len(),
        num_gpus: cfg.num_gpus,
        war_edges: 0,
    };

    let mut shadow = ShadowMachine::new(*cfg);
    if let Some(t) = topo {
        shadow.set_topology(Some(t.clone()));
    }
    if cfg.eviction == EvictionPolicy::Clairvoyant {
        let vectors = stages
            .iter()
            .map(|s| {
                micco_workload::Vector::new(s.placements.iter().map(|(t, _)| t.clone()).collect())
            })
            .collect();
        shadow.set_oracle(&TensorPairStream::new(vectors));
    }

    for (s, stage) in stages.iter().enumerate() {
        for (i, (task, gpu)) in stage.placements.iter().enumerate() {
            dag.tasks.insert(
                task.id.0,
                TaskNode {
                    stage: s,
                    index: i,
                    gpu: gpu.0,
                    flops: task.flops,
                    operands: [task.a.id.0, task.b.id.0],
                },
            );
            let mut collector = DagCollector::default();
            match shadow.execute_observed(task, *gpu, &mut collector) {
                Ok(()) => {}
                Err(ExecError::OutOfMemory { gpu: oom_gpu, .. }) => {
                    // Unexecutable placements are the static verifier's
                    // E001; the DAG keeps what was staged and moves on.
                    let mem: &mut DeviceMemory = shadow.memory_mut(oom_gpu);
                    for id in [task.a.id, task.b.id, task.out.id] {
                        mem.set_pinned(id, false);
                    }
                }
                Err(_) => {}
            }
            for (src, dst, tensor) in collector.d2d {
                let hops = topo.map_or(1, |t| t.route(src, dst).len());
                dag.transfers.push(PlannedTransfer {
                    task: task.id.0,
                    src,
                    dst,
                    tensor,
                    hops,
                });
            }
            dag.war_edges += collector.evictions;
            dag.producers
                .entry(task.out.id.0)
                .or_default()
                .push((task.id.0, s));
        }
        shadow.barrier();
    }
    dag
}

/// One timed span lifted out of the trace.
#[derive(Debug, Clone, Copy)]
struct TSpan {
    gpu: usize,
    start: f64,
    end: f64,
}

/// The trace projected onto the certifier's typed event order.
#[derive(Default)]
struct TraceView {
    /// task → compute spans observed for it.
    compute: BTreeMap<u64, Vec<TSpan>>,
    /// `(task, span)` for every input-transfer span annotated with its
    /// owning task.
    copies: Vec<(u64, TSpan)>,
    /// Observed D2D flows as `(flow id, src, dst, tensor)`.
    flows: Vec<(u64, usize, usize, u64)>,
    /// task → recorded steals as `(victim, thief)`, in record order.
    steals: BTreeMap<u64, Vec<(usize, usize)>>,
    /// flow id → link-lane hop spans annotated with that flow.
    link_hops: HashMap<u64, Vec<(f64, f64)>>,
}

fn arg<'a>(args: &'a [(String, String)], key: &str) -> Option<&'a str> {
    args.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn ingest(events: &[TraceEvent], ccfg: &CertifyConfig, num_gpus: usize) -> TraceView {
    let mut view = TraceView::default();
    let lo = ccfg.pid_base;
    let in_range = |pid: u32| pid >= lo && ((pid - lo) as usize) < num_gpus;
    for e in events {
        match e {
            TraceEvent::Span {
                pid,
                track,
                name,
                start_us,
                dur_us,
                args,
            } => {
                if *track == Track::Link {
                    // Hop spans belong to the node whose observer stamped
                    // the flow id (its pid base is the id's high half).
                    if let Some(id) = arg(args, "flow").and_then(|v| v.parse::<u64>().ok()) {
                        if (id >> 32) as u32 == lo {
                            view.link_hops
                                .entry(id)
                                .or_default()
                                .push((*start_us, *start_us + *dur_us));
                        }
                    }
                    continue;
                }
                if !in_range(*pid) {
                    continue;
                }
                let span = TSpan {
                    gpu: (*pid - lo) as usize,
                    start: *start_us,
                    end: *start_us + *dur_us,
                };
                match track {
                    Track::Compute => {
                        if let Some(task) = name.strip_prefix("task ").and_then(|t| t.parse().ok())
                        {
                            view.compute.entry(task).or_default().push(span);
                        }
                    }
                    Track::Copy => {
                        if let Some(task) = arg(args, "task").and_then(|v| v.parse().ok()) {
                            view.copies.push((task, span));
                        }
                    }
                    _ => {}
                }
            }
            TraceEvent::Flow { id, name, from, to } => {
                if !in_range(from.pid) || !in_range(to.pid) {
                    continue;
                }
                let (src, dst) = ((from.pid - lo) as usize, (to.pid - lo) as usize);
                if let Some(tensor) = name.strip_prefix("d2d t").and_then(|t| t.parse().ok()) {
                    view.flows.push((*id, src, dst, tensor));
                } else if let Some(task) = name
                    .strip_prefix("steal task ")
                    .and_then(|t| t.parse().ok())
                {
                    view.steals.entry(task).or_default().push((src, dst));
                }
            }
            TraceEvent::Instant { .. } | TraceEvent::ProcessLabel { .. } => {}
        }
    }
    view
}

fn divergence(msg: String) -> Diagnostic {
    Diagnostic::new(Code::TracePlanDivergence, msg)
}

/// Certify `events` against the dependence DAG of raw placements — the
/// core linearization check, shared by the plan-level entry point and
/// the cluster layer's per-node projections.
pub fn certify_placements_with(
    stages: &[PlacedStage],
    cfg: &MachineConfig,
    ccfg: &CertifyConfig,
    topology: Option<&LinkTopology>,
    events: &[TraceEvent],
) -> Report {
    let mut report = Report::new();
    let dag = plan_dag(stages, cfg, topology);
    let view = ingest(events, ccfg, dag.num_gpus);
    let eps = ccfg.eps_us;

    // I302: chain of custody for every recorded steal.
    for (&task, chain) in &view.steals {
        let planned = dag.tasks.get(&task).map(|n| n.gpu);
        for &(victim, thief) in chain {
            let mut d = Diagnostic::new(
                Code::StealProvenance,
                format!("task {task} stolen from device {victim} and run by device {thief}"),
            )
            .for_task(micco_workload::TaskId(task))
            .on_gpu(GpuId(thief))
            .with("victim", victim)
            .with("thief", thief);
            if let Some(node) = dag.tasks.get(&task) {
                d = d.at(node.stage, node.index).with("planned", node.gpu);
            }
            report.push(d);
        }
        // The chain must start where the plan put the task.
        if let (Some(planned), Some(&(first_victim, _))) = (planned, chain.first()) {
            if first_victim != planned {
                report.push(
                    divergence(format!(
                        "task {task} recorded as stolen from device {first_victim} but the plan placed it on device {planned}"
                    ))
                    .for_task(micco_workload::TaskId(task))
                    .with("victim", first_victim)
                    .with("planned", planned),
                );
            }
        }
    }

    // Per-task compute-span conformance.
    for (&task, node) in &dag.tasks {
        let spans = view.compute.get(&task).map(Vec::as_slice).unwrap_or(&[]);
        if spans.is_empty() {
            if node.flops > 0 {
                report.push(
                    divergence(format!(
                        "task {task} (stage {}, device {}) has no compute span in the trace",
                        node.stage, node.gpu
                    ))
                    .at(node.stage, node.index)
                    .for_task(micco_workload::TaskId(task))
                    .on_gpu(GpuId(node.gpu)),
                );
            }
            continue;
        }
        if spans.len() > 1 {
            report.push(
                divergence(format!(
                    "task {task} has {} compute spans in the trace (expected one)",
                    spans.len()
                ))
                .at(node.stage, node.index)
                .for_task(micco_workload::TaskId(task))
                .with("spans", spans.len()),
            );
        }
        let expected = view
            .steals
            .get(&task)
            .and_then(|chain| chain.last())
            .map_or(node.gpu, |&(_, thief)| thief);
        for s in spans {
            if s.gpu != expected {
                report.push(
                    divergence(format!(
                        "task {task} ran on device {} but the plan{} places it on device {expected}",
                        s.gpu,
                        if expected == node.gpu {
                            ""
                        } else {
                            " (after its recorded steal)"
                        }
                    ))
                    .at(node.stage, node.index)
                    .for_task(micco_workload::TaskId(task))
                    .on_gpu(GpuId(s.gpu))
                    .with("expected", expected)
                    .with("observed", s.gpu),
                );
            }
        }
    }

    // Forged compute spans: tasks the plan never scheduled.
    for (&task, spans) in &view.compute {
        if !dag.tasks.contains_key(&task) {
            report.push(
                divergence(format!(
                    "trace contains a compute span for task {task}, which the plan never schedules"
                ))
                .for_task(micco_workload::TaskId(task))
                .on_gpu(GpuId(spans[0].gpu)),
            );
        }
    }

    // Producer→consumer edges (cross-stage; intra-stage device clocks are
    // not causally comparable in the simulator's timing model).
    for (&task, node) in &dag.tasks {
        let Some(consumer) = view.compute.get(&task) else {
            continue;
        };
        let c_start = consumer.iter().fold(f64::INFINITY, |m, s| m.min(s.start));
        for &operand in &node.operands {
            let Some(producer) = dag.producer_before(operand, node.stage) else {
                continue;
            };
            let Some(p_spans) = view.compute.get(&producer) else {
                continue;
            };
            let p_end = p_spans.iter().fold(f64::NEG_INFINITY, |m, s| m.max(s.end));
            if c_start < p_end - eps {
                report.push(
                    divergence(format!(
                        "task {task} starts at {c_start:.3} µs, before task {producer} (producer of its operand tensor {operand}) finishes at {p_end:.3} µs"
                    ))
                    .at(node.stage, node.index)
                    .for_task(micco_workload::TaskId(task))
                    .with("producer", producer)
                    .with("tensor", operand)
                    .with("consumer_start_us", format!("{c_start}"))
                    .with("producer_end_us", format!("{p_end}")),
                );
            }
        }
    }

    // Device serialism (the trace-level face of the WAR edges): a device
    // runs one kernel at a time, so its compute spans must not overlap.
    let mut per_gpu: BTreeMap<usize, Vec<(f64, f64, u64)>> = BTreeMap::new();
    for (&task, spans) in &view.compute {
        if !dag.tasks.contains_key(&task) {
            continue;
        }
        for s in spans {
            per_gpu
                .entry(s.gpu)
                .or_default()
                .push((s.start, s.end, task));
        }
    }
    for (gpu, spans) in &mut per_gpu {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        for w in spans.windows(2) {
            let (prev, next) = (w[0], w[1]);
            if next.0 < prev.1 - eps {
                report.push(
                    divergence(format!(
                        "tasks {} and {} overlap on device {gpu} ([{:.3}, {:.3}] vs [{:.3}, {:.3}] µs) — a device runs one kernel at a time",
                        prev.2, next.2, prev.0, prev.1, next.0, next.1
                    ))
                    .for_task(micco_workload::TaskId(next.2))
                    .on_gpu(GpuId(*gpu))
                    .with("other", prev.2),
                );
            }
        }
    }

    // Transfer conformance: observed flows must be explained by the
    // replay; under strict mode, the replay's transfers must all appear.
    let strict = match ccfg.transfers {
        TransferStrictness::Strict => true,
        TransferStrictness::Lenient => false,
        TransferStrictness::Auto => !view.flows.is_empty(),
    };
    let mut planned: HashMap<(usize, usize, u64), usize> = HashMap::new();
    for t in &dag.transfers {
        *planned.entry((t.src, t.dst, t.tensor)).or_default() += 1;
    }
    for &(_, src, dst, tensor) in &view.flows {
        match planned.get_mut(&(src, dst, tensor)) {
            Some(n) if *n > 0 => *n -= 1,
            _ => report.push(
                divergence(format!(
                    "trace records a d2d transfer of tensor {tensor} from device {src} to device {dst} that the plan replay never issues"
                ))
                .on_gpu(GpuId(dst))
                .with("tensor", tensor)
                .with("src", src)
                .with("dst", dst),
            ),
        }
    }
    if strict {
        let mut missing: Vec<_> = planned.iter().filter(|(_, &n)| n > 0).collect();
        missing.sort();
        for (&(src, dst, tensor), &n) in missing {
            report.push(
                divergence(format!(
                    "plan replay issues {n} d2d transfer(s) of tensor {tensor} from device {src} to device {dst} that the trace does not record"
                ))
                .on_gpu(GpuId(dst))
                .with("tensor", tensor)
                .with("src", src)
                .with("dst", dst)
                .with("missing", n),
            );
        }
    }

    // Routed hop ordering: hop spans carrying a flow id must be
    // sequential and match the route length of their transfer.
    if let Some(topo) = topology.filter(|t| t.num_gpus() == dag.num_gpus) {
        for &(id, src, dst, _tensor) in &view.flows {
            let Some(hops) = view.link_hops.get(&id) else {
                continue;
            };
            let route_len = topo.route(src, dst).len();
            if hops.len() != route_len {
                report.push(
                    divergence(format!(
                        "transfer flow {id} from device {src} to device {dst} shows {} hop span(s) but the topology routes it over {route_len} link(s)",
                        hops.len()
                    ))
                    .on_gpu(GpuId(dst))
                    .with("flow", id)
                    .with("hops", hops.len())
                    .with("route", route_len),
                );
            }
            let mut sorted = hops.clone();
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in sorted.windows(2) {
                if w[1].0 < w[0].1 - eps {
                    report.push(
                        divergence(format!(
                            "transfer flow {id} hops overlap ([{:.3}, {:.3}] vs [{:.3}, {:.3}] µs) — a routed transfer occupies its links in path order",
                            w[0].0, w[0].1, w[1].0, w[1].1
                        ))
                        .on_gpu(GpuId(dst))
                        .with("flow", id),
                    );
                }
            }
        }
    }

    // W205: a task's compute must not start before its own input
    // transfer completes.
    for (task, copy) in &view.copies {
        let Some(node) = dag.tasks.get(task) else {
            continue;
        };
        let Some(spans) = view.compute.get(task) else {
            continue;
        };
        let c_start = spans.iter().fold(f64::INFINITY, |m, s| m.min(s.start));
        if c_start < copy.end - eps {
            report.push(
                Diagnostic::new(
                    Code::UnorderedConflictingAccess,
                    format!(
                        "task {task} compute starts at {c_start:.3} µs, before its input transfer ends at {:.3} µs",
                        copy.end
                    ),
                )
                .at(node.stage, node.index)
                .for_task(micco_workload::TaskId(*task))
                .on_gpu(GpuId(copy.gpu))
                .with("compute_start_us", format!("{c_start}"))
                .with("copy_end_us", format!("{}", copy.end)),
            );
        }
    }

    // W206: spans from different stages must not overlap on one device —
    // the barrier between stages is a happens-before edge.
    let mut stage_windows: BTreeMap<usize, BTreeMap<usize, (f64, f64)>> = BTreeMap::new();
    let mut widen = |gpu: usize, stage: usize, start: f64, end: f64| {
        let w = stage_windows
            .entry(gpu)
            .or_default()
            .entry(stage)
            .or_insert((f64::INFINITY, f64::NEG_INFINITY));
        w.0 = w.0.min(start);
        w.1 = w.1.max(end);
    };
    for (&task, spans) in &view.compute {
        if let Some(node) = dag.tasks.get(&task) {
            for s in spans {
                widen(s.gpu, node.stage, s.start, s.end);
            }
        }
    }
    for (task, copy) in &view.copies {
        if let Some(node) = dag.tasks.get(task) {
            widen(copy.gpu, node.stage, copy.start, copy.end);
        }
    }
    for (gpu, windows) in &stage_windows {
        let stages_present: Vec<_> = windows.iter().collect();
        for i in 0..stages_present.len() {
            for j in (i + 1)..stages_present.len() {
                let (&s1, &(_, end1)) = stages_present[i];
                let (&s2, &(start2, _)) = stages_present[j];
                if start2 < end1 - eps {
                    report.push(
                        Diagnostic::new(
                            Code::BarrierOverlap,
                            format!(
                                "device {gpu}: stage {s2} work starts at {start2:.3} µs, before stage {s1} work ends at {end1:.3} µs"
                            ),
                        )
                        .at_stage(s2)
                        .on_gpu(GpuId(*gpu))
                        .with("earlier_stage", s1)
                        .with("earlier_end_us", format!("{end1}"))
                        .with("later_start_us", format!("{start2}")),
                    );
                }
            }
        }
    }

    report
}

/// Certify an executed trace against a [`SchedulePlan`] with default
/// [`CertifyConfig`] and no topology.
pub fn certify_trace(
    plan: &SchedulePlan,
    stream: &TensorPairStream,
    cfg: &MachineConfig,
    events: &[TraceEvent],
) -> Report {
    certify_trace_with(plan, stream, cfg, &CertifyConfig::default(), None, events)
}

/// [`certify_trace`] with explicit tunables and an optional topology.
///
/// Runs the same structural gates as [`crate::analyze_plan`] first
/// (fingerprint, stage/assignment alignment) — a trace cannot be
/// certified against a plan that does not describe the stream — then
/// derives the DAG and checks the linearization. Like the static
/// verifier, the semantic pass uses the plan's device geometry when it
/// disagrees with the machine's.
pub fn certify_trace_with(
    plan: &SchedulePlan,
    stream: &TensorPairStream,
    cfg: &MachineConfig,
    ccfg: &CertifyConfig,
    topology: Option<&LinkTopology>,
    events: &[TraceEvent],
) -> Report {
    let mut report = Report::new();
    let fp = stream.fingerprint();
    if plan.fingerprint != fp {
        report.push(
            Diagnostic::new(
                Code::FingerprintMismatch,
                format!(
                    "plan fingerprint {:#x} does not match stream fingerprint {fp:#x}",
                    plan.fingerprint
                ),
            )
            .at_line(4)
            .with("plan", plan.fingerprint)
            .with("stream", fp),
        );
        return report;
    }
    if plan.stages.len() != stream.vectors.len() {
        report.push(Diagnostic::new(
            Code::PlanStructureMismatch,
            format!(
                "plan has {} stages, stream has {} vectors",
                plan.stages.len(),
                stream.vectors.len()
            ),
        ));
        return report;
    }
    for (s, (stage, vector)) in plan.stages.iter().zip(&stream.vectors).enumerate() {
        if stage.assignments.len() != vector.tasks.len() {
            report.push(
                Diagnostic::new(
                    Code::PlanStructureMismatch,
                    format!(
                        "stage {s}: plan assigns {} tasks, vector has {}",
                        stage.assignments.len(),
                        vector.tasks.len()
                    ),
                )
                .at_stage(s),
            );
            return report;
        }
        for (i, (a, t)) in stage.assignments.iter().zip(&vector.tasks).enumerate() {
            if a.task != t.id {
                report.push(
                    Diagnostic::new(
                        Code::PlanStructureMismatch,
                        format!(
                            "stage {s} position {i}: plan assigns task {}, stream has task {}",
                            a.task.0, t.id.0
                        ),
                    )
                    .at(s, i),
                );
                return report;
            }
        }
    }

    let mut machine_cfg = *cfg;
    machine_cfg.num_gpus = plan.num_gpus;
    let stages: Vec<PlacedStage> = plan
        .stages
        .iter()
        .zip(&stream.vectors)
        .map(|(st, v)| PlacedStage {
            bounds: st.bounds,
            placements: v
                .tasks
                .iter()
                .cloned()
                .zip(st.assignments.iter().map(|a| a.gpu))
                .collect(),
        })
        .collect();
    report.extend(certify_placements_with(
        &stages,
        &machine_cfg,
        ccfg,
        topology,
        events,
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use micco_core::{plan_schedule, MiccoScheduler, RoundRobinScheduler};
    use micco_gpusim::SimMachine;
    use micco_obs::{Recorder, SpanObserver};
    use micco_workload::WorkloadSpec;
    use std::sync::Arc;

    fn stream(seed: u64) -> TensorPairStream {
        WorkloadSpec::new(12, 64)
            .with_repeat_rate(0.6)
            .with_vectors(3)
            .with_seed(seed)
            .generate()
    }

    /// Execute a plan on the simulator with telemetry attached, exactly
    /// as a `Session` run would.
    fn run_sim(
        plan: &SchedulePlan,
        stream: &TensorPairStream,
        cfg: &MachineConfig,
        topology: Option<&LinkTopology>,
    ) -> Vec<TraceEvent> {
        let recorder = Recorder::shared();
        let obs = SpanObserver::new(recorder.clone() as Arc<_>);
        let mut machine = SimMachine::new(*cfg).with_observer(Box::new(obs));
        if let Some(t) = topology {
            machine.set_topology(Some(t.clone()));
        }
        for (stage, vector) in plan.stages.iter().zip(&stream.vectors) {
            for (a, t) in stage.assignments.iter().zip(&vector.tasks) {
                machine.execute(t, a.gpu).expect("placement executes");
            }
            machine.barrier();
        }
        recorder.events()
    }

    #[test]
    fn clean_sim_run_certifies_clean() {
        let stream = stream(7);
        let cfg = MachineConfig::mi100_like(3);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let events = run_sim(&plan, &stream, &cfg, None);
        let ccfg = CertifyConfig {
            transfers: TransferStrictness::Strict,
            ..CertifyConfig::default()
        };
        let r = certify_trace_with(&plan, &stream, &cfg, &ccfg, None, &events);
        assert!(
            r.errors() == 0 && r.warnings() == 0,
            "clean run flagged:\n{}",
            r.render_text()
        );
    }

    #[test]
    fn topology_run_certifies_hops_clean() {
        let stream = stream(7);
        let cfg = MachineConfig::mi100_like(4);
        let topo = LinkTopology::nvlink(4, 2);
        let plan = plan_schedule(
            &mut MiccoScheduler::new(micco_core::ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
        )
        .unwrap();
        let events = run_sim(&plan, &stream, &cfg, Some(&topo));
        let ccfg = CertifyConfig {
            transfers: TransferStrictness::Strict,
            ..CertifyConfig::default()
        };
        let r = certify_trace_with(&plan, &stream, &cfg, &ccfg, Some(&topo), &events);
        assert!(
            r.errors() == 0 && r.warnings() == 0,
            "topology run flagged:\n{}",
            r.render_text()
        );
        // the trace really exercised the hop check
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Span {
                track: Track::Link,
                ..
            }
        )));
    }

    #[test]
    fn dag_shape_is_reported() {
        let stream = stream(3);
        let cfg = MachineConfig::mi100_like(2);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let stages: Vec<PlacedStage> = plan
            .stages
            .iter()
            .zip(&stream.vectors)
            .map(|(st, v)| PlacedStage {
                bounds: st.bounds,
                placements: v
                    .tasks
                    .iter()
                    .cloned()
                    .zip(st.assignments.iter().map(|a| a.gpu))
                    .collect(),
            })
            .collect();
        let dag = plan_dag(&stages, &cfg, None);
        assert_eq!(
            dag.num_tasks(),
            stream.vectors.iter().map(|v| v.tasks.len()).sum()
        );
        assert_eq!(dag.barrier_edges(), stream.vectors.len() - 1);
    }

    #[test]
    fn dropped_compute_span_is_e006() {
        let stream = stream(7);
        let cfg = MachineConfig::mi100_like(3);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let mut events = run_sim(&plan, &stream, &cfg, None);
        let idx = events
            .iter()
            .position(|e| matches!(e, TraceEvent::Span { track: Track::Compute, name, .. } if name.starts_with("task ")))
            .expect("has compute spans");
        events.remove(idx);
        let r = certify_trace(&plan, &stream, &cfg, &events);
        assert!(r.has(Code::TracePlanDivergence), "{}", r.render_text());
    }

    #[test]
    fn forged_compute_span_is_e006() {
        let stream = stream(7);
        let cfg = MachineConfig::mi100_like(3);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let mut events = run_sim(&plan, &stream, &cfg, None);
        events.push(TraceEvent::Span {
            pid: 0,
            track: Track::Compute,
            name: "task 99999".into(),
            start_us: 1e9,
            dur_us: 5.0,
            args: Vec::new(),
        });
        let r = certify_trace(&plan, &stream, &cfg, &events);
        let hits = r.with_code(Code::TracePlanDivergence);
        assert!(
            hits.iter().any(|d| d.message.contains("never schedules")),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn reordered_compute_span_is_flagged() {
        let stream = stream(7);
        let cfg = MachineConfig::mi100_like(3);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let mut events = run_sim(&plan, &stream, &cfg, None);
        // Drag a late compute span back to time zero: it now overlaps
        // earlier work on its device and leaks across stage barriers.
        let last = events
            .iter()
            .rposition(|e| matches!(e, TraceEvent::Span { track: Track::Compute, name, .. } if name.starts_with("task ")))
            .expect("has compute spans");
        if let TraceEvent::Span { start_us, .. } = &mut events[last] {
            *start_us = 0.0;
        }
        let r = certify_trace(&plan, &stream, &cfg, &events);
        assert!(
            r.has(Code::TracePlanDivergence) || r.has(Code::BarrierOverlap),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn early_compute_before_copy_is_w205() {
        let stream = stream(7);
        let cfg = MachineConfig::mi100_like(3);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let mut events = run_sim(&plan, &stream, &cfg, None);
        // Find an annotated copy span and pull its task's compute start
        // into the middle of the transfer.
        let mut target = None;
        for e in &events {
            if let TraceEvent::Span {
                track: Track::Copy,
                args,
                start_us,
                dur_us,
                ..
            } = e
            {
                if *dur_us > 0.0 {
                    if let Some(t) = arg(args, "task").and_then(|v| v.parse::<u64>().ok()) {
                        target = Some((t, *start_us + *dur_us / 2.0));
                        break;
                    }
                }
            }
        }
        let (task, mid) = target.expect("annotated copy span exists");
        for e in &mut events {
            if let TraceEvent::Span {
                track: Track::Compute,
                name,
                start_us,
                ..
            } = e
            {
                if *name == format!("task {task}") {
                    *start_us = mid - 1e-6;
                }
            }
        }
        let r = certify_trace(&plan, &stream, &cfg, &events);
        assert!(
            r.has(Code::UnorderedConflictingAccess),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn forged_transfer_and_missing_transfer_are_e006() {
        let stream = stream(7);
        let cfg = MachineConfig::mi100_like(3);
        let plan = plan_schedule(
            &mut MiccoScheduler::new(micco_core::ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
        )
        .unwrap();
        let events = run_sim(&plan, &stream, &cfg, None);
        let flow_at = events
            .iter()
            .position(|e| matches!(e, TraceEvent::Flow { name, .. } if name.starts_with("d2d ")))
            .expect("reuse-heavy plan produces d2d flows");

        let mut dropped = events.clone();
        dropped.remove(flow_at);
        let r = certify_trace(&plan, &stream, &cfg, &dropped);
        assert!(
            r.with_code(Code::TracePlanDivergence)
                .iter()
                .any(|d| d.message.contains("does not record")),
            "{}",
            r.render_text()
        );

        let mut forged = events.clone();
        forged.push(TraceEvent::Flow {
            id: 0xdead_beef,
            name: "d2d t424242".into(),
            from: micco_obs::FlowPoint {
                pid: 0,
                track: Track::Copy,
                ts_us: 1.0,
            },
            to: micco_obs::FlowPoint {
                pid: 1,
                track: Track::Copy,
                ts_us: 1.0,
            },
        });
        let r = certify_trace(&plan, &stream, &cfg, &forged);
        assert!(
            r.with_code(Code::TracePlanDivergence)
                .iter()
                .any(|d| d.message.contains("never issues")),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn steal_flow_yields_provenance_and_explains_device() {
        let stream = stream(7);
        let cfg = MachineConfig::mi100_like(2);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let mut events = run_sim(&plan, &stream, &cfg, None);
        // Move one task's compute span to the other device, with and
        // without a steal flow explaining the move.
        let (task, victim) = {
            let first = events
                .iter()
                .find_map(|e| match e {
                    TraceEvent::Span {
                        track: Track::Compute,
                        name,
                        pid,
                        ..
                    } => name
                        .strip_prefix("task ")
                        .and_then(|t| t.parse::<u64>().ok())
                        .map(|t| (t, *pid)),
                    _ => None,
                })
                .expect("has compute spans");
            first
        };
        let thief = 1 - victim;
        for e in &mut events {
            if let TraceEvent::Span {
                track: Track::Compute,
                name,
                pid,
                ..
            } = e
            {
                if *name == format!("task {task}") {
                    *pid = thief;
                }
            }
        }
        // Unexplained: E006.
        let r = certify_trace(&plan, &stream, &cfg, &events);
        assert!(r.has(Code::TracePlanDivergence), "{}", r.render_text());
        // Explained by a steal flow: I302, no divergence for this task.
        events.push(TraceEvent::Flow {
            id: 12345,
            name: format!("steal task {task}"),
            from: micco_obs::FlowPoint {
                pid: victim,
                track: Track::Compute,
                ts_us: 0.0,
            },
            to: micco_obs::FlowPoint {
                pid: thief,
                track: Track::Compute,
                ts_us: 0.0,
            },
        });
        let r = certify_trace(&plan, &stream, &cfg, &events);
        assert!(r.has(Code::StealProvenance), "{}", r.render_text());
        assert!(
            !r.with_code(Code::TracePlanDivergence)
                .iter()
                .any(|d| d.task == Some(micco_workload::TaskId(task))
                    && d.message.contains("ran on device")),
            "{}",
            r.render_text()
        );
    }

    #[test]
    fn fingerprint_gate_blocks_certification() {
        let stream = stream(7);
        let cfg = MachineConfig::mi100_like(2);
        let mut plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        plan.fingerprint ^= 1;
        let r = certify_trace(&plan, &stream, &cfg, &[]);
        assert!(r.has(Code::FingerprintMismatch));
        assert!(!r.has(Code::TracePlanDivergence));
    }

    #[test]
    fn empty_trace_on_lenient_config_reports_missing_compute_only() {
        let stream = stream(7);
        let cfg = MachineConfig::mi100_like(2);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        let r = certify_trace(&plan, &stream, &cfg, &[]);
        let total: usize = stream.vectors.iter().map(|v| v.tasks.len()).sum();
        assert_eq!(r.with_code(Code::TracePlanDivergence).len(), total);
    }
}
