//! Machine-readable encodings of a [`Report`]: plain JSON and SARIF 2.1.0.
//!
//! Both encoders are hand-rolled (the build environment is offline, so no
//! serde); the formats are small and fixed. The SARIF output targets the
//! subset GitHub code scanning and editors consume: one run, a `rules`
//! array mirroring the stable code registry, and one `result` per
//! diagnostic with `ruleId`, `level`, `message`, an optional physical
//! location (plan-text line), and the machine payload under `properties`.

use crate::diag::{Code, Diagnostic, Report};

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn payload_object(d: &Diagnostic) -> String {
    let fields: Vec<String> = d
        .payload
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", esc(k), esc(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

impl Report {
    /// Encode as a standalone JSON document:
    /// `{"tool":…,"summary":{…},"diagnostics":[…]}`.
    pub fn to_json(&self) -> String {
        let mut diags = Vec::with_capacity(self.diagnostics.len());
        for d in &self.diagnostics {
            let mut fields = vec![
                format!("\"code\":\"{}\"", d.code.id()),
                format!("\"name\":\"{}\"", d.code.slug()),
                format!("\"severity\":\"{}\"", d.severity().as_str()),
            ];
            if let Some(s) = d.stage {
                fields.push(format!("\"stage\":{s}"));
            }
            if let Some(i) = d.index {
                fields.push(format!("\"index\":{i}"));
            }
            if let Some(t) = d.task {
                fields.push(format!("\"task\":{}", t.0));
            }
            if let Some(g) = d.gpu {
                fields.push(format!("\"gpu\":{}", g.0));
            }
            if let Some(l) = d.line {
                fields.push(format!("\"line\":{l}"));
            }
            fields.push(format!("\"message\":\"{}\"", esc(&d.message)));
            fields.push(format!("\"payload\":{}", payload_object(d)));
            diags.push(format!("{{{}}}", fields.join(",")));
        }
        format!(
            "{{\"tool\":\"micco-analysis\",\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{}}},\"diagnostics\":[{}]}}",
            self.errors(),
            self.warnings(),
            self.infos(),
            diags.join(",")
        )
    }

    /// Encode as a SARIF 2.1.0 document. `artifact` is the URI recorded
    /// for findings that carry a plan-text line (pass the plan file path,
    /// or e.g. `"plan.txt"` when the plan never touched disk).
    pub fn to_sarif(&self, artifact: &str) -> String {
        let rules: Vec<String> = Code::ALL
            .iter()
            .map(|c| {
                format!(
                    "{{\"id\":\"{}\",\"name\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\"defaultConfiguration\":{{\"level\":\"{}\"}}}}",
                    c.id(),
                    c.slug(),
                    esc(c.summary()),
                    c.severity().sarif_level()
                )
            })
            .collect();
        let rule_index = |code: Code| {
            Code::ALL
                .iter()
                .position(|c| *c == code)
                .unwrap_or_default()
        };
        let results: Vec<String> = self
            .diagnostics
            .iter()
            .map(|d| {
                let mut fields = vec![
                    format!("\"ruleId\":\"{}\"", d.code.id()),
                    format!("\"ruleIndex\":{}", rule_index(d.code)),
                    format!("\"level\":\"{}\"", d.severity().sarif_level()),
                    format!("\"message\":{{\"text\":\"{}\"}}", esc(&d.message)),
                ];
                if let Some(line) = d.line {
                    fields.push(format!(
                        "\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{line}}}}}}}]",
                        esc(artifact)
                    ));
                }
                let mut props = Vec::new();
                if let Some(s) = d.stage {
                    props.push(format!("\"stage\":{s}"));
                }
                if let Some(i) = d.index {
                    props.push(format!("\"index\":{i}"));
                }
                if let Some(t) = d.task {
                    props.push(format!("\"task\":{}", t.0));
                }
                if let Some(g) = d.gpu {
                    props.push(format!("\"gpu\":{}", g.0));
                }
                props.push(format!("\"payload\":{}", payload_object(d)));
                fields.push(format!("\"properties\":{{{}}}", props.join(",")));
                format!("{{{}}}", fields.join(","))
            })
            .collect();
        format!(
            "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"micco-analysis\",\"informationUri\":\"https://github.com/example/micco-rs\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}",
            rules.join(","),
            results.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use micco_gpusim::GpuId;
    use micco_workload::TaskId;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(
            Diagnostic::new(Code::CapacityExceeded, "needs 2 GiB, capacity 1 GiB")
                .at(0, 3)
                .for_task(TaskId(7))
                .on_gpu(GpuId(1))
                .at_line(9)
                .with("requested", 2u64 << 30)
                .with("capacity", 1u64 << 30),
        );
        r.push(Diagnostic::new(
            Code::MissedReuse,
            "quote \"and\" backslash \\",
        ));
        r
    }

    #[test]
    fn json_has_codes_and_coordinates() {
        let j = sample().to_json();
        assert!(j.contains("\"code\":\"MICCO-E001\""));
        assert!(j.contains("\"stage\":0") && j.contains("\"index\":3"));
        assert!(j.contains("\"task\":7") && j.contains("\"gpu\":1"));
        assert!(j.contains("\"line\":9"));
        assert!(j.contains("\"errors\":1") && j.contains("\"warnings\":1"));
        assert!(j.contains("\\\"and\\\"") && j.contains("\\\\"));
    }

    #[test]
    fn sarif_has_schema_rules_and_locations() {
        let s = sample().to_sarif("plans/p.txt");
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        // full rules registry present exactly once per code
        for c in Code::ALL {
            assert_eq!(s.matches(&format!("\"id\":\"{}\"", c.id())).count(), 1);
        }
        assert!(s.contains("\"ruleId\":\"MICCO-E001\""));
        assert!(s.contains("\"level\":\"error\""));
        assert!(s.contains("\"uri\":\"plans/p.txt\""));
        assert!(s.contains("\"startLine\":9"));
        // the location-less diagnostic must not emit a locations array
        let missed = s.split("MICCO-W202").nth(2).unwrap_or("");
        assert!(!missed.starts_with(",\"locations\""));
    }

    #[test]
    fn sarif_levels_follow_severity() {
        assert_eq!(Severity::Info.sarif_level(), "note");
        assert_eq!(Severity::Warning.sarif_level(), "warning");
        assert_eq!(Severity::Error.sarif_level(), "error");
    }

    #[test]
    fn empty_report_encodes_cleanly() {
        let r = Report::new();
        assert!(r.to_json().contains("\"diagnostics\":[]"));
        assert!(r.to_sarif("p").contains("\"results\":[]"));
    }
}
