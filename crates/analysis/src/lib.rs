#![warn(missing_docs)]

//! # micco-analysis
//!
//! A static plan verifier and lint engine over the `SchedulePlan` IR.
//!
//! PR 2 made schedules first-class data; this crate makes them
//! *checkable without executing them*. The paper's invariants — local
//! reuse patterns (Fig. 4), reuse bounds (Table II), `balanceNum` load
//! caps (Alg. 1), memory-capacity/eviction safety — are all decidable
//! from the task stream and residency maps alone, so an abstract
//! interpreter can replay a plan symbolically and flag violations before
//! any GPU time is spent.
//!
//! The pieces:
//!
//! * [`analyze_plan`] / [`analyze_plan_with`] — structural pass
//!   (fingerprint, shape, device ranges) then a semantic replay of the
//!   plan through the shared [`micco_gpusim::ShadowMachine`] transition
//!   function, tracking per-GPU residency, occupancy under the configured
//!   eviction policy, and per-stage load counts;
//! * [`analyze_placements`] — the semantic pass over raw `(task, gpu)`
//!   placements, reused by the cluster layer's per-node projections;
//! * [`Code`] — the stable diagnostic registry (`MICCO-E001
//!   capacity-exceeded` … `MICCO-I301 dead-transfer`, DESIGN.md §10);
//! * [`Report`] — aggregation, severity thresholds (`--deny warnings`
//!   style via [`Report::denies`]), and JSON / SARIF 2.1.0 / text
//!   encodings.
//!
//! ```
//! use micco_analysis::{analyze_plan, Code, Severity};
//! use micco_core::{plan_schedule, RoundRobinScheduler};
//! use micco_gpusim::MachineConfig;
//! use micco_workload::WorkloadSpec;
//!
//! let stream = WorkloadSpec::new(8, 64).with_vectors(2).generate();
//! let cfg = MachineConfig::mi100_like(2);
//! let mut plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
//! assert!(!analyze_plan(&plan, &stream, &cfg).denies(Severity::Warning));
//!
//! // corrupt the plan: the analyzer pins the exact assignment
//! plan.stages[0].assignments[0].gpu = micco_gpusim::GpuId(99);
//! let report = analyze_plan(&plan, &stream, &cfg);
//! assert!(report.has(Code::AssignmentOutOfRange));
//! assert!(report.denies(Severity::Error));
//! ```

pub mod certify;
pub mod diag;
pub mod engine;
mod render;

pub use certify::{
    certify_placements_with, certify_trace, certify_trace_with, plan_dag, CertifyConfig, PlanDag,
    PlannedTransfer, TransferStrictness,
};
pub use diag::{Code, Diagnostic, Report, Severity};
pub use engine::{
    analyze_placements, analyze_placements_with_topology, analyze_plan, analyze_plan_with,
    analyze_plan_with_topology, assignment_line, stage_line, AnalysisConfig, PlacedStage,
};
