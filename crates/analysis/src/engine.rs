//! The abstract interpreter: replay a plan symbolically and check MICCO's
//! invariants.
//!
//! The semantic pass drives the same [`ShadowMachine`] state-transition
//! function that `micco_core::plan_schedule` used to decide the plan, so
//! the residency and occupancy state the checks observe at step *k* is
//! bit-for-bit the state the scheduler saw when it made decision *k*. The
//! reuse/balance rules mirror Alg. 1's candidate construction exactly —
//! including the step fall-through and the least-loaded fallback — which
//! is what makes them *sound*: a plan produced by any of the repo's
//! schedulers under a non-oversubscribed machine never trips a warning
//! (the mutation proptest in `tests/analysis_properties.rs` enforces
//! this), while seeded violations are flagged with their exact code.

use std::collections::HashMap;

use micco_core::pattern::classify;
use micco_core::{ReuseBounds, SchedulePlan};
use micco_gpusim::{
    DeviceMemory, EvictionPolicy, ExecError, ExecObserver, GpuId, LinkTopology, MachineConfig,
    ShadowMachine,
};
use micco_workload::{ContractionTask, TensorId, TensorPairStream};

use crate::diag::{Code, Diagnostic, Report};

/// Tunables of the semantic pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// `MICCO-W201`: a re-fetch within this many tasks of the eviction
    /// counts as thrash. `0` disables the check.
    pub thrash_window: u64,
    /// `MICCO-W102`: tolerated slots beyond `max(bounds) + balanceNum`
    /// before the cap counts as exceeded. Assignments move two slots at a
    /// time and the availability gate is strict, so a legitimate final
    /// placement can overshoot the cap by up to two slots — the default
    /// slack of 2 makes valid schedules clean.
    pub balance_slack: usize,
    /// Run the reuse-aware checks (`W101`/`W102`/`W202`). They only fire
    /// on stages that recorded bounds; disable to lint bound-free plans
    /// for memory behaviour alone.
    pub check_reuse: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            thrash_window: 32,
            balance_slack: 2,
            check_reuse: true,
        }
    }
}

/// One stage of placements for [`analyze_placements`]: the bounds in
/// effect (if any) and each task with its chosen device, in stream order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlacedStage {
    /// Reuse bounds the stage was decided under (`None` for bound-free
    /// schedulers — disables the reuse/balance checks for the stage).
    pub bounds: Option<ReuseBounds>,
    /// `(task, device)` placements in execution order.
    pub placements: Vec<(ContractionTask, GpuId)>,
}

/// 1-based line of stage `s`'s `stage` marker in the canonical plan text
/// produced by [`SchedulePlan::to_text`] (header block is 5 lines).
pub fn stage_line(plan: &SchedulePlan, stage: usize) -> usize {
    let mut line = 5;
    for st in plan.stages.iter().take(stage) {
        line += 1 + st.assignments.len();
    }
    line + 1
}

/// 1-based line of assignment `index` of stage `stage` in the canonical
/// plan text.
pub fn assignment_line(plan: &SchedulePlan, stage: usize, index: usize) -> usize {
    stage_line(plan, stage) + 1 + index
}

/// Analyze a plan against the stream and machine it is meant to run on,
/// with default [`AnalysisConfig`].
pub fn analyze_plan(plan: &SchedulePlan, stream: &TensorPairStream, cfg: &MachineConfig) -> Report {
    analyze_plan_with(plan, stream, cfg, &AnalysisConfig::default())
}

/// [`analyze_plan`] with explicit tunables.
///
/// Runs a structural pass first (`E002`–`E005`); only a structurally
/// clean plan is replayed semantically (`E001`, `W1xx`, `W2xx`, `I301`),
/// since a plan that disagrees with the stream's shape has no meaningful
/// replay. Diagnostics from the semantic pass are anchored to lines of
/// the canonical plan text ([`assignment_line`]).
pub fn analyze_plan_with(
    plan: &SchedulePlan,
    stream: &TensorPairStream,
    cfg: &MachineConfig,
    acfg: &AnalysisConfig,
) -> Report {
    analyze_plan_with_topology(plan, stream, cfg, acfg, None)
}

/// [`analyze_plan_with`] replaying transfers over an explicit link
/// topology. Beyond the flat checks, every device-to-device fetch is
/// routed symbolically and `MICCO-W204` fires when the machine's chosen
/// source crosses an NVLink island although another device on the
/// destination's own island also held the operand — the expensive hop was
/// avoidable without changing the placement. With `topology: None` (or a
/// single-island topology) this is exactly [`analyze_plan_with`].
pub fn analyze_plan_with_topology(
    plan: &SchedulePlan,
    stream: &TensorPairStream,
    cfg: &MachineConfig,
    acfg: &AnalysisConfig,
    topology: Option<&LinkTopology>,
) -> Report {
    let mut report = Report::new();

    // Lineage check before the structural gates: a repaired plan carries a
    // `+repair(lost=…)` marker in its scheduler line, and the degraded
    // placement is worth flagging even when the plan is otherwise broken.
    if plan.scheduler.contains("+repair(") {
        report.push(
            Diagnostic::new(
                Code::DegradedPlacement,
                format!(
                    "plan was repaired onto surviving devices ({}); placements no longer \
                     reflect the original scheduler's reuse/balance decisions",
                    plan.scheduler
                ),
            )
            .at_line(2)
            .with("scheduler", &plan.scheduler),
        );
    }

    let fp = stream.fingerprint();
    if plan.fingerprint != fp {
        report.push(
            Diagnostic::new(
                Code::FingerprintMismatch,
                format!(
                    "plan fingerprint {:#x} does not match stream fingerprint {fp:#x}",
                    plan.fingerprint
                ),
            )
            .at_line(4)
            .with("plan", plan.fingerprint)
            .with("stream", fp),
        );
        return report;
    }
    if plan.stages.len() != stream.vectors.len() {
        report.push(
            Diagnostic::new(
                Code::PlanStructureMismatch,
                format!(
                    "plan has {} stages, stream has {} vectors",
                    plan.stages.len(),
                    stream.vectors.len()
                ),
            )
            .with("plan_stages", plan.stages.len())
            .with("stream_vectors", stream.vectors.len()),
        );
        return report;
    }

    let mut structural_ok = true;
    for (s, (stage, vector)) in plan.stages.iter().zip(&stream.vectors).enumerate() {
        if stage.assignments.len() != vector.tasks.len() {
            report.push(
                Diagnostic::new(
                    Code::PlanStructureMismatch,
                    format!(
                        "stage {s}: plan assigns {} tasks, vector has {}",
                        stage.assignments.len(),
                        vector.tasks.len()
                    ),
                )
                .at_stage(s)
                .at_line(stage_line(plan, s))
                .with("plan_len", stage.assignments.len())
                .with("vector_len", vector.tasks.len()),
            );
            structural_ok = false;
            continue;
        }
        for (i, (a, t)) in stage.assignments.iter().zip(&vector.tasks).enumerate() {
            if a.task != t.id {
                report.push(
                    Diagnostic::new(
                        Code::PlanStructureMismatch,
                        format!(
                            "stage {s} position {i}: plan assigns task {}, stream has task {}",
                            a.task.0, t.id.0
                        ),
                    )
                    .at(s, i)
                    .for_task(a.task)
                    .at_line(assignment_line(plan, s, i))
                    .with("plan_task", a.task.0)
                    .with("stream_task", t.id.0),
                );
                structural_ok = false;
            }
            if a.gpu.0 >= plan.num_gpus {
                report.push(
                    Diagnostic::new(
                        Code::AssignmentOutOfRange,
                        format!(
                            "stage {s} position {i}: task {} assigned to gpu {} but the plan targets {} devices",
                            a.task.0, a.gpu.0, plan.num_gpus
                        ),
                    )
                    .at(s, i)
                    .for_task(a.task)
                    .on_gpu(a.gpu)
                    .at_line(assignment_line(plan, s, i))
                    .with("gpu", a.gpu.0)
                    .with("num_gpus", plan.num_gpus),
                );
                structural_ok = false;
            }
        }
    }

    let mut machine_cfg = *cfg;
    if plan.num_gpus != cfg.num_gpus {
        report.push(
            Diagnostic::new(
                Code::DeviceCountMismatch,
                format!(
                    "plan targets {} devices but the machine has {} (semantic pass uses the plan's geometry)",
                    plan.num_gpus, cfg.num_gpus
                ),
            )
            .at_line(3)
            .with("plan", plan.num_gpus)
            .with("machine", cfg.num_gpus),
        );
        machine_cfg.num_gpus = plan.num_gpus;
    }

    if !structural_ok {
        return report;
    }

    let stages: Vec<PlacedStage> = plan
        .stages
        .iter()
        .zip(&stream.vectors)
        .map(|(st, v)| PlacedStage {
            bounds: st.bounds,
            placements: v
                .tasks
                .iter()
                .cloned()
                .zip(st.assignments.iter().map(|a| a.gpu))
                .collect(),
        })
        .collect();
    let mut semantic = analyze_placements_with_topology(&stages, &machine_cfg, acfg, topology);
    for d in &mut semantic.diagnostics {
        if let (Some(s), Some(i)) = (d.stage, d.index) {
            d.line = Some(assignment_line(plan, s, i));
        }
    }
    report.extend(semantic);
    report
}

/// What the replay observer needs to remember about one task's execution.
enum MemEvent {
    /// Tensor fetched onto a device (h2d or d2d — either re-populates
    /// residency after an eviction).
    Fetch { gpu: usize, tensor: TensorId },
    /// Tensor evicted from a device; `writeback` when the eviction
    /// actually paid a host write-back.
    Evict {
        gpu: usize,
        tensor: TensorId,
        writeback: bool,
    },
}

/// [`ExecObserver`] that records the memory traffic of one task.
#[derive(Default)]
struct Collector {
    events: Vec<MemEvent>,
    /// Device-to-device fetches as `(src, dst, tensor)`, kept separately
    /// with their source for the topology pass (W204).
    d2d: Vec<(usize, usize, TensorId)>,
}

impl ExecObserver for Collector {
    fn h2d(&mut self, gpu: GpuId, tensor: TensorId, _bytes: u64) {
        self.events.push(MemEvent::Fetch { gpu: gpu.0, tensor });
    }

    fn d2d(&mut self, src: GpuId, dst: GpuId, tensor: TensorId, _bytes: u64) {
        self.events.push(MemEvent::Fetch { gpu: dst.0, tensor });
        self.d2d.push((src.0, dst.0, tensor));
    }

    fn evict(&mut self, gpu: GpuId, tensor: TensorId, writeback: bool, _bytes: u64) {
        self.events.push(MemEvent::Evict {
            gpu: gpu.0,
            tensor,
            writeback,
        });
    }
}

/// The semantic pass over raw placements (no plan text, no fingerprint):
/// replays every stage through a fresh [`ShadowMachine`] built from `cfg`
/// and checks capacity (`E001`), reuse bounds (`W101`), balance caps
/// (`W102`), eviction thrash (`W201`), missed reuse (`W202`) and dead
/// write-backs (`I301`). The cluster layer calls this once per node with
/// its projected placements.
///
/// Placements targeting devices outside `cfg.num_gpus` are reported as
/// `E002` and the replay is skipped (the machine state after an
/// unexecutable placement is undefined).
pub fn analyze_placements(
    stages: &[PlacedStage],
    cfg: &MachineConfig,
    acfg: &AnalysisConfig,
) -> Report {
    analyze_placements_with_topology(stages, cfg, acfg, None)
}

/// [`analyze_placements`] with a link topology for the `W204` route check
/// (see [`analyze_plan_with_topology`]). A topology whose device count
/// differs from `cfg.num_gpus`, or with a single island, disables the
/// route check — the flat diagnostics are unaffected either way.
pub fn analyze_placements_with_topology(
    stages: &[PlacedStage],
    cfg: &MachineConfig,
    acfg: &AnalysisConfig,
    topology: Option<&LinkTopology>,
) -> Report {
    let mut report = Report::new();
    let num_gpus = cfg.num_gpus;
    // the route check only makes sense when the topology matches the
    // machine and actually has more than one island to cross
    let topo = topology.filter(|t| t.num_gpus() == num_gpus && !t.is_single_island());

    let mut structural_ok = true;
    for (s, stage) in stages.iter().enumerate() {
        for (i, (task, gpu)) in stage.placements.iter().enumerate() {
            if gpu.0 >= num_gpus {
                report.push(
                    Diagnostic::new(
                        Code::AssignmentOutOfRange,
                        format!(
                            "stage {s} position {i}: task {} assigned to gpu {} but the machine has {num_gpus} devices",
                            task.id.0, gpu.0
                        ),
                    )
                    .at(s, i)
                    .for_task(task.id)
                    .on_gpu(*gpu)
                    .with("gpu", gpu.0)
                    .with("num_gpus", num_gpus),
                );
                structural_ok = false;
            }
        }
    }
    if !structural_ok || num_gpus == 0 {
        return report;
    }

    // Global next-use index (operand positions only), for W201 windows and
    // I301 dead write-backs.
    let mut uses: HashMap<TensorId, Vec<u64>> = HashMap::new();
    let mut idx = 0u64;
    for stage in stages {
        for (task, _) in &stage.placements {
            uses.entry(task.a.id).or_default().push(idx);
            uses.entry(task.b.id).or_default().push(idx);
            idx += 1;
        }
    }
    let used_after = |t: TensorId, after: u64| -> bool {
        uses.get(&t)
            .is_some_and(|v| v.last().is_some_and(|&last| last > after))
    };

    let mut shadow = ShadowMachine::new(*cfg);
    if cfg.eviction == EvictionPolicy::Clairvoyant {
        // Mirror what an oracle-armed decide/execute pair would see.
        let vectors = stages
            .iter()
            .map(|s| {
                micco_workload::Vector::new(s.placements.iter().map(|(t, _)| t.clone()).collect())
            })
            .collect();
        shadow.set_oracle(&TensorPairStream::new(vectors));
    }

    // (gpu, tensor) → global index of the most recent eviction.
    let mut evicted_at: HashMap<(usize, TensorId), u64> = HashMap::new();
    let mut global = 0u64;

    for (s, stage) in stages.iter().enumerate() {
        let slots_total = 2 * stage.placements.len();
        let balance = if slots_total == 0 {
            1
        } else {
            slots_total.div_ceil(num_gpus).max(1)
        };
        let mut slots = vec![0usize; num_gpus];

        for (i, (task, gpu)) in stage.placements.iter().enumerate() {
            let g = gpu.0;

            if acfg.check_reuse {
                if let Some(bounds) = stage.bounds {
                    check_reuse_rules(
                        &mut report,
                        &shadow,
                        task,
                        *gpu,
                        bounds,
                        &slots,
                        balance,
                        s,
                        i,
                    );
                }
            }

            // Pre-execution residency for the W204 route check: exactly
            // the holder sets the machine chooses its transfer source from.
            let pre_holders = topo.map(|_| classify(task, &shadow));

            let mut collector = Collector::default();
            match shadow.execute_observed(task, *gpu, &mut collector) {
                Ok(()) => {}
                Err(ExecError::OutOfMemory {
                    gpu: oom_gpu,
                    source,
                }) => {
                    let micco_gpusim::memory::AllocError::WontFit {
                        requested,
                        capacity,
                    } = source;
                    report.push(
                        Diagnostic::new(
                            Code::CapacityExceeded,
                            format!(
                                "stage {s} position {i}: task {} needs {requested} B on gpu {} but only {capacity} B of capacity can be freed",
                                task.id.0, oom_gpu.0
                            ),
                        )
                        .at(s, i)
                        .for_task(task.id)
                        .on_gpu(oom_gpu)
                        .with("requested", requested)
                        .with("capacity", capacity),
                    );
                    // A failed task leaves already-staged operands pinned;
                    // unpin them so the rest of the replay sees the full
                    // eviction surface again.
                    let mem: &mut DeviceMemory = shadow.memory_mut(oom_gpu);
                    for id in [task.a.id, task.b.id, task.out.id] {
                        mem.set_pinned(id, false);
                    }
                }
                Err(ExecError::BadGpu { gpu: bad, num_gpus }) => {
                    // Pre-screened above; keep a defensive report rather
                    // than panicking if the screen and machine disagree.
                    report.push(
                        Diagnostic::new(
                            Code::AssignmentOutOfRange,
                            format!(
                                "stage {s} position {i}: machine rejected gpu {} ({num_gpus} devices)",
                                bad.0
                            ),
                        )
                        .at(s, i)
                        .for_task(task.id)
                        .on_gpu(bad),
                    );
                }
                Err(ExecError::DeviceLost { .. }) => {
                    // The analysis shadow never arms a FaultPlan, so this
                    // arm is unreachable; skip the placement defensively.
                }
            }

            if let (Some(t), Some(class)) = (topo, &pre_holders) {
                for &(src, dst, tensor) in &collector.d2d {
                    if !t.crosses_island(src, dst) {
                        continue;
                    }
                    let holders: &[GpuId] = if tensor == task.a.id {
                        &class.holders_a
                    } else if tensor == task.b.id {
                        &class.holders_b
                    } else {
                        continue;
                    };
                    let Some(alt) = holders
                        .iter()
                        .find(|h| h.0 != dst && t.same_island(h.0, dst))
                    else {
                        continue;
                    };
                    report.push(
                        Diagnostic::new(
                            Code::CrossIslandTransfer,
                            format!(
                                "tensor {} fetched onto gpu {dst} from gpu {src} (island {} → {}) although gpu {} on the same island also holds it",
                                tensor.0,
                                t.island_of(src),
                                t.island_of(dst),
                                alt.0
                            ),
                        )
                        .at(s, i)
                        .for_task(task.id)
                        .on_gpu(*gpu)
                        .with("tensor", tensor.0)
                        .with("src", src)
                        .with("dst", dst)
                        .with("src_island", t.island_of(src))
                        .with("dst_island", t.island_of(dst))
                        .with("same_island_holder", alt.0),
                    );
                }
            }

            for event in collector.events {
                match event {
                    MemEvent::Fetch { gpu: fg, tensor } => {
                        if let Some(evicted) = evicted_at.remove(&(fg, tensor)) {
                            let distance = global - evicted;
                            if acfg.thrash_window > 0 && distance <= acfg.thrash_window {
                                report.push(
                                    Diagnostic::new(
                                        Code::EvictionThrash,
                                        format!(
                                            "tensor {} re-fetched onto gpu {fg} only {distance} task(s) after being evicted from it",
                                            tensor.0
                                        ),
                                    )
                                    .at(s, i)
                                    .for_task(task.id)
                                    .on_gpu(GpuId(fg))
                                    .with("tensor", tensor.0)
                                    .with("evicted_at", evicted)
                                    .with("refetched_at", global)
                                    .with("distance", distance),
                                );
                            }
                        }
                    }
                    MemEvent::Evict {
                        gpu: eg,
                        tensor,
                        writeback,
                    } => {
                        evicted_at.insert((eg, tensor), global);
                        if writeback && !used_after(tensor, global) {
                            report.push(
                                Diagnostic::new(
                                    Code::DeadTransfer,
                                    format!(
                                        "tensor {} written back to the host on eviction from gpu {eg} but never used again",
                                        tensor.0
                                    ),
                                )
                                .at(s, i)
                                .for_task(task.id)
                                .on_gpu(GpuId(eg))
                                .with("tensor", tensor.0)
                                .with("evicted_at", global),
                            );
                        }
                    }
                }
            }

            slots[g] += 2;
            if acfg.check_reuse {
                if let Some(bounds) = stage.bounds {
                    let max_bound = bounds.get(0).max(bounds.get(1)).max(bounds.get(2));
                    let cap = max_bound
                        .saturating_add(balance)
                        .saturating_add(acfg.balance_slack);
                    if slots[g] > cap {
                        report.push(
                            Diagnostic::new(
                                Code::BalanceCapExceeded,
                                format!(
                                    "gpu {g} carries {} tensor slots this stage, above the cap of {cap} (max bound {max_bound} + balance {balance} + slack {})",
                                    slots[g], acfg.balance_slack
                                ),
                            )
                            .at(s, i)
                            .for_task(task.id)
                            .on_gpu(*gpu)
                            .with("slots", slots[g])
                            .with("cap", cap)
                            .with("max_bound", max_bound)
                            .with("balance", balance),
                        );
                    }
                }
            }

            global += 1;
        }
        shadow.barrier();
    }
    report
}

/// The `W101`/`W202` checks for one placement, against the pre-execution
/// machine state — exactly what the scheduler saw when deciding.
///
/// Mirrors Alg. 1's candidate construction: step I offers both-holder
/// devices gated by bound 0; if none qualify, step II offers single-holder
/// devices gated by bound 1; if none qualify, any device gated by bound 2;
/// if still none, the least-loaded fallback. A placement is
///
/// * `W202` (missed reuse) when a holder step produced candidates and the
///   chosen device is not among them — reuse the bounds allowed was left
///   on the table;
/// * `W101` (bound violated) when the chosen device fails **every** gate
///   applicable to it and is not the least-loaded fallback — no step of
///   the algorithm could have produced it.
#[allow(clippy::too_many_arguments)]
fn check_reuse_rules(
    report: &mut Report,
    shadow: &ShadowMachine,
    task: &ContractionTask,
    gpu: GpuId,
    bounds: ReuseBounds,
    slots: &[usize],
    balance: usize,
    stage: usize,
    index: usize,
) {
    let g = gpu.0;
    let available = |d: usize, bound: usize| slots[d] < bound.saturating_add(balance);
    let class = classify(task, shadow);

    // W202: a holder step offered candidates the plan ignored.
    let step1: Vec<usize> = class
        .holders_both
        .iter()
        .map(|h| h.0)
        .filter(|&d| available(d, bounds.get(0)))
        .collect();
    if !step1.is_empty() {
        if !step1.contains(&g) {
            report.push(
                Diagnostic::new(
                    Code::MissedReuse,
                    format!(
                        "task {} ({}) placed on gpu {g} although device(s) {:?} hold both operands within bound {}",
                        task.id.0, class.pattern, step1, bounds.get(0)
                    ),
                )
                .at(stage, index)
                .for_task(task.id)
                .on_gpu(gpu)
                .with("pattern", class.pattern)
                .with("candidates", format!("{step1:?}"))
                .with("bound", bounds.get(0)),
            );
        }
    } else {
        let mut step2: Vec<usize> = Vec::new();
        for h in class.holders_a.iter().chain(&class.holders_b) {
            if available(h.0, bounds.get(1)) && !step2.contains(&h.0) {
                step2.push(h.0);
            }
        }
        if !step2.is_empty() && !step2.contains(&g) {
            report.push(
                Diagnostic::new(
                    Code::MissedReuse,
                    format!(
                        "task {} ({}) placed on gpu {g} although device(s) {:?} hold an operand within bound {}",
                        task.id.0, class.pattern, step2, bounds.get(1)
                    ),
                )
                .at(stage, index)
                .for_task(task.id)
                .on_gpu(gpu)
                .with("pattern", class.pattern)
                .with("candidates", format!("{step2:?}"))
                .with("bound", bounds.get(1)),
            );
        }
    }

    // W101: the chosen device fails every gate that could have admitted it.
    let is_holder_both = class.holders_both.iter().any(|h| h.0 == g);
    let is_holder_one =
        class.holders_a.iter().any(|h| h.0 == g) || class.holders_b.iter().any(|h| h.0 == g);
    let mut passes = available(g, bounds.get(2));
    if !passes && is_holder_both {
        passes = available(g, bounds.get(0));
    }
    if !passes && is_holder_one {
        passes = available(g, bounds.get(1));
    }
    let least_loaded = slots
        .iter()
        .enumerate()
        .min_by_key(|(d, &n)| (n, *d))
        .map(|(d, _)| d)
        .unwrap_or(0);
    if !passes && g != least_loaded {
        report.push(
            Diagnostic::new(
                Code::ReuseBoundViolated,
                format!(
                    "task {} placed on gpu {g} with {} slots already assigned — every availability gate of bounds {bounds} (balance {balance}) fails and gpu {least_loaded} is less loaded",
                    task.id.0, slots[g]
                ),
            )
            .at(stage, index)
            .for_task(task.id)
            .on_gpu(gpu)
            .with("slots", slots[g])
            .with("bounds", bounds)
            .with("balance", balance)
            .with("least_loaded", least_loaded),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micco_core::{plan_schedule, MiccoScheduler, RoundRobinScheduler};
    use micco_workload::{TaskId, TensorDesc, WorkloadSpec};

    const MB: u64 = 1 << 20;

    fn task(id: u64, a: u64, b: u64, out: u64, bytes: u64) -> ContractionTask {
        ContractionTask {
            id: TaskId(id),
            a: TensorDesc {
                id: TensorId(a),
                bytes,
            },
            b: TensorDesc {
                id: TensorId(b),
                bytes,
            },
            out: TensorDesc {
                id: TensorId(out),
                bytes,
            },
            flops: 1_000_000,
        }
    }

    fn stage_of(
        bounds: Option<ReuseBounds>,
        placements: Vec<(ContractionTask, usize)>,
    ) -> PlacedStage {
        PlacedStage {
            bounds,
            placements: placements.into_iter().map(|(t, g)| (t, GpuId(g))).collect(),
        }
    }

    fn small_cfg(gpus: usize, mem: u64) -> MachineConfig {
        MachineConfig::mi100_like(gpus).with_mem_bytes(mem)
    }

    #[test]
    fn clean_plan_is_clean() {
        let stream = WorkloadSpec::new(16, 96)
            .with_repeat_rate(0.7)
            .with_vectors(3)
            .with_seed(7)
            .generate();
        let cfg = MachineConfig::mi100_like(3);
        for plan in [
            plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap(),
            plan_schedule(
                &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
                &stream,
                &cfg,
            )
            .unwrap(),
        ] {
            let r = analyze_plan(&plan, &stream, &cfg);
            assert!(
                !r.denies(crate::diag::Severity::Warning),
                "valid plan flagged: {}",
                r.render_text()
            );
        }
    }

    #[test]
    fn capacity_violation_yields_e001_with_coordinates() {
        // one device, 4 MB capacity: a task with a 6 MB working set cannot
        // fit even on an empty device
        let cfg = small_cfg(1, 4 * MB);
        let stages = vec![stage_of(None, vec![(task(0, 1, 2, 3, 2 * MB), 0)])];
        let r = analyze_placements(&stages, &cfg, &AnalysisConfig::default());
        let hits = r.with_code(Code::CapacityExceeded);
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].stage, hits[0].index), (Some(0), Some(0)));
        assert_eq!(hits[0].task, Some(TaskId(0)));
        assert_eq!(hits[0].gpu, Some(GpuId(0)));
    }

    #[test]
    fn replay_continues_past_oom() {
        // the second task fits fine; the failed first task must not pin the
        // device shut
        let cfg = small_cfg(1, 4 * MB);
        let stages = vec![stage_of(
            None,
            vec![(task(0, 1, 2, 3, 2 * MB), 0), (task(1, 10, 11, 12, MB), 0)],
        )];
        let r = analyze_placements(&stages, &cfg, &AnalysisConfig::default());
        assert_eq!(r.with_code(Code::CapacityExceeded).len(), 1);
    }

    #[test]
    fn out_of_range_yields_e002_and_skips_replay() {
        let cfg = small_cfg(2, 4 * MB);
        let stages = vec![stage_of(
            None,
            vec![
                (task(0, 1, 2, 3, 2 * MB), 5), // out of range AND would OOM
            ],
        )];
        let r = analyze_placements(&stages, &cfg, &AnalysisConfig::default());
        assert!(r.has(Code::AssignmentOutOfRange));
        assert!(!r.has(Code::CapacityExceeded), "replay must be skipped");
        let d = &r.with_code(Code::AssignmentOutOfRange)[0];
        assert_eq!(d.gpu, Some(GpuId(5)));
    }

    #[test]
    fn pile_up_with_tight_bounds_yields_w101_and_w102() {
        // 4 fresh pairs, 2 devices, bounds (0,0,0): balance = 4. Piling all
        // on gpu0 exceeds every gate from the third pair on.
        let cfg = MachineConfig::mi100_like(2);
        let bounds = Some(ReuseBounds::naive());
        let placements = (0..4u64)
            .map(|i| (task(i, 100 + 2 * i, 101 + 2 * i, 200 + i, MB), 0))
            .collect();
        let stages = vec![stage_of(bounds, placements)];
        let r = analyze_placements(&stages, &cfg, &AnalysisConfig::default());
        assert!(r.has(Code::ReuseBoundViolated), "{}", r.render_text());
        assert!(r.has(Code::BalanceCapExceeded), "{}", r.render_text());
        let w101 = &r.with_code(Code::ReuseBoundViolated)[0];
        assert_eq!(w101.stage, Some(0));
        assert_eq!(w101.gpu, Some(GpuId(0)));
    }

    #[test]
    fn off_holder_placement_yields_w202() {
        // warm gpu0 with tensors 1,2 in stage 0; stage 1 places the reusing
        // pair on gpu1 although gpu0 qualifies under generous bounds
        let cfg = MachineConfig::mi100_like(2);
        let stages = vec![
            stage_of(None, vec![(task(0, 1, 2, 3, MB), 0)]),
            stage_of(
                Some(ReuseBounds::new(4, 4, 4)),
                vec![(task(1, 1, 2, 4, MB), 1)],
            ),
        ];
        let r = analyze_placements(&stages, &cfg, &AnalysisConfig::default());
        let hits = r.with_code(Code::MissedReuse);
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].stage, hits[0].index), (Some(1), Some(0)));
        // and the same placement raises no W202 when the stage has no bounds
        let stages_unbounded = vec![
            stage_of(None, vec![(task(0, 1, 2, 3, MB), 0)]),
            stage_of(None, vec![(task(1, 1, 2, 4, MB), 1)]),
        ];
        let r2 = analyze_placements(&stages_unbounded, &cfg, &AnalysisConfig::default());
        assert!(!r2.has(Code::MissedReuse));
    }

    #[test]
    fn thrash_and_dead_writeback_detected_under_pressure() {
        // capacity fits ~3 tensors of 1 MB (plus a little): alternate two
        // working sets so the machine keeps evicting what it re-fetches
        let cfg = small_cfg(1, 3 * MB + MB / 2);
        let mut placements = Vec::new();
        for round in 0..3u64 {
            placements.push((task(2 * round, 1, 2, 100 + 2 * round, MB), 0));
            placements.push((task(2 * round + 1, 3, 4, 101 + 2 * round, MB), 0));
        }
        let stages = vec![stage_of(None, placements)];
        let r = analyze_placements(&stages, &cfg, &AnalysisConfig::default());
        assert!(r.has(Code::EvictionThrash), "{}", r.render_text());
        // outputs (device-created, never operands) get written back on
        // eviction although nothing ever reads them again
        assert!(r.has(Code::DeadTransfer), "{}", r.render_text());
        // a window of zero disables the thrash check
        let quiet = AnalysisConfig {
            thrash_window: 0,
            ..AnalysisConfig::default()
        };
        assert!(!analyze_placements(&stages, &cfg, &quiet).has(Code::EvictionThrash));
    }

    #[test]
    fn structural_mismatches_are_typed() {
        let stream = WorkloadSpec::new(4, 32).with_vectors(2).generate();
        let cfg = MachineConfig::mi100_like(2);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();

        let mut fp = plan.clone();
        fp.fingerprint ^= 1;
        assert!(analyze_plan(&fp, &stream, &cfg).has(Code::FingerprintMismatch));

        let mut missing = plan.clone();
        missing.stages.pop();
        assert!(analyze_plan(&missing, &stream, &cfg).has(Code::PlanStructureMismatch));

        let mut short = plan.clone();
        short.stages[1].assignments.pop();
        let r = analyze_plan(&short, &stream, &cfg);
        let d = &r.with_code(Code::PlanStructureMismatch)[0];
        assert_eq!(d.stage, Some(1));

        let mut wrong_task = plan.clone();
        wrong_task.stages[0].assignments[1].task = TaskId(9999);
        let r = analyze_plan(&wrong_task, &stream, &cfg);
        let d = &r.with_code(Code::PlanStructureMismatch)[0];
        assert_eq!((d.stage, d.index), (Some(0), Some(1)));

        let mut oob = plan.clone();
        oob.stages[0].assignments[0].gpu = GpuId(99);
        let r = analyze_plan(&oob, &stream, &cfg);
        let d = &r.with_code(Code::AssignmentOutOfRange)[0];
        assert_eq!((d.stage, d.index), (Some(0), Some(0)));

        let r = analyze_plan(&plan, &stream, &MachineConfig::mi100_like(4));
        assert!(r.has(Code::DeviceCountMismatch));
    }

    #[test]
    fn plan_text_lines_anchor_diagnostics() {
        let stream = WorkloadSpec::new(4, 32)
            .with_vectors(2)
            .with_seed(3)
            .generate();
        let cfg = MachineConfig::mi100_like(2);
        let mut plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        plan.stages[1].assignments[2].gpu = GpuId(77);
        let r = analyze_plan(&plan, &stream, &cfg);
        let d = &r.with_code(Code::AssignmentOutOfRange)[0];
        let line = d.line.expect("line attached");
        // the reported line in the canonical text really is that assignment
        let text = plan.to_text();
        let row = text.lines().nth(line - 1).expect("line exists");
        assert_eq!(row, format!("assign {} 77", d.task.expect("task").0));
    }

    #[test]
    fn clairvoyant_policy_replays_with_oracle() {
        let cfg = MachineConfig {
            eviction: EvictionPolicy::Clairvoyant,
            ..small_cfg(1, 4 * MB)
        };
        let stages = vec![stage_of(
            None,
            vec![(task(0, 1, 2, 100, MB), 0), (task(1, 1, 2, 101, MB), 0)],
        )];
        let r = analyze_placements(&stages, &cfg, &AnalysisConfig::default());
        assert!(!r.has(Code::CapacityExceeded));
    }

    #[test]
    fn empty_plan_is_clean() {
        let stages: Vec<PlacedStage> = Vec::new();
        let cfg = MachineConfig::mi100_like(2);
        assert!(analyze_placements(&stages, &cfg, &AnalysisConfig::default()).is_clean());
    }

    #[test]
    fn cross_island_fetch_with_near_holder_yields_w204() {
        // 4 GPUs in two 2-GPU islands {0,1} and {2,3}. Warm tensor 1 on
        // gpus 0 and 3, then use it on gpu 2: the machine fetches from the
        // lowest-id holder (gpu 0, across the island boundary) although
        // gpu 3 on gpu 2's own island also holds it.
        let cfg = MachineConfig::mi100_like(4);
        let topo = LinkTopology::nvlink(4, 2);
        let stages = vec![
            stage_of(None, vec![(task(0, 1, 2, 100, MB), 0)]),
            stage_of(None, vec![(task(1, 1, 3, 101, MB), 3)]),
            stage_of(None, vec![(task(2, 1, 4, 102, MB), 2)]),
        ];
        let r = analyze_placements_with_topology(
            &stages,
            &cfg,
            &AnalysisConfig::default(),
            Some(&topo),
        );
        let hits = r.with_code(Code::CrossIslandTransfer);
        assert_eq!(hits.len(), 1, "{}", r.render_text());
        assert_eq!((hits[0].stage, hits[0].index), (Some(2), Some(0)));
        assert_eq!(hits[0].gpu, Some(GpuId(2)));
        assert!(hits[0].message.contains("gpu 3"), "{}", hits[0].message);
        // without the same-island alternative the fetch is unavoidable
        let stages_unavoidable = vec![
            stage_of(None, vec![(task(0, 1, 2, 100, MB), 0)]),
            stage_of(None, vec![(task(1, 1, 4, 101, MB), 2)]),
        ];
        let r2 = analyze_placements_with_topology(
            &stages_unavoidable,
            &cfg,
            &AnalysisConfig::default(),
            Some(&topo),
        );
        assert!(!r2.has(Code::CrossIslandTransfer), "{}", r2.render_text());
        // flat analysis of the triggering fixture stays clean
        let r3 = analyze_placements(&stages, &cfg, &AnalysisConfig::default());
        assert!(!r3.has(Code::CrossIslandTransfer));
    }

    #[test]
    fn w204_never_fires_on_a_single_island() {
        let cfg = MachineConfig::mi100_like(4);
        let one_island = LinkTopology::nvlink(4, 4);
        let stages = vec![
            stage_of(None, vec![(task(0, 1, 2, 100, MB), 0)]),
            stage_of(None, vec![(task(1, 1, 3, 101, MB), 3)]),
            stage_of(None, vec![(task(2, 1, 4, 102, MB), 2)]),
        ];
        let r = analyze_placements_with_topology(
            &stages,
            &cfg,
            &AnalysisConfig::default(),
            Some(&one_island),
        );
        assert!(!r.has(Code::CrossIslandTransfer));
        // a topology for the wrong device count is ignored, not trusted
        let wrong = LinkTopology::nvlink(8, 2);
        let r2 = analyze_placements_with_topology(
            &stages,
            &cfg,
            &AnalysisConfig::default(),
            Some(&wrong),
        );
        assert!(!r2.has(Code::CrossIslandTransfer));
    }

    #[test]
    fn repaired_plan_lints_degraded_placement() {
        let stream = WorkloadSpec::new(16, 96)
            .with_repeat_rate(0.7)
            .with_vectors(3)
            .with_seed(7)
            .generate();
        let cfg = MachineConfig::mi100_like(3);
        let plan = plan_schedule(&mut RoundRobinScheduler::new(), &stream, &cfg).unwrap();
        assert!(!analyze_plan(&plan, &stream, &cfg).has(Code::DegradedPlacement));
        let repaired = micco_core::repair_plan(&plan, &[GpuId(1)]).unwrap();
        let r = analyze_plan(&repaired, &stream, &cfg);
        assert!(
            r.has(Code::DegradedPlacement),
            "repaired plan must flag W203"
        );
        assert_eq!(
            r.errors(),
            0,
            "degraded placement is a warning, not an error"
        );
        let d = &r.with_code(Code::DegradedPlacement)[0];
        assert_eq!(d.severity(), crate::Severity::Warning);
        assert_eq!(d.line, Some(2), "anchors to the scheduler line");
        assert!(d.message.contains("+repair(lost=1)"));
    }
}
