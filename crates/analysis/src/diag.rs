//! Diagnostic codes, severities, and the aggregated [`Report`].
//!
//! Codes are **stable**: once published they never change meaning or
//! number (DESIGN.md §10 carries the registry). Consumers key on the
//! string id (`MICCO-E001`), so renames here would break CI pipelines and
//! editor integrations downstream.

use micco_gpusim::GpuId;
use micco_workload::TaskId;

/// How bad a diagnostic is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Purely informational — a missed optimisation with no correctness
    /// or performance-invariant impact.
    Info,
    /// A MICCO invariant (reuse bound, balance cap, eviction hygiene) is
    /// violated; the plan runs but performs worse than it should.
    Warning,
    /// The plan cannot execute as written (capacity, structure, identity).
    Error,
}

impl Severity {
    /// Lower-case name used in JSON output and `--deny` values.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// SARIF 2.1.0 `level` for this severity.
    pub fn sarif_level(self) -> &'static str {
        match self {
            Severity::Info => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parse a user-supplied threshold (`info`/`note`, `warn`/`warning`,
    /// `error`). Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" | "note" => Some(Severity::Info),
            "warn" | "warning" | "warnings" => Some(Severity::Warning),
            "error" | "errors" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The stable diagnostic code registry (DESIGN.md §10).
///
/// `E` codes are errors (the plan cannot run as written), `W` codes are
/// warnings (a scheduling invariant of the paper is violated), `I` codes
/// are informational (wasted work that costs bandwidth, not correctness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `MICCO-E001 capacity-exceeded` — a placement needs more bytes than
    /// the device can free even after evicting every unpinned tensor.
    CapacityExceeded,
    /// `MICCO-E002 assignment-out-of-range` — an assignment targets a
    /// device outside the plan's declared `gpus` range.
    AssignmentOutOfRange,
    /// `MICCO-E003 plan-structure-mismatch` — stage/task shape disagrees
    /// with the workload (missing stage, short stage, wrong task id).
    PlanStructureMismatch,
    /// `MICCO-E004 fingerprint-mismatch` — the plan was decided for a
    /// different workload than the one offered.
    FingerprintMismatch,
    /// `MICCO-E005 device-count-mismatch` — the plan's device count
    /// differs from the machine configuration under analysis.
    DeviceCountMismatch,
    /// `MICCO-W101 reuse-bound-violated` — a placement lands on a device
    /// that fails every reuse-bound availability gate applicable to its
    /// pattern class (Alg. 1), without being the least-loaded fallback.
    ReuseBoundViolated,
    /// `MICCO-W102 balance-cap-exceeded` — a device's per-vector tensor
    /// slots exceed `max(bounds) + balanceNum` beyond the tolerated
    /// overshoot (assignments move two slots at a time).
    BalanceCapExceeded,
    /// `MICCO-W201 eviction-thrash` — a tensor was evicted from a device
    /// and re-fetched onto the same device within the thrash window.
    EvictionThrash,
    /// `MICCO-W202 missed-reuse` — a `TwoRepeatedSame`/`OneRepeated`-style
    /// pair was placed off a resident device the bounds allowed (Fig. 4:
    /// a free reuse left on the table).
    MissedReuse,
    /// `MICCO-I301 dead-transfer` — an evicted tensor paid a write-back to
    /// the host but is never used again; the transfer moved dead data.
    DeadTransfer,
    /// `MICCO-W203 degraded-placement` — the plan carries a `+repair(…)`
    /// lineage marker: it was re-placed onto surviving devices after a
    /// permanent loss, so its placements no longer reflect the original
    /// scheduler's reuse/balance decisions.
    DegradedPlacement,
    /// `MICCO-W204 cross-island-transfer-on-reducible-path` — under the
    /// link topology supplied to the analyzer, a fetch crossed an NVLink
    /// island (or a node) while another device on the *same* island as the
    /// destination also held the operand: the expensive hop was avoidable
    /// without changing the placement.
    CrossIslandTransfer,
    /// `MICCO-E006 trace-plan-divergence` — an executed trace is not a
    /// linearization of its plan's dependence DAG: a planned task is
    /// missing, duplicated or forged, ran on an unexplained device, a
    /// transfer disagrees with the replayed source, or a
    /// producer→consumer edge runs backwards in time.
    TracePlanDivergence,
    /// `MICCO-W205 unordered-conflicting-access` — a task's compute span
    /// starts before its own input-transfer span ends: the kernel read
    /// operands while the copy engine was still writing them.
    UnorderedConflictingAccess,
    /// `MICCO-W206 barrier-overlap` — spans attributed to adjacent stages
    /// overlap on one device: the stage barrier did not separate them.
    BarrierOverlap,
    /// `MICCO-I302 steal-provenance` — informational chain of custody for
    /// a stolen task: which worker gave it up, which worker ran it.
    StealProvenance,
}

impl Code {
    /// Every code, in registry order (drives the SARIF rules array, so
    /// `ruleIndex` values stay stable).
    pub const ALL: [Code; 16] = [
        Code::CapacityExceeded,
        Code::AssignmentOutOfRange,
        Code::PlanStructureMismatch,
        Code::FingerprintMismatch,
        Code::DeviceCountMismatch,
        Code::ReuseBoundViolated,
        Code::BalanceCapExceeded,
        Code::EvictionThrash,
        Code::MissedReuse,
        Code::DeadTransfer,
        Code::DegradedPlacement,
        Code::CrossIslandTransfer,
        Code::TracePlanDivergence,
        Code::UnorderedConflictingAccess,
        Code::BarrierOverlap,
        Code::StealProvenance,
    ];

    /// Stable string id, e.g. `"MICCO-E001"`.
    pub fn id(self) -> &'static str {
        match self {
            Code::CapacityExceeded => "MICCO-E001",
            Code::AssignmentOutOfRange => "MICCO-E002",
            Code::PlanStructureMismatch => "MICCO-E003",
            Code::FingerprintMismatch => "MICCO-E004",
            Code::DeviceCountMismatch => "MICCO-E005",
            Code::ReuseBoundViolated => "MICCO-W101",
            Code::BalanceCapExceeded => "MICCO-W102",
            Code::EvictionThrash => "MICCO-W201",
            Code::MissedReuse => "MICCO-W202",
            Code::DeadTransfer => "MICCO-I301",
            Code::DegradedPlacement => "MICCO-W203",
            Code::CrossIslandTransfer => "MICCO-W204",
            Code::TracePlanDivergence => "MICCO-E006",
            Code::UnorderedConflictingAccess => "MICCO-W205",
            Code::BarrierOverlap => "MICCO-W206",
            Code::StealProvenance => "MICCO-I302",
        }
    }

    /// Look a code up by its stable string id (`"MICCO-E006"`). Returns
    /// `None` for anything not in the registry — the CLI's
    /// `--deny MICCO-Xnnn` gate uses this to reject typos loudly.
    pub fn parse(id: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.id() == id)
    }

    /// Stable kebab-case rule name, e.g. `"capacity-exceeded"`.
    pub fn slug(self) -> &'static str {
        match self {
            Code::CapacityExceeded => "capacity-exceeded",
            Code::AssignmentOutOfRange => "assignment-out-of-range",
            Code::PlanStructureMismatch => "plan-structure-mismatch",
            Code::FingerprintMismatch => "fingerprint-mismatch",
            Code::DeviceCountMismatch => "device-count-mismatch",
            Code::ReuseBoundViolated => "reuse-bound-violated",
            Code::BalanceCapExceeded => "balance-cap-exceeded",
            Code::EvictionThrash => "eviction-thrash",
            Code::MissedReuse => "missed-reuse",
            Code::DeadTransfer => "dead-transfer",
            Code::DegradedPlacement => "degraded-placement",
            Code::CrossIslandTransfer => "cross-island-transfer-on-reducible-path",
            Code::TracePlanDivergence => "trace-plan-divergence",
            Code::UnorderedConflictingAccess => "unordered-conflicting-access",
            Code::BarrierOverlap => "barrier-overlap",
            Code::StealProvenance => "steal-provenance",
        }
    }

    /// Default severity of the code.
    pub fn severity(self) -> Severity {
        match self {
            Code::CapacityExceeded
            | Code::AssignmentOutOfRange
            | Code::PlanStructureMismatch
            | Code::FingerprintMismatch
            | Code::DeviceCountMismatch
            | Code::TracePlanDivergence => Severity::Error,
            Code::ReuseBoundViolated
            | Code::BalanceCapExceeded
            | Code::EvictionThrash
            | Code::MissedReuse
            | Code::DegradedPlacement
            | Code::CrossIslandTransfer
            | Code::UnorderedConflictingAccess
            | Code::BarrierOverlap => Severity::Warning,
            Code::DeadTransfer | Code::StealProvenance => Severity::Info,
        }
    }

    /// One-line rule description (the SARIF `shortDescription`).
    pub fn summary(self) -> &'static str {
        match self {
            Code::CapacityExceeded => {
                "a placement cannot fit device memory even after evicting every unpinned tensor"
            }
            Code::AssignmentOutOfRange => {
                "an assignment targets a device outside the plan's declared range"
            }
            Code::PlanStructureMismatch => {
                "plan stage/task structure disagrees with the workload stream"
            }
            Code::FingerprintMismatch => "the plan was decided for a different workload",
            Code::DeviceCountMismatch => {
                "the plan targets a different device count than the machine"
            }
            Code::ReuseBoundViolated => {
                "a placement fails every reuse-bound availability gate applicable to it"
            }
            Code::BalanceCapExceeded => {
                "a device's per-vector load exceeds the bound-plus-balance cap"
            }
            Code::EvictionThrash => {
                "a tensor was evicted and re-fetched onto the same device within the thrash window"
            }
            Code::MissedReuse => {
                "a pair with resident operands was placed off an available holder device"
            }
            Code::DeadTransfer => "an evicted tensor paid a write-back but is never used again",
            Code::DegradedPlacement => {
                "the plan was repaired onto surviving devices after a permanent loss"
            }
            Code::CrossIslandTransfer => {
                "a fetch crossed an island while a same-island device also held the operand"
            }
            Code::TracePlanDivergence => {
                "the executed trace is not a linearization of the plan's dependence DAG"
            }
            Code::UnorderedConflictingAccess => {
                "a task's compute span starts before its input transfer span ends"
            }
            Code::BarrierOverlap => "spans from adjacent stages overlap on one device",
            Code::StealProvenance => "chain of custody for a task run off its planned device",
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.id(), self.slug())
    }
}

/// One finding: a code, where it points in the plan, a human message, and
/// a machine-readable payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The registry code.
    pub code: Code,
    /// Stage (vector) index the finding refers to.
    pub stage: Option<usize>,
    /// Position within the stage's assignment list.
    pub index: Option<usize>,
    /// The task involved.
    pub task: Option<TaskId>,
    /// The device involved.
    pub gpu: Option<GpuId>,
    /// 1-based line in the canonical plan text (`SchedulePlan::to_text`)
    /// the finding anchors to, when the source is a plan file.
    pub line: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
    /// Machine payload: ordered key/value pairs (kept as strings so the
    /// JSON/SARIF encoders stay dependency-free).
    pub payload: Vec<(String, String)>,
}

impl Diagnostic {
    /// A diagnostic with only a code and a message; attach coordinates
    /// with the builder methods.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            stage: None,
            index: None,
            task: None,
            gpu: None,
            line: None,
            message: message.into(),
            payload: Vec::new(),
        }
    }

    /// The diagnostic's severity (delegates to the code registry).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Attach stage/index coordinates.
    pub fn at(mut self, stage: usize, index: usize) -> Self {
        self.stage = Some(stage);
        self.index = Some(index);
        self
    }

    /// Attach a stage coordinate only (stage-scoped findings).
    pub fn at_stage(mut self, stage: usize) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Attach the task involved.
    pub fn for_task(mut self, task: TaskId) -> Self {
        self.task = Some(task);
        self
    }

    /// Attach the device involved.
    pub fn on_gpu(mut self, gpu: GpuId) -> Self {
        self.gpu = Some(gpu);
        self
    }

    /// Attach a 1-based plan-text line.
    pub fn at_line(mut self, line: usize) -> Self {
        self.line = Some(line);
        self
    }

    /// Append a payload entry.
    pub fn with(mut self, key: impl Into<String>, value: impl std::fmt::Display) -> Self {
        self.payload.push((key.into(), value.to_string()));
        self
    }

    /// One-line `severity[CODE]: message (coordinates)` rendering.
    pub fn render(&self) -> String {
        let mut coords = Vec::new();
        if let Some(s) = self.stage {
            coords.push(format!("stage {s}"));
        }
        if let Some(i) = self.index {
            coords.push(format!("index {i}"));
        }
        if let Some(t) = self.task {
            coords.push(format!("task {}", t.0));
        }
        if let Some(g) = self.gpu {
            coords.push(format!("gpu {}", g.0));
        }
        if let Some(l) = self.line {
            coords.push(format!("line {l}"));
        }
        let suffix = if coords.is_empty() {
            String::new()
        } else {
            format!(" ({})", coords.join(", "))
        };
        format!(
            "{}[{}]: {}{}",
            self.severity().as_str(),
            self.code.id(),
            self.message,
            suffix
        )
    }
}

/// All diagnostics of one analysis, with severity accounting and the
/// JSON / SARIF / text encoders ([`Report::to_json`], [`Report::to_sarif`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Findings in the order the analyzer produced them (stream order for
    /// the semantic pass).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Append every finding of another report.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == sev)
            .count()
    }

    /// Error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Info-severity findings.
    pub fn infos(&self) -> usize {
        self.count(Severity::Info)
    }

    /// The worst severity present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity()).max()
    }

    /// `--deny`-style gate: true when any finding is at or above
    /// `threshold` (a CI consumer should then fail the build).
    pub fn denies(&self, threshold: Severity) -> bool {
        self.worst().is_some_and(|w| w >= threshold)
    }

    /// Whether any finding carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// All findings carrying `code`.
    pub fn with_code(&self, code: Code) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Human text rendering: one line per finding plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info(s)\n",
            self.errors(),
            self.warnings(),
            self.infos()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::parse("warn"), Some(Severity::Warning));
        assert_eq!(Severity::parse("note"), Some(Severity::Info));
        assert_eq!(Severity::parse("bogus"), None);
    }

    #[test]
    fn code_registry_is_consistent() {
        let mut ids: Vec<&str> = Code::ALL.iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Code::ALL.len(), "duplicate code ids");
        for c in Code::ALL {
            assert!(c.id().starts_with("MICCO-"));
            let class = c.id().as_bytes()[6] as char;
            let expected = match c.severity() {
                Severity::Error => 'E',
                Severity::Warning => 'W',
                Severity::Info => 'I',
            };
            assert_eq!(class, expected, "{}: id class vs severity", c.id());
            assert!(!c.slug().is_empty() && !c.summary().is_empty());
        }
    }

    #[test]
    fn code_parse_roundtrips_the_registry() {
        for c in Code::ALL {
            assert_eq!(Code::parse(c.id()), Some(c));
        }
        assert_eq!(Code::parse("MICCO-E999"), None);
        assert_eq!(Code::parse("trace-plan-divergence"), None, "ids only");
    }

    #[test]
    fn report_accounting_and_deny() {
        let mut r = Report::new();
        assert!(r.is_clean() && !r.denies(Severity::Info));
        r.push(Diagnostic::new(Code::DeadTransfer, "dead"));
        r.push(Diagnostic::new(Code::MissedReuse, "missed").at(1, 2));
        assert_eq!((r.errors(), r.warnings(), r.infos()), (0, 1, 1));
        assert_eq!(r.worst(), Some(Severity::Warning));
        assert!(r.denies(Severity::Warning) && r.denies(Severity::Info));
        assert!(!r.denies(Severity::Error));
        assert!(r.has(Code::MissedReuse) && !r.has(Code::CapacityExceeded));
        assert_eq!(r.with_code(Code::MissedReuse).len(), 1);
    }

    #[test]
    fn render_includes_coordinates() {
        let d = Diagnostic::new(Code::CapacityExceeded, "boom")
            .at(0, 3)
            .for_task(TaskId(7))
            .on_gpu(GpuId(1))
            .at_line(9)
            .with("requested", 128u64);
        let s = d.render();
        assert!(s.contains("error[MICCO-E001]"));
        assert!(s.contains("stage 0") && s.contains("task 7") && s.contains("line 9"));
        let mut r = Report::new();
        r.push(d);
        assert!(r.render_text().contains("1 error(s)"));
    }
}
