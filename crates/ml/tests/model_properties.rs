//! Property-based tests of the regression models and statistics.

use proptest::prelude::*;

use micco_ml::{
    mae, mse, r2_score, spearman, DecisionTreeRegressor, GradientBoostingRegressor,
    LinearRegression, RandomForestRegressor, Regressor, TreeParams,
};

fn rows(n: usize, d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, d), n..n + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tree and forest predictions always lie within the convex hull of the
    /// training targets (trees average leaves; no extrapolation).
    #[test]
    fn tree_and_forest_respect_target_hull(
        x in rows(30, 3),
        y in proptest::collection::vec(-100.0f64..100.0, 30),
        probe in proptest::collection::vec(-50.0f64..50.0, 3),
    ) {
        let (lo, hi) = y.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        let mut tree = DecisionTreeRegressor::new(TreeParams::default(), 0);
        tree.fit(&x, &y);
        let p = tree.predict_one(&probe);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);

        let mut forest = RandomForestRegressor::new(8, TreeParams::default(), 1);
        forest.fit(&x, &y);
        let pf = forest.predict_one(&probe);
        prop_assert!(pf >= lo - 1e-9 && pf <= hi + 1e-9);
    }

    /// A depth-unbounded tree interpolates distinct training rows exactly.
    #[test]
    fn tree_interpolates_distinct_rows(
        base in rows(20, 2),
        y in proptest::collection::vec(-10.0f64..10.0, 20),
    ) {
        // make the rows pairwise distinct on feature 0
        let x: Vec<Vec<f64>> = base
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                r[0] += i as f64 * 100.0;
                r
            })
            .collect();
        let mut tree = DecisionTreeRegressor::new(
            TreeParams { max_depth: 32, ..TreeParams::default() },
            0,
        );
        tree.fit(&x, &y);
        for (r, &t) in x.iter().zip(&y) {
            prop_assert!((tree.predict_one(r) - t).abs() < 1e-9);
        }
    }

    /// Linear regression recovers affine ground truth regardless of the
    /// coefficients.
    #[test]
    fn ols_recovers_affine_truth(
        w0 in -5.0f64..5.0,
        w1 in -5.0f64..5.0,
        b in -5.0f64..5.0,
        x in rows(25, 2),
    ) {
        let y: Vec<f64> = x.iter().map(|r| b + w0 * r[0] + w1 * r[1]).collect();
        // require non-degenerate design
        let var0: f64 = {
            let m = x.iter().map(|r| r[0]).sum::<f64>() / x.len() as f64;
            x.iter().map(|r| (r[0] - m).powi(2)).sum()
        };
        prop_assume!(var0 > 1.0);
        let mut ols = LinearRegression::new();
        ols.fit(&x, &y);
        for r in &x {
            prop_assert!((ols.predict_one(r) - (b + w0 * r[0] + w1 * r[1])).abs() < 1e-5);
        }
    }

    /// Boosting monotonically improves training fit as stages grow (squared
    /// loss, shrinkage ≤ 1).
    #[test]
    fn boosting_training_error_nonincreasing(
        x in rows(25, 1),
        y in proptest::collection::vec(-10.0f64..10.0, 25),
    ) {
        let fit_err = |stages: usize| {
            let mut g = GradientBoostingRegressor::new(
                stages,
                0.3,
                TreeParams { max_depth: 2, ..TreeParams::default() },
            );
            g.fit(&x, &y);
            mse(&y, &g.predict(&x))
        };
        let few = fit_err(2);
        let many = fit_err(30);
        prop_assert!(many <= few + 1e-9, "mse grew: {few} -> {many}");
    }

    /// Metric identities: R² of perfect prediction is 1; MSE ≥ MAE² is not
    /// generally true, but MSE ≥ 0, MAE ≥ 0, and MSE = 0 ⟺ exact.
    #[test]
    fn metric_sanity(y in proptest::collection::vec(-100.0f64..100.0, 2..40)) {
        prop_assert_eq!(r2_score(&y, &y), 1.0);
        prop_assert_eq!(mse(&y, &y), 0.0);
        prop_assert_eq!(mae(&y, &y), 0.0);
    }

    /// Spearman is bounded, symmetric, and invariant under strictly
    /// monotone transforms of either argument.
    #[test]
    fn spearman_properties(
        a in proptest::collection::vec(-100.0f64..100.0, 5..40),
    ) {
        let b: Vec<f64> = a.iter().map(|v| v * 0.5 - 3.0).collect();
        prop_assert!((spearman(&a, &b) - 1.0).abs() < 1e-9, "monotone transform must give 1");
        let cubed: Vec<f64> = a.iter().map(|v| v.powi(3)).collect();
        prop_assert!((spearman(&a, &cubed) - 1.0).abs() < 1e-9);
        let neg: Vec<f64> = a.iter().map(|v| -v).collect();
        prop_assert!((spearman(&a, &neg) + 1.0).abs() < 1e-9);
        let rho = spearman(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&rho));
    }

    /// Forest prediction is the mean of its trees — more trees never push
    /// predictions outside the single-tree range.
    #[test]
    fn forest_is_an_average(
        x in rows(20, 2),
        y in proptest::collection::vec(0.0f64..10.0, 20),
    ) {
        let mut f = RandomForestRegressor::new(16, TreeParams::default(), 9);
        f.fit(&x, &y);
        for r in x.iter().take(5) {
            let p = f.predict_one(r);
            prop_assert!((0.0..=10.0).contains(&p));
        }
    }
}
