//! Spearman's rank correlation coefficient (Fig. 5's heatmap metric).
//!
//! Spearman ρ is the Pearson correlation of the rank-transformed variables;
//! it captures monotone (not necessarily linear) relations, which is exactly
//! why the paper uses it to relate data characteristics, reuse bounds, and
//! GFLOPS. Ties receive average ranks (the standard treatment).

/// Average-rank transform of a sample.
fn ranks(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // group of ties [i, j)
        let mut j = i + 1;
        while j < n && v[order[j]] == v[order[i]] {
            j += 1;
        }
        // ranks are 1-based; the group shares the average rank
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &order[i..j] {
            out[k] = avg;
        }
        i = j;
    }
    out
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va * vb).sqrt()
    }
}

/// Spearman's ρ between two equal-length samples. Constant inputs yield 0
/// (no monotone information).
///
/// # Examples
///
/// ```
/// use micco_ml::spearman;
///
/// // monotone but wildly non-linear: ρ is still exactly 1
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 8.0, 27.0, 64.0];
/// assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(a.len() >= 2, "need at least two observations");
    pearson(&ranks(a), &ranks(b))
}

/// Pairwise Spearman matrix over columns: `columns[i]` is one variable's
/// sample. Entry `[i][j]` is `ρ(columns[i], columns[j])`.
pub fn spearman_matrix(columns: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = columns.len();
    let mut m = vec![vec![0.0; k]; k];
    for (i, ci) in columns.iter().enumerate() {
        m[i][i] = 1.0;
        for (j, cj) in columns.iter().enumerate().skip(i + 1) {
            let rho = spearman(ci, cj);
            m[i][j] = rho;
            m[j][i] = rho;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 100.0, 1000.0, 10000.0]; // nonlinear but monotone
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_antitone_is_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_input_is_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(spearman(&a, &b), 0.0);
    }

    #[test]
    fn ties_get_average_ranks() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0, 5.0, 5.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn bounded_in_minus_one_one() {
        // pseudo-random but deterministic samples
        let a: Vec<f64> = (0..50).map(|i| ((i * 2654435761u64) % 97) as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| ((i * 40503 + 7) % 89) as f64).collect();
        let rho = spearman(&a, &b);
        assert!((-1.0..=1.0).contains(&rho));
    }

    #[test]
    fn symmetric() {
        let a = [3.0, 1.0, 4.0, 1.5, 9.0];
        let b = [2.0, 7.0, 1.0, 8.0, 2.0];
        assert!((spearman(&a, &b) - spearman(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn matrix_diagonal_and_symmetry() {
        let cols = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 1.0, 4.0, 3.0],
            vec![4.0, 3.0, 2.0, 1.0],
        ];
        let m = spearman_matrix(&cols);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, m[j][i]);
            }
        }
        assert!((m[0][2] + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        let _ = spearman(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "two observations")]
    fn single_observation_panics() {
        let _ = spearman(&[1.0], &[1.0]);
    }
}
