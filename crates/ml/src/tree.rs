//! CART regression tree: variance-reduction splits, arena-allocated nodes.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::Regressor;

/// Hyper-parameters of a regression tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum rows required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum rows that must land in each child.
    pub min_samples_leaf: usize,
    /// Number of features considered per split; `None` = all features.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    params: TreeParams,
    nodes: Vec<Node>,
    seed: u64,
}

impl DecisionTreeRegressor {
    /// Unfitted tree with the given parameters; `seed` drives the feature
    /// subsampling when `max_features` is set.
    pub fn new(params: TreeParams, seed: u64) -> Self {
        DecisionTreeRegressor {
            params,
            nodes: Vec::new(),
            seed,
        }
    }

    /// Whether [`Regressor::fit`] has been called.
    pub fn is_fitted(&self) -> bool {
        !self.nodes.is_empty()
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (leaf-only tree = 0).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, left).max(walk(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Fit on the subset of rows given by `indices` (used by ensembles for
    /// bootstrap samples; indices may repeat).
    pub fn fit_indices(&mut self, x: &[Vec<f64>], y: &[f64], indices: &[usize]) {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        assert!(!indices.is_empty(), "cannot fit on zero rows");
        self.nodes.clear();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut idx = indices.to_vec();
        self.build(x, y, &mut idx, 0, &mut rng);
    }

    /// Build a subtree over `idx`, returning its node index.
    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> usize {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        let stop = depth >= self.params.max_depth
            || idx.len() < self.params.min_samples_split
            || idx.iter().all(|&i| y[i] == y[idx[0]]);
        if stop {
            return self.push(Node::Leaf { value: mean });
        }
        match self.best_split(x, y, idx, rng) {
            None => self.push(Node::Leaf { value: mean }),
            Some((feature, threshold)) => {
                // Partition idx in place: left = rows with value <= threshold.
                idx.sort_by(|&a, &b| x[a][feature].total_cmp(&x[b][feature]));
                let split_at = idx.partition_point(|&i| x[i][feature] <= threshold);
                debug_assert!(split_at > 0 && split_at < idx.len());
                let node = self.push(Node::Leaf { value: 0.0 }); // placeholder
                let (l_idx, r_idx) = idx.split_at_mut(split_at);
                let left = self.build(x, y, l_idx, depth + 1, rng);
                let right = self.build(x, y, r_idx, depth + 1, rng);
                self.nodes[node] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                node
            }
        }
    }

    fn push(&mut self, n: Node) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    /// Best (feature, threshold) by sum-of-squared-error reduction, or
    /// `None` when no split satisfies the leaf-size constraint.
    fn best_split(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[usize],
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let n_features = x[0].len();
        let mut features: Vec<usize> = (0..n_features).collect();
        if let Some(k) = self.params.max_features {
            features.shuffle(rng);
            features.truncate(k.clamp(1, n_features));
        }

        let n = idx.len() as f64;
        let total_sum: f64 = idx.iter().map(|&i| y[i]).sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse_gain)

        let mut order = idx.to_vec();
        for &f in &features {
            order.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
            // prefix scan: try splitting after each position
            let mut left_sum = 0.0;
            for (pos, &i) in order.iter().enumerate().take(order.len() - 1) {
                left_sum += y[i];
                let nl = (pos + 1) as f64;
                let nr = n - nl;
                // skip non-boundaries (equal feature values must stay together)
                if x[i][f] == x[order[pos + 1]][f] {
                    continue;
                }
                if (pos + 1) < self.params.min_samples_leaf
                    || (order.len() - pos - 1) < self.params.min_samples_leaf
                {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                // SSE reduction ∝ nl*mean_l² + nr*mean_r² (total is constant)
                let gain = left_sum * left_sum / nl + right_sum * right_sum / nr;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    let threshold = (x[i][f] + x[order[pos + 1]][f]) / 2.0;
                    best = Some((f, threshold, gain));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        let idx: Vec<usize> = (0..x.len()).collect();
        self.fit_indices(x, y, &idx);
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        assert!(self.is_fitted(), "predict before fit");
        let mut i = 0;
        loop {
            match self.nodes[i] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn grid_xy() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 1 if x0 > 0.5 else 0 — one split suffices
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        (x, y)
    }

    #[test]
    fn perfectly_fits_a_step() {
        let (x, y) = grid_xy();
        let mut t = DecisionTreeRegressor::new(TreeParams::default(), 0);
        t.fit(&x, &y);
        assert_eq!(t.predict(&x), y);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn depth_zero_is_mean_predictor() {
        let (x, y) = grid_xy();
        let mut t = DecisionTreeRegressor::new(
            TreeParams {
                max_depth: 0,
                ..TreeParams::default()
            },
            0,
        );
        t.fit(&x, &y);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        for p in t.predict(&x) {
            assert!((p - mean).abs() < 1e-12);
        }
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = grid_xy();
        let mut t = DecisionTreeRegressor::new(
            TreeParams {
                min_samples_leaf: 8,
                ..TreeParams::default()
            },
            0,
        );
        t.fit(&x, &y);
        // With 20 rows and min leaf 8, only splits at positions 8..12 are
        // allowed — the tree can still cut near the middle but no deeper
        // than a couple of levels.
        assert!(t.depth() <= 2);
    }

    #[test]
    fn fits_xor_like_interaction() {
        // y = 1 iff (x0 > .5) xor (x1 > .5): requires depth 2, defeats any
        // single split / linear model
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let a = i as f64 / 9.0;
                let b = j as f64 / 9.0;
                x.push(vec![a, b]);
                y.push(if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 });
            }
        }
        let mut t = DecisionTreeRegressor::new(TreeParams::default(), 0);
        t.fit(&x, &y);
        assert!(r2_score(&y, &t.predict(&x)) > 0.99);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 10];
        let mut t = DecisionTreeRegressor::new(TreeParams::default(), 0);
        t.fit(&x, &y);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_one(&[3.0]), 5.0);
    }

    #[test]
    fn duplicate_feature_values_dont_split_apart() {
        // all rows identical features, different targets → no valid split
        let x = vec![vec![1.0]; 6];
        let y = vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let mut t = DecisionTreeRegressor::new(TreeParams::default(), 0);
        t.fit(&x, &y);
        assert_eq!(t.node_count(), 1);
        assert!((t.predict_one(&[1.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fit_indices_uses_only_given_rows() {
        let (x, y) = grid_xy();
        let mut t = DecisionTreeRegressor::new(TreeParams::default(), 0);
        // fit only on rows where y == 0
        let idx: Vec<usize> = (0..10).collect();
        t.fit_indices(&x, &y, &idx);
        assert_eq!(t.predict_one(&[0.9]), 0.0);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let t = DecisionTreeRegressor::new(TreeParams::default(), 0);
        let _ = t.predict_one(&[0.0]);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        let mut t = DecisionTreeRegressor::new(TreeParams::default(), 0);
        t.fit_indices(&[], &[], &[]);
    }

    #[test]
    fn deterministic_with_feature_subsampling() {
        let (x, y) = grid_xy();
        let params = TreeParams {
            max_features: Some(1),
            ..TreeParams::default()
        };
        let mut t1 = DecisionTreeRegressor::new(params, 42);
        let mut t2 = DecisionTreeRegressor::new(params, 42);
        t1.fit(&x, &y);
        t2.fit(&x, &y);
        assert_eq!(t1.predict(&x), t2.predict(&x));
    }
}
