#![warn(missing_docs)]

//! # micco-ml
//!
//! From-scratch regression models for MICCO's reuse-bound predictor.
//!
//! The paper (Sec. IV-C, Table IV) trains three regressors mapping the data
//! characteristics of a vector (vector size, tensor size, data distribution,
//! repeated rate) to the optimal reuse-bound setting, and picks Random
//! Forest for its accuracy (R² 0.95, vs 0.91 gradient boosting and 0.57
//! linear regression — the relation is non-linear). This crate implements
//! the same three model classes with the paper's hyper-parameters (150
//! trees / 150 boosting stages at learning rate 0.1), plus the metrics used
//! in the paper: R² (Table IV) and Spearman's rank correlation (Fig. 5).
//!
//! Everything is dependency-free except `rand` (bootstrap sampling) and
//! fully deterministic given a seed.

pub mod dataset;
pub mod forest;
pub mod gbm;
pub mod linear;
pub mod metrics;
pub mod spearman;
pub mod tree;

pub use dataset::Dataset;
pub use forest::RandomForestRegressor;
pub use gbm::GradientBoostingRegressor;
pub use linear::LinearRegression;
pub use metrics::{mae, mse, r2_score};
pub use spearman::{spearman, spearman_matrix};
pub use tree::{DecisionTreeRegressor, TreeParams};

/// Common interface of all regressors in this crate.
pub trait Regressor {
    /// Fit the model to rows `x` (each of equal width) and targets `y`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);
    /// Predict the target for one feature row.
    fn predict_one(&self, row: &[f64]) -> f64;
    /// Predict targets for many rows.
    fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All three model classes must fit a noiseless linear function well and
    /// the nonlinear ones must beat linear regression on a step function —
    /// the qualitative fact Table IV rests on.
    #[test]
    fn nonlinear_models_beat_linear_on_step_function() {
        let n = 240;
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| {
                if r[0] < 0.3 {
                    0.0
                } else if r[0] < 0.7 {
                    2.0
                } else {
                    1.0
                }
            })
            .collect();

        let mut lin = LinearRegression::new();
        lin.fit(&x, &y);
        let mut rf = RandomForestRegressor::paper_default(0);
        rf.fit(&x, &y);
        let mut gb = GradientBoostingRegressor::paper_default();
        gb.fit(&x, &y);

        let r2_lin = r2_score(&y, &lin.predict(&x));
        let r2_rf = r2_score(&y, &rf.predict(&x));
        let r2_gb = r2_score(&y, &gb.predict(&x));
        assert!(r2_rf > 0.9, "rf r2 {r2_rf}");
        assert!(r2_gb > 0.9, "gb r2 {r2_gb}");
        assert!(r2_lin < 0.8, "lin r2 {r2_lin}");
        assert!(r2_rf > r2_lin && r2_gb > r2_lin);
    }
}
