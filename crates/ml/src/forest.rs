//! Random-forest regression: bagged CART trees, averaged predictions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tree::{DecisionTreeRegressor, TreeParams};
use crate::Regressor;

/// A random forest of regression trees.
///
/// The paper uses 150 trees (Sec. IV-C). Each tree is fitted on a bootstrap
/// sample of the rows; predictions average across trees.
///
/// # Examples
///
/// ```
/// use micco_ml::{RandomForestRegressor, Regressor, TreeParams};
///
/// // y = step(x): trees capture it exactly, linear models cannot
/// let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = x.iter().map(|r| if r[0] < 20.0 { 0.0 } else { 5.0 }).collect();
/// let mut forest = RandomForestRegressor::new(25, TreeParams::default(), 42);
/// forest.fit(&x, &y);
/// assert!(forest.predict_one(&[3.0]) < 1.0);
/// assert!(forest.predict_one(&[33.0]) > 4.0);
/// ```
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    n_trees: usize,
    tree_params: TreeParams,
    seed: u64,
    trees: Vec<DecisionTreeRegressor>,
}

impl RandomForestRegressor {
    /// Forest with explicit hyper-parameters.
    pub fn new(n_trees: usize, tree_params: TreeParams, seed: u64) -> Self {
        assert!(n_trees > 0, "need at least one tree");
        RandomForestRegressor {
            n_trees,
            tree_params,
            seed,
            trees: Vec::new(),
        }
    }

    /// The paper's configuration: 150 trees, default CART parameters.
    pub fn paper_default(seed: u64) -> Self {
        RandomForestRegressor::new(150, TreeParams::default(), seed)
    }

    /// Number of trees requested.
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Whether the forest has been fitted.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }
}

impl RandomForestRegressor {
    /// Permutation feature importance: the increase in mean-squared error
    /// when feature `j`'s column is shuffled (deterministically, by `seed`),
    /// normalised by the baseline MSE. Larger = the model leans on that
    /// feature harder; ≈0 = the feature is ignored.
    pub fn permutation_importance(&self, x: &[Vec<f64>], y: &[f64], seed: u64) -> Vec<f64> {
        assert!(self.is_fitted(), "importance before fit");
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        assert!(!x.is_empty(), "empty inputs");
        let d = x[0].len();
        let base_mse = crate::metrics::mse(y, &self.predict(x));
        let mut rng = StdRng::seed_from_u64(seed);
        (0..d)
            .map(|j| {
                // shuffle column j
                let mut perm: Vec<usize> = (0..x.len()).collect();
                use rand::seq::SliceRandom;
                perm.shuffle(&mut rng);
                let shuffled: Vec<Vec<f64>> = x
                    .iter()
                    .enumerate()
                    .map(|(i, row)| {
                        let mut r = row.clone();
                        r[j] = x[perm[i]][j];
                        r
                    })
                    .collect();
                let mse_j = crate::metrics::mse(y, &self.predict(&shuffled));
                if base_mse == 0.0 {
                    mse_j
                } else {
                    (mse_j - base_mse) / base_mse
                }
            })
            .collect()
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        assert!(!x.is_empty(), "cannot fit on zero rows");
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees = (0..self.n_trees)
            .map(|t| {
                let indices: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
                let mut tree =
                    DecisionTreeRegressor::new(self.tree_params, self.seed.wrapping_add(t as u64));
                tree.fit_indices(x, y, &indices);
                tree
            })
            .collect();
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        assert!(self.is_fitted(), "predict before fit");
        self.trees.iter().map(|t| t.predict_one(row)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn noisy_quadratic(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // deterministic pseudo-noise so the test is stable
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, r)| r[0] * r[0] * 4.0 + ((i * 2654435761) % 100) as f64 / 1000.0)
            .collect();
        (x, y)
    }

    #[test]
    fn fits_quadratic_well() {
        let (x, y) = noisy_quadratic(200);
        let mut rf = RandomForestRegressor::new(40, TreeParams::default(), 1);
        rf.fit(&x, &y);
        assert!(r2_score(&y, &rf.predict(&x)) > 0.97);
    }

    #[test]
    fn prediction_within_target_hull() {
        let (x, y) = noisy_quadratic(100);
        let mut rf = RandomForestRegressor::new(20, TreeParams::default(), 2);
        rf.fit(&x, &y);
        let (lo, hi) = y
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        for p in rf.predict(&x) {
            assert!(
                p >= lo - 1e-9 && p <= hi + 1e-9,
                "prediction {p} outside [{lo}, {hi}]"
            );
        }
        // extrapolation is also clamped to the hull (trees cannot extrapolate)
        let far = rf.predict_one(&[100.0]);
        assert!(far >= lo && far <= hi);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_quadratic(80);
        let mut a = RandomForestRegressor::new(10, TreeParams::default(), 7);
        let mut b = RandomForestRegressor::new(10, TreeParams::default(), 7);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
        let mut c = RandomForestRegressor::new(10, TreeParams::default(), 8);
        c.fit(&x, &y);
        assert_ne!(a.predict(&x), c.predict(&x));
    }

    #[test]
    fn more_trees_smooth_predictions() {
        let (x, y) = noisy_quadratic(150);
        let fit_r2 = |n: usize| {
            let mut rf = RandomForestRegressor::new(n, TreeParams::default(), 3);
            rf.fit(&x, &y);
            r2_score(&y, &rf.predict(&x))
        };
        // both good; mainly assert the big forest isn't degenerate
        assert!(fit_r2(50) > 0.9);
        assert!(fit_r2(1) > 0.5);
    }

    #[test]
    fn permutation_importance_finds_the_real_feature() {
        // y depends only on feature 0; feature 1 is noise
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, ((i * 7919) % 97) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * 2.0).collect();
        let mut rf = RandomForestRegressor::new(20, TreeParams::default(), 4);
        rf.fit(&x, &y);
        let imp = rf.permutation_importance(&x, &y, 11);
        assert_eq!(imp.len(), 2);
        assert!(
            imp[0] > imp[1] * 10.0 + 0.1,
            "feature 0 importance {} must dominate noise {}",
            imp[0],
            imp[1]
        );
    }

    #[test]
    #[should_panic(expected = "importance before fit")]
    fn importance_before_fit_panics() {
        let rf = RandomForestRegressor::new(3, TreeParams::default(), 0);
        let _ = rf.permutation_importance(&[vec![1.0]], &[1.0], 0);
    }

    #[test]
    fn paper_default_has_150_trees() {
        assert_eq!(RandomForestRegressor::paper_default(0).n_trees(), 150);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let _ = RandomForestRegressor::new(0, TreeParams::default(), 0);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let rf = RandomForestRegressor::new(3, TreeParams::default(), 0);
        let _ = rf.predict_one(&[1.0]);
    }
}
