//! Regression quality metrics.

/// Coefficient of determination R² (Table IV's metric): `1 − SS_res/SS_tot`.
/// A constant-target truth returns 1.0 for exact predictions and 0.0
/// otherwise (SS_tot = 0 convention).
pub fn r2_score(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty inputs");
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Mean squared error.
pub fn mse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty inputs");
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).powi(2))
        .sum::<f64>()
        / truth.len() as f64
}

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty inputs");
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_r2_is_one() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(r2_score(&y, &y), 1.0);
    }

    #[test]
    fn mean_prediction_r2_is_zero() {
        let y = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r2_score(&y, &pred).abs() < 1e-12);
    }

    #[test]
    fn bad_prediction_r2_negative() {
        let y = [1.0, 2.0, 3.0];
        let pred = [3.0, 2.0, 1.0];
        assert!(r2_score(&y, &pred) < 0.0);
    }

    #[test]
    fn constant_truth_conventions() {
        let y = [5.0, 5.0];
        assert_eq!(r2_score(&y, &[5.0, 5.0]), 1.0);
        assert_eq!(r2_score(&y, &[5.0, 6.0]), 0.0);
    }

    #[test]
    fn mse_and_mae() {
        let y = [0.0, 0.0, 0.0, 0.0];
        let p = [1.0, -1.0, 2.0, -2.0];
        assert!((mse(&y, &p) - 2.5).abs() < 1e-12);
        assert!((mae(&y, &p) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatch_panics() {
        let _ = r2_score(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = mse(&[], &[]);
    }
}
