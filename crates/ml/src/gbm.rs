//! Gradient-boosted regression trees (squared loss).

use crate::tree::{DecisionTreeRegressor, TreeParams};
use crate::Regressor;

/// Gradient boosting with least-squares loss: each stage fits a shallow
/// CART tree to the current residuals and is added with a learning rate.
///
/// The paper's configuration is 150 boosting stages at learning rate 0.1
/// (Sec. IV-C).
#[derive(Debug, Clone)]
pub struct GradientBoostingRegressor {
    n_stages: usize,
    learning_rate: f64,
    tree_params: TreeParams,
    base: f64,
    stages: Vec<DecisionTreeRegressor>,
}

impl GradientBoostingRegressor {
    /// Booster with explicit hyper-parameters.
    pub fn new(n_stages: usize, learning_rate: f64, tree_params: TreeParams) -> Self {
        assert!(n_stages > 0, "need at least one stage");
        assert!(learning_rate > 0.0, "learning rate must be positive");
        GradientBoostingRegressor {
            n_stages,
            learning_rate,
            tree_params,
            base: 0.0,
            stages: Vec::new(),
        }
    }

    /// The paper's configuration: 150 stages, learning rate 0.1, depth-3
    /// trees (the classic boosting weak learner).
    pub fn paper_default() -> Self {
        GradientBoostingRegressor::new(
            150,
            0.1,
            TreeParams {
                max_depth: 3,
                ..TreeParams::default()
            },
        )
    }

    /// Number of boosting stages requested.
    pub fn n_stages(&self) -> usize {
        self.n_stages
    }

    /// Whether the booster has been fitted.
    pub fn is_fitted(&self) -> bool {
        !self.stages.is_empty()
    }
}

impl Regressor for GradientBoostingRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        assert!(!x.is_empty(), "cannot fit on zero rows");
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        let mut pred = vec![self.base; y.len()];
        self.stages = Vec::with_capacity(self.n_stages);
        let idx: Vec<usize> = (0..x.len()).collect();
        for s in 0..self.n_stages {
            let residuals: Vec<f64> = y.iter().zip(&pred).map(|(t, p)| t - p).collect();
            let mut tree = DecisionTreeRegressor::new(self.tree_params, s as u64);
            tree.fit_indices(x, &residuals, &idx);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += self.learning_rate * tree.predict_one(&x[i]);
            }
            self.stages.push(tree);
        }
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        assert!(self.is_fitted(), "predict before fit");
        self.base + self.learning_rate * self.stages.iter().map(|t| t.predict_one(row)).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    fn sine(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64 * std::f64::consts::TAU])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| r[0].sin()).collect();
        (x, y)
    }

    #[test]
    fn fits_sine_closely() {
        let (x, y) = sine(200);
        let mut gb = GradientBoostingRegressor::paper_default();
        gb.fit(&x, &y);
        assert!(r2_score(&y, &gb.predict(&x)) > 0.99);
    }

    #[test]
    fn single_stage_is_shrunk_tree_plus_mean() {
        let (x, y) = sine(50);
        let mut gb = GradientBoostingRegressor::new(
            1,
            0.1,
            TreeParams {
                max_depth: 1,
                ..TreeParams::default()
            },
        );
        gb.fit(&x, &y);
        // prediction must stay close to the mean with one shrunk stage
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        for p in gb.predict(&x) {
            assert!((p - mean).abs() < 0.3);
        }
    }

    #[test]
    fn more_stages_reduce_error() {
        let (x, y) = sine(150);
        let r2 = |stages: usize| {
            let mut gb = GradientBoostingRegressor::new(
                stages,
                0.1,
                TreeParams {
                    max_depth: 3,
                    ..TreeParams::default()
                },
            );
            gb.fit(&x, &y);
            r2_score(&y, &gb.predict(&x))
        };
        let few = r2(5);
        let many = r2(100);
        assert!(
            many > few,
            "r2 with 100 stages {many} <= with 5 stages {few}"
        );
    }

    #[test]
    fn constant_target_exact() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![3.5; 10];
        let mut gb = GradientBoostingRegressor::paper_default();
        gb.fit(&x, &y);
        for p in gb.predict(&x) {
            assert!((p - 3.5).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        let (x, y) = sine(60);
        let mut a = GradientBoostingRegressor::paper_default();
        let mut b = GradientBoostingRegressor::paper_default();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn paper_default_has_150_stages() {
        assert_eq!(GradientBoostingRegressor::paper_default().n_stages(), 150);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_panics() {
        let _ = GradientBoostingRegressor::new(0, 0.1, TreeParams::default());
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_learning_rate_panics() {
        let _ = GradientBoostingRegressor::new(10, 0.0, TreeParams::default());
    }
}
