//! Feature/target container with deterministic train/test splitting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A regression dataset: rows of features and one target per row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Feature rows; all rows must share a width.
    pub x: Vec<Vec<f64>>,
    /// Targets, one per row.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Build from rows and targets (must be the same length).
    pub fn new(x: Vec<Vec<f64>>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        if let Some(w) = x.first().map(Vec::len) {
            assert!(x.iter().all(|r| r.len() == w), "ragged feature rows");
        }
        Dataset { x, y }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Append one row.
    pub fn push(&mut self, row: Vec<f64>, target: f64) {
        if let Some(first) = self.x.first() {
            assert_eq!(first.len(), row.len(), "ragged feature row");
        }
        self.x.push(row);
        self.y.push(target);
    }

    /// Deterministic shuffled split into `(train, test)` with `test_frac`
    /// of rows (rounded down, at least 1 when the set is non-empty and
    /// `test_frac > 0`) in the test set. The paper holds out 20 %.
    pub fn train_test_split(&self, test_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_frac), "test_frac in [0,1)");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_test = if self.is_empty() || test_frac == 0.0 {
            0
        } else {
            ((self.len() as f64 * test_frac) as usize).max(1)
        };
        let (test_idx, train_idx) = idx.split_at(n_test);
        let pick = |ids: &[usize]| {
            Dataset::new(
                ids.iter().map(|&i| self.x[i].clone()).collect(),
                ids.iter().map(|&i| self.y[i]).collect(),
            )
        };
        (pick(train_idx), pick(test_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        Dataset::new(
            (0..n).map(|i| vec![i as f64, (i * i) as f64]).collect(),
            (0..n).map(|i| i as f64 * 3.0).collect(),
        )
    }

    #[test]
    fn split_sizes() {
        let d = toy(100);
        let (train, test) = d.train_test_split(0.2, 7);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 80);
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let d = toy(50);
        let (a1, b1) = d.train_test_split(0.2, 1);
        let (a2, b2) = d.train_test_split(0.2, 1);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let (_, b3) = d.train_test_split(0.2, 2);
        assert_ne!(b1, b3);
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy(30);
        let (train, test) = d.train_test_split(0.3, 3);
        assert_eq!(train.len() + test.len(), d.len());
        // every original target appears exactly once across the split
        let mut all: Vec<f64> = train.y.iter().chain(&test.y).copied().collect();
        all.sort_by(f64::total_cmp);
        let mut want = d.y.clone();
        want.sort_by(f64::total_cmp);
        assert_eq!(all, want);
    }

    #[test]
    fn zero_frac_gives_empty_test() {
        let (train, test) = toy(10).train_test_split(0.0, 0);
        assert_eq!(train.len(), 10);
        assert!(test.is_empty());
    }

    #[test]
    fn tiny_fraction_still_yields_one_test_row() {
        let (_, test) = toy(10).train_test_split(0.01, 0);
        assert_eq!(test.len(), 1);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = Dataset::new(vec![vec![1.0]], vec![]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 0.0]);
    }

    #[test]
    fn push_appends() {
        let mut d = Dataset::default();
        d.push(vec![1.0, 2.0], 3.0);
        d.push(vec![4.0, 5.0], 6.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.y, vec![3.0, 6.0]);
    }
}
