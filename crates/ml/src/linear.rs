//! Ordinary least squares via normal equations.

use crate::Regressor;

/// Linear regression `y ≈ w·x + b`, solved by Gaussian elimination on the
/// normal equations with a tiny ridge term for numerical safety (feature
/// counts here are single digits, so this is exact in practice).
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    weights: Vec<f64>,
    intercept: f64,
    fitted: bool,
}

impl LinearRegression {
    /// Unfitted model.
    pub fn new() -> Self {
        LinearRegression::default()
    }

    /// Fitted coefficients (without intercept).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Whether [`Regressor::fit`] has been called.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len(), "x and y must have equal length");
        assert!(!x.is_empty(), "cannot fit on zero rows");
        let d = x[0].len() + 1; // +1 intercept column
                                // Build Xᵀ X and Xᵀ y with an implicit leading 1 per row.
        let mut a = vec![vec![0.0; d]; d];
        let mut b = vec![0.0; d];
        for (row, &target) in x.iter().zip(y) {
            let aug = |j: usize| if j == 0 { 1.0 } else { row[j - 1] };
            for i in 0..d {
                b[i] += aug(i) * target;
                for (j, cell) in a[i].iter_mut().enumerate() {
                    *cell += aug(i) * aug(j);
                }
            }
        }
        // Ridge jitter keeps degenerate designs solvable.
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        let w = solve(a, b);
        self.intercept = w[0];
        self.weights = w[1..].to_vec();
        self.fitted = true;
    }

    fn predict_one(&self, row: &[f64]) -> f64 {
        assert!(self.fitted, "predict before fit");
        assert_eq!(row.len(), self.weights.len(), "feature width mismatch");
        self.intercept
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, v)| w * v)
                .sum::<f64>()
    }
}

/// Gaussian elimination with partial pivoting for a small dense system.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // pivot
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 0.0, "singular system");
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            if factor == 0.0 {
                continue;
            }
            let pivot_row = a[col].clone();
            for (k, cell) in a[row].iter_mut().enumerate().skip(col) {
                *cell -= factor * pivot_row[k];
            }
            b[row] -= factor * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in (col + 1)..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;

    #[test]
    fn recovers_exact_linear_function() {
        // y = 3 + 2·x0 − 5·x1
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64 * 0.1, (i * i) as f64 * 0.01])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 + 2.0 * r[0] - 5.0 * r[1]).collect();
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        assert!((m.intercept() - 3.0).abs() < 1e-6);
        assert!((m.weights()[0] - 2.0).abs() < 1e-6);
        assert!((m.weights()[1] + 5.0).abs() < 1e-6);
        assert!(r2_score(&y, &m.predict(&x)) > 0.999999);
    }

    #[test]
    fn single_feature() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        assert!((m.predict_one(&[20.0]) - 41.0).abs() < 1e-6);
    }

    #[test]
    fn constant_target() {
        let x: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let y = vec![7.0; 5];
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        assert!((m.predict_one(&[100.0]) - 7.0).abs() < 1e-5);
    }

    #[test]
    fn degenerate_duplicate_feature_does_not_crash() {
        // two identical columns: singular XᵀX without the ridge jitter
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| 3.0 * i as f64).collect();
        let mut m = LinearRegression::new();
        m.fit(&x, &y);
        // prediction still correct even though the split between the two
        // weights is arbitrary
        assert!((m.predict_one(&[10.0, 10.0]) - 30.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let m = LinearRegression::new();
        let _ = m.predict_one(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut m = LinearRegression::new();
        m.fit(&[vec![1.0], vec![2.0]], &[1.0, 2.0]);
        let _ = m.predict_one(&[1.0, 2.0]);
    }
}
