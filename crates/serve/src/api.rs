//! The JSON wire format and request routing.
//!
//! One config grammar: the `config` object in a submission body is
//! exactly a [`SessionConfig`] document — the same schema `micco plan
//! --config` and `micco run --config` accept, so a config file tested
//! on the CLI submits to the daemon unchanged.
//!
//! Endpoints:
//!
//! | method | path                  | body                                  |
//! |--------|-----------------------|---------------------------------------|
//! | POST   | `/v1/jobs`            | `{"tenant", "priority"?, "config"?}`  |
//! | GET    | `/v1/jobs`            | —                                     |
//! | GET    | `/v1/jobs/<id>`       | —                                     |
//! | POST   | `/v1/jobs/<id>/cancel`| —                                     |
//! | GET    | `/v1/jobs/<id>/result`| —                                     |
//! | GET    | `/metrics`            | —                                     |
//! | GET    | `/healthz`            | —                                     |

use std::sync::Arc;

use micco_core::SessionConfig;
use micco_obs::{ObjBuilder, Value};

use crate::http::{Request, Response};
use crate::sched::Priority;
use crate::service::{JobRecord, JobState, Scheduling};

/// A parsed submission body.
#[derive(Debug, Clone)]
pub struct Submission {
    /// The submitting tenant.
    pub tenant: String,
    /// Explicit priority override (defaults to the tenant's class).
    pub priority: Option<Priority>,
    /// The job's session config (defaults when omitted).
    pub config: SessionConfig,
}

impl Submission {
    /// Parse a submission body. Unknown top-level keys are rejected so
    /// typos fail loudly instead of silently running defaults.
    pub fn parse(body: &str) -> Result<Submission, String> {
        let v = Value::parse(body).map_err(|e| e.to_string())?;
        let obj = v
            .as_obj()
            .ok_or_else(|| "submission body must be a JSON object".to_owned())?;
        for key in obj.keys() {
            if !matches!(key.as_str(), "tenant" | "priority" | "config") {
                return Err(format!(
                    "unknown submission key '{key}' (tenant|priority|config)"
                ));
            }
        }
        let tenant = obj
            .get("tenant")
            .and_then(Value::as_str)
            .ok_or_else(|| "submission needs a string 'tenant'".to_owned())?
            .to_owned();
        let priority = match obj.get("priority") {
            Some(p) => Some(Priority::parse(p.as_str().ok_or_else(|| {
                "'priority' must be a string (high|normal|low)".to_owned()
            })?)?),
            None => None,
        };
        let config = match obj.get("config") {
            Some(c) => SessionConfig::from_value(c).map_err(|e| e.to_string())?,
            None => SessionConfig::default(),
        };
        Ok(Submission {
            tenant,
            priority,
            config,
        })
    }
}

/// `{"error": msg}`.
pub fn error_body(msg: &str) -> String {
    ObjBuilder::new().field("error", msg).build().to_json()
}

fn result_value(r: &crate::service::JobResult) -> Value {
    ObjBuilder::new()
        .field("scheduler", r.scheduler.as_str())
        .field("gflops", r.gflops)
        .field("sim_elapsed_ms", r.sim_elapsed_ms)
        .field("plan_stages", r.plan_stages)
        .field("plan_tasks", r.plan_tasks)
        .field("warm", r.warm)
        .field("plan_ms", r.plan_ms)
        .field("exec_ms", r.exec_ms)
        .build()
}

/// The full job record as a JSON value.
pub fn job_value(job: &JobRecord) -> Value {
    ObjBuilder::new()
        .field("id", job.id)
        .field("tenant", job.tenant.as_str())
        .field("priority", job.priority.as_str())
        .field("state", job.state.as_str())
        .field("gpus", job.gpus)
        .opt("dispatch_seq", job.dispatch_seq)
        .opt("wait_ms", job.wait_ms)
        .opt("total_ms", job.total_ms)
        .opt("result", job.result.as_ref().map(result_value))
        .opt("error", job.error.as_deref())
        .build()
}

fn parse_job_path(path: &str) -> Option<(u64, Option<&str>)> {
    let rest = path.strip_prefix("/v1/jobs/")?;
    match rest.split_once('/') {
        Some((id, action)) => Some((id.parse().ok()?, Some(action))),
        None => Some((rest.parse().ok()?, None)),
    }
}

/// Route one request against the shared scheduling state.
pub fn handle(req: &Request, shared: &Arc<Scheduling>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"ok\":true}"),
        ("GET", "/metrics") => Response::text(200, shared.metrics().snapshot().to_text()),
        ("POST", "/v1/jobs") => submit(req, shared),
        ("GET", "/v1/jobs") => {
            let jobs: Vec<Value> = shared.jobs().iter().map(job_value).collect();
            let body = ObjBuilder::new().field("jobs", Value::Arr(jobs)).build();
            Response::json(200, body.to_json())
        }
        (method, path) => match parse_job_path(path) {
            Some((id, None)) if method == "GET" => match shared.job(id) {
                Some(job) => Response::json(200, job_value(&job).to_json()),
                None => Response::json(404, error_body(&format!("unknown job {id}"))),
            },
            Some((id, Some("cancel"))) if method == "POST" => match shared.cancel(id) {
                Ok(state) => {
                    let body = ObjBuilder::new()
                        .field("id", id)
                        .field("state", state.as_str())
                        .build();
                    Response::json(202, body.to_json())
                }
                Err(msg) if msg.starts_with("unknown") => Response::json(404, error_body(&msg)),
                Err(msg) => Response::json(409, error_body(&msg)),
            },
            Some((id, Some("result"))) if method == "GET" => match shared.job(id) {
                Some(job) if job.state.is_terminal() => {
                    Response::json(200, job_value(&job).to_json())
                }
                Some(job) => Response::json(
                    409,
                    error_body(&format!("job {id} is still {}", job.state.as_str())),
                ),
                None => Response::json(404, error_body(&format!("unknown job {id}"))),
            },
            Some(_) => Response::json(405, error_body("method not allowed")),
            None => Response::json(404, error_body(&format!("no route for {path}"))),
        },
    }
}

fn submit(req: &Request, shared: &Arc<Scheduling>) -> Response {
    let body = match req.body_utf8() {
        Ok(b) => b,
        Err(msg) => return Response::json(400, error_body(&msg)),
    };
    let sub = match Submission::parse(body) {
        Ok(s) => s,
        Err(msg) => return Response::json(400, error_body(&msg)),
    };
    match shared.submit(&sub.tenant, sub.priority, sub.config) {
        Ok(id) => {
            let body = ObjBuilder::new()
                .field("id", id)
                .field("state", JobState::Queued.as_str())
                .build();
            Response::json(201, body.to_json())
        }
        Err(e) => Response::json(e.status(), error_body(&e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_grammar() {
        let s = Submission::parse(
            "{\"tenant\":\"acme\",\"priority\":\"high\",\"config\":{\"gpus\":4}}",
        )
        .unwrap();
        assert_eq!(s.tenant, "acme");
        assert_eq!(s.priority, Some(Priority::High));
        assert_eq!(s.config.gpus, 4);
        // config and priority default
        let s = Submission::parse("{\"tenant\":\"t\"}").unwrap();
        assert_eq!(s.priority, None);
        assert_eq!(s.config, SessionConfig::default());
        // failures are loud
        assert!(Submission::parse("{}").is_err(), "tenant required");
        assert!(Submission::parse("{\"tenant\":\"t\",\"prio\":\"high\"}").is_err());
        assert!(Submission::parse("{\"tenant\":\"t\",\"priority\":\"urgent\"}").is_err());
        assert!(
            Submission::parse("{\"tenant\":\"t\",\"config\":{\"gpsu\":4}}").is_err(),
            "config typos rejected by the shared grammar"
        );
        assert!(Submission::parse("not json").is_err());
    }

    #[test]
    fn job_paths_parse() {
        assert_eq!(parse_job_path("/v1/jobs/7"), Some((7, None)));
        assert_eq!(
            parse_job_path("/v1/jobs/7/cancel"),
            Some((7, Some("cancel")))
        );
        assert_eq!(parse_job_path("/v1/jobs/x"), None);
        assert_eq!(parse_job_path("/other"), None);
    }
}
