//! The scheduling service: job table, admission queue, dispatcher and
//! executor threads over one shared simulated GPU pool.
//!
//! Two scheduling levels compose here. This module decides *which job
//! runs next* (priority classes + weighted fair share, see
//! [`crate::sched`]); each dispatched job then plans its own placement
//! through the existing per-job [`micco_core::Session`] machinery —
//! hitting the shared [`micco_core::DurablePlanCache`] for warm starts
//! — and replays on a
//! simulator sized to its GPU request. Running jobs hold GPUs out of the
//! shared pool; `time_scale` optionally converts simulated seconds into
//! wall-clock hold time so the pool exhibits real contention.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use micco_core::{DurablePlanCache, SessionConfig};
use micco_obs::MetricsRegistry;

use crate::sched::{
    admission_victim, estimated_bytes, pick_next, Candidate, Priority, TenantSpec, TenantState,
};

/// Service configuration (the daemon-level knobs; per-job knobs live in
/// [`SessionConfig`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Size of the shared simulated GPU pool.
    pub pool_gpus: usize,
    /// Admission queue depth; submissions beyond it are rejected (429)
    /// unless they outrank a queued job.
    pub max_queue: usize,
    /// Fraction of the pool's total memory a single job's estimated
    /// working set may claim before being rejected outright (413).
    pub mem_headroom: f64,
    /// Durable plan store directory shared by all jobs (warm starts).
    pub store: Option<PathBuf>,
    /// Wall-clock seconds the pool stays busy per simulated second
    /// (0 = jobs release their GPUs as soon as the simulator returns).
    pub time_scale: f64,
    /// Pre-declared tenants; unknown tenants are admitted with
    /// `default_priority` / `default_weight`.
    pub tenants: Vec<TenantSpec>,
    /// Priority class for undeclared tenants.
    pub default_priority: Priority,
    /// Fair-share weight for undeclared tenants.
    pub default_weight: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pool_gpus: 8,
            max_queue: 32,
            mem_headroom: 1.0,
            store: None,
            time_scale: 0.0,
            tenants: Vec::new(),
            default_priority: Priority::Normal,
            default_weight: 1,
        }
    }
}

/// Per-GPU memory of the simulated pool (the paper's MI100 platform).
const POOL_GPU_MEM_BYTES: u64 = 32 * (1 << 30);

/// Lifecycle of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Admitted, waiting for dispatch.
    Queued,
    /// Dispatched; planning or executing.
    Running,
    /// Finished successfully; result available.
    Done,
    /// Failed (message in [`JobRecord::error`]).
    Failed,
    /// Canceled by the client.
    Canceled,
    /// Evicted from the admission queue by a higher-priority submission.
    Preempted,
}

impl JobState {
    /// Lowercase wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Canceled => "canceled",
            JobState::Preempted => "preempted",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Canceled | JobState::Preempted
        )
    }
}

/// Outcome of a completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Scheduler that decided the plan.
    pub scheduler: String,
    /// Simulated throughput.
    pub gflops: f64,
    /// Simulated makespan, milliseconds.
    pub sim_elapsed_ms: f64,
    /// Stages in the decided plan.
    pub plan_stages: usize,
    /// Tasks in the decided plan.
    pub plan_tasks: usize,
    /// Whether the plan came from the durable store (memory or log)
    /// rather than invoking the scheduler.
    pub warm: bool,
    /// Wall-clock planning time, milliseconds.
    pub plan_ms: f64,
    /// Wall-clock execution (simulation) time, milliseconds.
    pub exec_ms: f64,
}

/// One submitted job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (monotone, unique for the daemon's lifetime).
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Priority class the job was admitted with.
    pub priority: Priority,
    /// The job's session config.
    pub config: SessionConfig,
    /// Current lifecycle state.
    pub state: JobState,
    /// GPUs the job occupies while running.
    pub gpus: usize,
    /// Admission order (fair-share FIFO tie-break).
    pub seq: u64,
    /// Dispatch order (None until dispatched).
    pub dispatch_seq: Option<u64>,
    /// Milliseconds spent queued before dispatch.
    pub wait_ms: Option<f64>,
    /// Milliseconds from submission to a terminal state.
    pub total_ms: Option<f64>,
    /// Result when [`JobState::Done`].
    pub result: Option<JobResult>,
    /// Error message for failed/preempted jobs.
    pub error: Option<String>,
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The queue is full and the job outranks nothing (HTTP 429).
    QueueFull {
        /// Current queue depth.
        depth: usize,
    },
    /// The job's estimated working set exceeds the pool headroom
    /// (HTTP 413).
    MemoryExceeded {
        /// The job's estimate.
        estimated: u64,
        /// The admission limit.
        limit: u64,
    },
    /// The config itself is unusable (HTTP 400).
    BadConfig(String),
    /// The daemon is shutting down (HTTP 503).
    ShuttingDown,
}

impl SubmitError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            SubmitError::QueueFull { .. } => 429,
            SubmitError::MemoryExceeded { .. } => 413,
            SubmitError::BadConfig(_) => 400,
            SubmitError::ShuttingDown => 503,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth } => {
                write!(f, "admission queue full ({depth} jobs queued)")
            }
            SubmitError::MemoryExceeded { estimated, limit } => write!(
                f,
                "estimated working set {estimated} B exceeds pool headroom {limit} B"
            ),
            SubmitError::BadConfig(msg) => write!(f, "{msg}"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

struct Pool {
    jobs: BTreeMap<u64, JobRecord>,
    queue: Vec<u64>,
    tenants: BTreeMap<String, TenantState>,
    free_gpus: usize,
    running: usize,
    next_id: u64,
    next_seq: u64,
    next_dispatch: u64,
    shutdown: bool,
    submitted_at: BTreeMap<u64, Instant>,
    cancel_flags: BTreeMap<u64, Arc<AtomicBool>>,
}

/// The shared heart of the daemon: the job table and pool accounting
/// behind one mutex, the plan cache behind another, and a metrics
/// registry. HTTP handlers and executor threads all talk to this.
pub struct Scheduling {
    config: ServeConfig,
    pool: Mutex<Pool>,
    /// Signaled whenever dispatch conditions may have changed.
    dispatch_cv: Condvar,
    /// Signaled whenever a job reaches a terminal state.
    done_cv: Condvar,
    cache: Option<Mutex<DurablePlanCache>>,
    metrics: Arc<MetricsRegistry>,
}

impl Scheduling {
    /// Build the shared state; opens the durable store when configured.
    pub fn new(config: ServeConfig) -> Result<Arc<Scheduling>, String> {
        let cache = match &config.store {
            Some(dir) => Some(Mutex::new(
                DurablePlanCache::open(dir).map_err(|e| format!("open store: {e}"))?,
            )),
            None => None,
        };
        let mut tenants = BTreeMap::new();
        for spec in &config.tenants {
            tenants.insert(spec.name.clone(), TenantState::new(spec.clone()));
        }
        let pool = Pool {
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            tenants,
            free_gpus: config.pool_gpus,
            running: 0,
            next_id: 1,
            next_seq: 0,
            next_dispatch: 0,
            shutdown: false,
            submitted_at: BTreeMap::new(),
            cancel_flags: BTreeMap::new(),
        };
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.set_gauge("serve.pool_gpus", config.pool_gpus as f64);
        metrics.set_gauge("serve.free_gpus", config.pool_gpus as f64);
        Ok(Arc::new(Scheduling {
            config,
            pool: Mutex::new(pool),
            dispatch_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cache,
            metrics,
        }))
    }

    /// The daemon-level configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Lock the pool, recovering from a poisoned mutex (an executor
    /// panic must not wedge the whole daemon).
    fn lock_pool(&self) -> MutexGuard<'_, Pool> {
        self.pool.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The metrics registry (`/metrics` renders its snapshot).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    fn tenant_metric(&self, tenant: &str, name: &str) {
        self.metrics.inc(&format!("tenant.{tenant}.{name}"));
    }

    /// Submit a job: admission control, then enqueue. Returns the job id.
    pub fn submit(
        self: &Arc<Self>,
        tenant: &str,
        priority: Option<Priority>,
        config: SessionConfig,
    ) -> Result<u64, SubmitError> {
        if tenant.is_empty() {
            return Err(SubmitError::BadConfig(
                "tenant name must not be empty".into(),
            ));
        }
        config
            .validate()
            .map_err(|e| SubmitError::BadConfig(e.to_string()))?;
        if config.gpus > self.config.pool_gpus {
            return Err(SubmitError::BadConfig(format!(
                "job requests {} GPUs but the pool has {}",
                config.gpus, self.config.pool_gpus
            )));
        }
        if config.store.is_some() {
            return Err(SubmitError::BadConfig(
                "per-job 'store' is not allowed: the daemon owns the plan store".into(),
            ));
        }
        let limit = ((self.config.pool_gpus as u64 * POOL_GPU_MEM_BYTES) as f64
            * self.config.mem_headroom) as u64;
        let estimated = estimated_bytes(&config);
        if estimated > limit {
            self.metrics.inc("serve.rejected_memory");
            self.tenant_metric(tenant, "rejected");
            return Err(SubmitError::MemoryExceeded { estimated, limit });
        }

        let mut pool = self.lock_pool();
        if pool.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let priority = priority
            .or_else(|| pool.tenants.get(tenant).map(|t| t.spec.priority))
            .unwrap_or(self.config.default_priority);
        // admission queue bound, with priority preemption of queued work
        if pool.queue.len() >= self.config.max_queue {
            let queued: Vec<Candidate> = pool
                .queue
                .iter()
                .map(|id| {
                    let j = &pool.jobs[id];
                    Candidate {
                        priority: j.priority,
                        vtime: 0.0,
                        seq: j.seq,
                        fits: true,
                    }
                })
                .collect();
            match admission_victim(&queued, priority) {
                Some(idx) => {
                    let victim = pool.queue.remove(idx);
                    let now = Instant::now();
                    let submitted = pool.submitted_at.get(&victim).copied();
                    if let Some(j) = pool.jobs.get_mut(&victim) {
                        j.state = JobState::Preempted;
                        j.error =
                            Some("preempted from the queue by a higher-priority submission".into());
                        j.total_ms = submitted.map(|t| now.duration_since(t).as_secs_f64() * 1e3);
                        self.metrics.inc("serve.preempted");
                        self.tenant_metric(&j.tenant.clone(), "preempted");
                    }
                    self.done_cv.notify_all();
                }
                None => {
                    drop(pool);
                    self.metrics.inc("serve.rejected_queue");
                    self.tenant_metric(tenant, "rejected");
                    return Err(SubmitError::QueueFull {
                        depth: self.config.max_queue,
                    });
                }
            }
        }
        // admit
        let id = pool.next_id;
        pool.next_id += 1;
        let seq = pool.next_seq;
        pool.next_seq += 1;
        if !pool.tenants.contains_key(tenant) {
            let mut spec = TenantSpec::new(tenant);
            spec.priority = self.config.default_priority;
            spec.weight = self.config.default_weight;
            // fairness: a brand-new tenant starts at the minimum live
            // vtime, not 0 — otherwise reconnecting under a fresh name
            // would jump the share queue
            let floor = pool
                .tenants
                .values()
                .map(|t| t.vtime)
                .fold(f64::INFINITY, f64::min);
            let mut state = TenantState::new(spec);
            if floor.is_finite() {
                state.vtime = floor;
            }
            pool.tenants.insert(tenant.to_owned(), state);
        }
        let gpus = config.gpus;
        pool.jobs.insert(
            id,
            JobRecord {
                id,
                tenant: tenant.to_owned(),
                priority,
                config,
                state: JobState::Queued,
                gpus,
                seq,
                dispatch_seq: None,
                wait_ms: None,
                total_ms: None,
                result: None,
                error: None,
            },
        );
        pool.queue.push(id);
        pool.submitted_at.insert(id, Instant::now());
        pool.cancel_flags
            .insert(id, Arc::new(AtomicBool::new(false)));
        self.metrics.inc("serve.submitted");
        self.tenant_metric(tenant, "submitted");
        self.metrics
            .set_gauge("serve.queue_depth", pool.queue.len() as f64);
        drop(pool);
        self.dispatch_cv.notify_all();
        Ok(id)
    }

    /// A copy of the job record, if the id exists.
    pub fn job(&self, id: u64) -> Option<JobRecord> {
        self.lock_pool().jobs.get(&id).cloned()
    }

    /// Copies of all job records, in id order.
    pub fn jobs(&self) -> Vec<JobRecord> {
        self.lock_pool().jobs.values().cloned().collect()
    }

    /// Cancel a job. Queued jobs cancel immediately; running jobs are
    /// flagged and cancel at the next phase boundary. Returns the state
    /// after the call, or `Err` when the id is unknown or already
    /// terminal.
    pub fn cancel(&self, id: u64) -> Result<JobState, String> {
        let mut pool = self.lock_pool();
        let (state, tenant) = match pool.jobs.get(&id) {
            Some(job) => (job.state.clone(), job.tenant.clone()),
            None => return Err(format!("unknown job {id}")),
        };
        match state {
            JobState::Queued => {
                pool.queue.retain(|&q| q != id);
                let now = Instant::now();
                let submitted = pool.submitted_at.get(&id).copied();
                if let Some(j) = pool.jobs.get_mut(&id) {
                    j.state = JobState::Canceled;
                    j.total_ms = submitted.map(|t| now.duration_since(t).as_secs_f64() * 1e3);
                }
                self.metrics.inc("serve.canceled");
                self.tenant_metric(&tenant, "canceled");
                self.metrics
                    .set_gauge("serve.queue_depth", pool.queue.len() as f64);
                self.done_cv.notify_all();
                Ok(JobState::Canceled)
            }
            JobState::Running => {
                if let Some(flag) = pool.cancel_flags.get(&id) {
                    flag.store(true, Ordering::SeqCst);
                }
                Ok(JobState::Running)
            }
            terminal => Err(format!("job {id} is already {}", terminal.as_str())),
        }
    }

    /// Block until every submitted job is terminal, or `timeout` elapses.
    /// Returns `true` when the table drained.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut pool = self.lock_pool();
        loop {
            let busy = pool.jobs.values().any(|j| !j.state.is_terminal());
            if !busy {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            pool = self
                .done_cv
                .wait_timeout(pool, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Block until job `id` is terminal, or `timeout` elapses. Returns
    /// the final record when it settled in time.
    pub fn wait_job(&self, id: u64, timeout: Duration) -> Option<JobRecord> {
        let deadline = Instant::now() + timeout;
        let mut pool = self.lock_pool();
        loop {
            match pool.jobs.get(&id) {
                None => return None,
                Some(j) if j.state.is_terminal() => return Some(j.clone()),
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            pool = self
                .done_cv
                .wait_timeout(pool, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// The dispatcher loop: runs until shutdown, picking jobs off the
    /// admission queue whenever pool resources allow and spawning an
    /// executor thread per dispatched job.
    pub(crate) fn dispatcher(self: &Arc<Self>) {
        loop {
            let dispatched = {
                let mut pool = self.lock_pool();
                if pool.shutdown {
                    return;
                }
                match self.try_dispatch(&mut pool) {
                    Some(job) => Some(job),
                    None => {
                        drop(
                            self.dispatch_cv
                                .wait(pool)
                                .unwrap_or_else(PoisonError::into_inner),
                        );
                        None
                    }
                }
            };
            if let Some(job) = dispatched {
                let shared = Arc::clone(self);
                // one detached executor thread per running job; bounded
                // by the pool (a job dispatches only when GPUs free up)
                std::thread::spawn(move || shared.execute_job(job));
            }
        }
    }

    /// Pick and dequeue the next runnable job under the lock; marks it
    /// Running and reserves its GPUs.
    fn try_dispatch(&self, pool: &mut Pool) -> Option<JobRecord> {
        let candidates: Vec<Candidate> = pool
            .queue
            .iter()
            .map(|id| {
                let j = &pool.jobs[id];
                Candidate {
                    priority: j.priority,
                    vtime: pool.tenants.get(&j.tenant).map(|t| t.vtime).unwrap_or(0.0),
                    seq: j.seq,
                    fits: j.gpus <= pool.free_gpus,
                }
            })
            .collect();
        let idx = pick_next(&candidates)?;
        let id = pool.queue.remove(idx);
        let dispatch_seq = pool.next_dispatch;
        pool.next_dispatch += 1;
        let now = Instant::now();
        let submitted = pool.submitted_at.get(&id).copied();
        let job = {
            let j = pool.jobs.get_mut(&id)?;
            j.state = JobState::Running;
            j.dispatch_seq = Some(dispatch_seq);
            j.wait_ms = submitted.map(|t| now.duration_since(t).as_secs_f64() * 1e3);
            j.clone()
        };
        pool.free_gpus -= job.gpus;
        pool.running += 1;
        self.metrics
            .set_gauge("serve.free_gpus", pool.free_gpus as f64);
        self.metrics.set_gauge("serve.running", pool.running as f64);
        self.metrics
            .set_gauge("serve.queue_depth", pool.queue.len() as f64);
        Some(job)
    }

    /// Run one dispatched job end to end: plan (through the shared
    /// durable cache when configured), execute on a fresh simulator,
    /// optionally hold the GPUs for scaled wall time, then release.
    fn execute_job(self: &Arc<Self>, job: JobRecord) {
        let cancel = self
            .lock_pool()
            .cancel_flags
            .get(&job.id)
            .cloned()
            .unwrap_or_else(|| Arc::new(AtomicBool::new(false)));
        let outcome = self.run_job(&job, &cancel);
        let mut pool = self.lock_pool();
        pool.free_gpus += job.gpus;
        pool.running -= 1;
        let now = Instant::now();
        let submitted = pool.submitted_at.get(&job.id).copied();
        // fair share: charge simulated GPU-seconds to the tenant
        if let RunOutcome::Done(result) = &outcome {
            if let Some(t) = pool.tenants.get_mut(&job.tenant) {
                t.charge(result.sim_elapsed_ms / 1e3 * job.gpus as f64);
            }
        }
        if let Some(j) = pool.jobs.get_mut(&job.id) {
            j.total_ms = submitted.map(|t| now.duration_since(t).as_secs_f64() * 1e3);
            match outcome {
                RunOutcome::Done(result) => {
                    if result.warm {
                        self.tenant_metric(&job.tenant, "warm_hits");
                    }
                    j.state = JobState::Done;
                    j.result = Some(result);
                    self.metrics.inc("serve.completed");
                    self.tenant_metric(&job.tenant, "completed");
                }
                RunOutcome::Failed(msg) => {
                    j.state = JobState::Failed;
                    j.error = Some(msg);
                    self.metrics.inc("serve.failed");
                    self.tenant_metric(&job.tenant, "failed");
                }
                RunOutcome::Canceled => {
                    j.state = JobState::Canceled;
                    self.metrics.inc("serve.canceled");
                    self.tenant_metric(&job.tenant, "canceled");
                }
            }
        }
        if let Some(cache) = &self.cache {
            let c = cache.lock().unwrap_or_else(PoisonError::into_inner);
            self.metrics
                .set_gauge("plan_cache.mem_hits", c.mem_hits() as f64);
            self.metrics
                .set_gauge("plan_cache.log_hits", c.log_hits() as f64);
            self.metrics
                .set_gauge("plan_cache.misses", c.misses() as f64);
        }
        self.metrics
            .set_gauge("serve.free_gpus", pool.free_gpus as f64);
        self.metrics.set_gauge("serve.running", pool.running as f64);
        drop(pool);
        self.dispatch_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Plan + execute, honouring the cancel flag at phase boundaries.
    fn run_job(&self, job: &JobRecord, cancel: &AtomicBool) -> RunOutcome {
        if cancel.load(Ordering::SeqCst) {
            return RunOutcome::Canceled;
        }
        let cfg = &job.config;
        let stream = match cfg.stream() {
            Ok(s) => s,
            Err(e) => return RunOutcome::Failed(e.to_string()),
        };
        let session = match cfg.session(&stream) {
            Ok(s) => s,
            Err(e) => return RunOutcome::Failed(e.to_string()),
        };
        let mut scheduler = match cfg.build_scheduler() {
            Ok(s) => s,
            Err(e) => return RunOutcome::Failed(e.to_string()),
        };
        // decide (through the shared durable cache when the daemon has one)
        let t_plan = Instant::now();
        let (planned, warm) = match &self.cache {
            Some(cache) => {
                let mut cache = cache.lock().unwrap_or_else(PoisonError::into_inner);
                let before = cache.mem_hits() + cache.log_hits();
                match session.plan_with_cache(&mut cache, scheduler.as_mut(), &stream) {
                    Ok(p) => {
                        let warm = cache.mem_hits() + cache.log_hits() > before;
                        (p, warm)
                    }
                    Err(e) => return RunOutcome::Failed(e.to_string()),
                }
            }
            None => match session.plan(scheduler.as_mut(), &stream) {
                Ok(p) => (p, false),
                Err(e) => return RunOutcome::Failed(e.to_string()),
            },
        };
        let plan_ms = t_plan.elapsed().as_secs_f64() * 1e3;
        if cancel.load(Ordering::SeqCst) {
            return RunOutcome::Canceled;
        }
        // execute on a fresh simulator
        let t_exec = Instant::now();
        let report = match planned.execute(&stream) {
            Ok(r) => r,
            Err(e) => return RunOutcome::Failed(e.to_string()),
        };
        let exec_ms = t_exec.elapsed().as_secs_f64() * 1e3;
        // hold the pool for scaled simulated time, checking the cancel
        // flag so a cancel releases the GPUs promptly
        if self.config.time_scale > 0.0 {
            let hold =
                Duration::from_secs_f64((report.elapsed_secs() * self.config.time_scale).min(5.0));
            let step = Duration::from_millis(2);
            let t0 = Instant::now();
            while t0.elapsed() < hold {
                if cancel.load(Ordering::SeqCst) {
                    return RunOutcome::Canceled;
                }
                std::thread::sleep(step.min(hold - t0.elapsed()));
            }
        }
        let plan = planned.plan();
        RunOutcome::Done(JobResult {
            scheduler: plan.scheduler.clone(),
            gflops: report.gflops(),
            sim_elapsed_ms: report.elapsed_secs() * 1e3,
            plan_stages: plan.stages.len(),
            plan_tasks: plan.total_tasks(),
            warm,
            plan_ms,
            exec_ms,
        })
    }

    /// Whether shutdown has begun.
    pub fn is_shutdown(&self) -> bool {
        self.lock_pool().shutdown
    }

    /// Flip the shutdown flag and wake everything.
    pub(crate) fn begin_shutdown(&self) {
        let mut pool = self.lock_pool();
        pool.shutdown = true;
        // queued jobs will never run: cancel them
        let queued: Vec<u64> = pool.queue.drain(..).collect();
        let now = Instant::now();
        for id in queued {
            let submitted = pool.submitted_at.get(&id).copied();
            if let Some(j) = pool.jobs.get_mut(&id) {
                j.state = JobState::Canceled;
                j.error = Some("service shut down".into());
                j.total_ms = submitted.map(|t| now.duration_since(t).as_secs_f64() * 1e3);
            }
        }
        drop(pool);
        self.dispatch_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Wait for running jobs to finish (used by shutdown).
    pub(crate) fn drain_running(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut pool = self.lock_pool();
        while pool.running > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            pool = self
                .done_cv
                .wait_timeout(pool, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        true
    }

    /// The durable cache's `(mem_hits, log_hits, misses)` counters, when
    /// the daemon runs with a store.
    pub fn cache_stats(&self) -> Option<(u64, u64, u64)> {
        self.cache.as_ref().map(|c| {
            let c = c.lock().unwrap_or_else(PoisonError::into_inner);
            (c.mem_hits(), c.log_hits(), c.misses())
        })
    }
}

/// How one dispatched job ended.
enum RunOutcome {
    Done(JobResult),
    Failed(String),
    Canceled,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(gpus: usize) -> SessionConfig {
        SessionConfig {
            vector_size: 6,
            tensor_size: 32,
            vectors: 2,
            gpus,
            ..SessionConfig::default()
        }
    }

    fn start(config: ServeConfig) -> Arc<Scheduling> {
        let shared = Scheduling::new(config).expect("scheduling state");
        let d = Arc::clone(&shared);
        std::thread::spawn(move || d.dispatcher());
        shared
    }

    #[test]
    fn submit_runs_to_done_and_counts_metrics() {
        let s = start(ServeConfig {
            pool_gpus: 2,
            ..ServeConfig::default()
        });
        let id = s.submit("acme", None, tiny_config(2)).expect("admitted");
        let job = s.wait_job(id, Duration::from_secs(30)).expect("finishes");
        assert_eq!(job.state, JobState::Done);
        let r = job.result.expect("result");
        assert!(r.gflops > 0.0);
        assert!(r.plan_tasks > 0);
        assert!(!r.warm, "no store configured");
        let snap = s.metrics().snapshot();
        assert_eq!(snap.counter("serve.submitted"), 1);
        assert_eq!(snap.counter("serve.completed"), 1);
        assert_eq!(snap.counter("tenant.acme.submitted"), 1);
        assert_eq!(snap.counter("tenant.acme.completed"), 1);
        s.begin_shutdown();
    }

    #[test]
    fn oversized_requests_are_rejected() {
        let s = start(ServeConfig {
            pool_gpus: 2,
            ..ServeConfig::default()
        });
        // more GPUs than the pool
        let err = s.submit("acme", None, tiny_config(4)).unwrap_err();
        assert_eq!(err.status(), 400);
        // a working set beyond the memory headroom
        let mut big = tiny_config(2);
        big.tensor_size = 1 << 14;
        big.vector_size = 512;
        big.vectors = 64;
        let err = s.submit("acme", None, big).unwrap_err();
        assert_eq!(err.status(), 413);
        // empty tenant
        let err = s.submit("", None, tiny_config(1)).unwrap_err();
        assert_eq!(err.status(), 400);
        s.begin_shutdown();
    }

    #[test]
    fn warm_start_through_the_shared_store() {
        let dir = std::env::temp_dir().join(format!(
            "micco-serve-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let s = start(ServeConfig {
            pool_gpus: 2,
            store: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let cold = s.submit("t", None, tiny_config(2)).unwrap();
        let cold = s.wait_job(cold, Duration::from_secs(30)).unwrap();
        assert!(!cold.result.as_ref().unwrap().warm, "first plan is a miss");
        let warm = s.submit("t", None, tiny_config(2)).unwrap();
        let warm = s.wait_job(warm, Duration::from_secs(30)).unwrap();
        assert!(warm.result.as_ref().unwrap().warm, "second plan is served");
        s.begin_shutdown();

        // a restarted daemon over the same dir serves from the log
        let s2 = start(ServeConfig {
            pool_gpus: 2,
            store: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let restart = s2.submit("t", None, tiny_config(2)).unwrap();
        let restart = s2.wait_job(restart, Duration::from_secs(30)).unwrap();
        assert!(
            restart.result.as_ref().unwrap().warm,
            "warm restart serves the logged plan without re-planning"
        );
        let (_, log_hits, misses) = s2.cache_stats().unwrap();
        assert_eq!((log_hits, misses), (1, 0));
        s2.begin_shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_semantics() {
        // pool of 1 so a long hold keeps later jobs queued
        let s = start(ServeConfig {
            pool_gpus: 1,
            time_scale: 50.0,
            ..ServeConfig::default()
        });
        let running = s.submit("t", None, tiny_config(1)).unwrap();
        // wait until it actually dispatches
        let t0 = Instant::now();
        while s.job(running).unwrap().state == JobState::Queued {
            assert!(t0.elapsed() < Duration::from_secs(10), "never dispatched");
            std::thread::sleep(Duration::from_millis(2));
        }
        let queued = s.submit("t", None, tiny_config(1)).unwrap();
        assert_eq!(s.job(queued).unwrap().state, JobState::Queued);
        // queued cancels immediately
        assert_eq!(s.cancel(queued), Ok(JobState::Canceled));
        assert_eq!(s.job(queued).unwrap().state, JobState::Canceled);
        // canceling again is an error
        assert!(s.cancel(queued).is_err());
        // running cancels at the next checkpoint
        assert_eq!(s.cancel(running), Ok(JobState::Running));
        let done = s.wait_job(running, Duration::from_secs(30)).unwrap();
        assert_eq!(done.state, JobState::Canceled);
        // unknown id
        assert!(s.cancel(9999).is_err());
        s.begin_shutdown();
    }
}
