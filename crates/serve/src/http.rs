//! A deliberately small HTTP/1.1 server on `std::net` — thread per
//! connection, `Connection: close` semantics, bounded request bodies.
//!
//! The build environment has no async runtime or HTTP crate, so the
//! daemon speaks just enough of the protocol for its JSON API: request
//! line + headers + optional `Content-Length` body in, status line +
//! headers + body out. Keep-alive is intentionally not implemented —
//! every exchange is one connection, which makes the concurrency story
//! trivially correct (no pipelining, no partial reads across requests).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum accepted request body, bytes. Submission bodies are small
/// JSON documents; anything larger is a client bug (or abuse).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Maximum accepted header section, bytes.
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Raw query string (without the `?`), empty when absent.
    pub query: String,
    /// Body bytes (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Read one request from the stream. Returns `None` on a clean EOF
    /// before any bytes (client connected and left).
    pub fn read_from(stream: &mut TcpStream) -> Result<Option<Request>, String> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read request line: {e}"))?;
        if n == 0 {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let method = parts
            .next()
            .ok_or_else(|| "empty request line".to_owned())?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or_else(|| "request line missing target".to_owned())?
            .to_owned();
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_owned(), q.to_owned()),
            None => (target, String::new()),
        };
        // headers: we only care about Content-Length
        let mut content_length = 0usize;
        let mut header_bytes = 0usize;
        loop {
            let mut h = String::new();
            let n = reader
                .read_line(&mut h)
                .map_err(|e| format!("read header: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-headers".into());
            }
            header_bytes += n;
            if header_bytes > MAX_HEADER_BYTES {
                return Err("header section too large".into());
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((name, value)) = h.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad content-length '{}'", value.trim()))?;
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(format!("body too large ({content_length} bytes)"));
        }
        let mut body = vec![0u8; content_length];
        if content_length > 0 {
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
        }
        Ok(Some(Request {
            method,
            path,
            query,
            body,
        }))
    }

    /// The body as UTF-8, or an error message suitable for a 400.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "body is not valid UTF-8".to_owned())
    }
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 400, 404, 429, ...).
    pub status: u16,
    /// Content type header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// Serialize and write to the stream (best effort — the client may
    /// already be gone, which is not the server's problem).
    pub fn write_to(&self, stream: &mut TcpStream) {
        let reason = match self.status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Status",
        };
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        );
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(&self.body);
        let _ = stream.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &str) -> Result<Option<Request>, String> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_owned();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = Request::read_from(&mut stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(
            "POST /v1/jobs?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body_utf8().unwrap(), "{\"a\":1}");
    }

    #[test]
    fn parses_a_bare_get() {
        let req = round_trip("GET /metrics HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies() {
        let raw = format!(
            "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(round_trip(&raw).is_err());
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(round_trip("").unwrap().is_none());
    }
}
