//! `micco-serve`: a multi-tenant scheduling service over the MICCO
//! planner.
//!
//! The daemon accepts concurrent contraction-job submissions over a
//! small JSON/HTTP API and multiplexes them onto one shared simulated
//! GPU pool. Scheduling happens at two levels:
//!
//! - **Inter-job** (this crate): admission control bounds the queue and
//!   rejects jobs that could never fit in pool memory; priority classes
//!   and weighted fair share pick which admitted job dispatches next
//!   ([`sched`]).
//! - **Intra-job** (micco-core): each dispatched job plans its own
//!   placement through the existing [`micco_core::Session`] API —
//!   warm-starting from the shared [`micco_core::DurablePlanCache`]
//!   when the daemon runs with a store — and replays on the simulator.
//!
//! Submission bodies embed a [`micco_core::SessionConfig`], the same
//! JSON grammar the CLI's `--config` flag reads: one config schema
//! end to end.
//!
//! ```no_run
//! use micco_serve::{ServeConfig, Service};
//!
//! let service = Service::start("127.0.0.1:0", ServeConfig::default()).unwrap();
//! println!("serving on {}", service.addr());
//! service.shutdown();
//! ```

pub mod api;
pub mod http;
pub mod sched;
pub mod service;

pub use api::Submission;
pub use http::{Request, Response, MAX_BODY_BYTES};
pub use sched::{
    admission_victim, estimated_bytes, pick_next, Candidate, Priority, TenantSpec, TenantState,
};
pub use service::{JobRecord, JobResult, JobState, Scheduling, ServeConfig, SubmitError};

use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A running daemon: TCP acceptor + dispatcher threads over shared
/// [`Scheduling`] state.
pub struct Service {
    shared: Arc<Scheduling>,
    addr: std::net::SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl Service {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving.
    pub fn start(addr: &str, config: ServeConfig) -> Result<Service, String> {
        let shared = Scheduling::new(config)?;
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || shared.dispatcher())
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.is_shutdown() {
                        return;
                    }
                    let Ok(mut stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    // thread per connection; exchanges are short-lived
                    // (Connection: close), so the thread count tracks
                    // in-flight requests, not total requests
                    std::thread::spawn(move || handle_connection(&mut stream, &shared));
                }
            })
        };
        Ok(Service {
            shared,
            addr: local,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared scheduling state (tests and in-process benches drive
    /// this directly; remote clients go through the HTTP API).
    pub fn scheduling(&self) -> &Arc<Scheduling> {
        &self.shared
    }

    /// Stop accepting, cancel queued jobs, wait briefly for running jobs,
    /// and join the daemon threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.begin_shutdown();
        self.shared.drain_running(Duration::from_secs(10));
        // unblock the acceptor's blocking accept() with one last connection
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if self.acceptor.is_some() || self.dispatcher.is_some() {
            self.stop();
        }
    }
}

fn handle_connection(stream: &mut TcpStream, shared: &Arc<Scheduling>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let response = match Request::read_from(stream) {
        Ok(Some(req)) => api::handle(&req, shared),
        Ok(None) => return, // client connected and left
        Err(msg) => Response::json(400, api::error_body(&msg)),
    };
    response.write_to(stream);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    /// Minimal test client: one request, one response, connection closed.
    fn call(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        s.write_all(req.as_bytes()).expect("send");
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("recv");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn http_round_trip_submit_status_result() {
        let service = Service::start(
            "127.0.0.1:0",
            ServeConfig {
                pool_gpus: 2,
                ..ServeConfig::default()
            },
        )
        .expect("start");
        let addr = service.addr();

        let (status, body) = call(addr, "GET", "/healthz", "");
        assert_eq!((status, body.as_str()), (200, "{\"ok\":true}"));

        let (status, body) = call(
            addr,
            "POST",
            "/v1/jobs",
            "{\"tenant\":\"acme\",\"config\":{\"vector_size\":6,\"tensor_size\":32,\"vectors\":2,\"gpus\":2}}",
        );
        assert_eq!(status, 201, "submit: {body}");
        let id = micco_obs::Value::parse(&body)
            .expect("json")
            .get("id")
            .and_then(micco_obs::Value::as_u64)
            .expect("id");

        assert!(service.scheduling().wait_idle(Duration::from_secs(30)));

        let (status, body) = call(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200);
        let v = micco_obs::Value::parse(&body).expect("json");
        assert_eq!(
            v.get("state").and_then(micco_obs::Value::as_str),
            Some("done")
        );

        let (status, body) = call(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
        assert_eq!(status, 200);
        let v = micco_obs::Value::parse(&body).expect("json");
        let gflops = v
            .get("result")
            .and_then(|r| r.get("gflops"))
            .and_then(micco_obs::Value::as_f64)
            .expect("gflops");
        assert!(gflops > 0.0);

        // metrics expose the tenant's counters
        let (status, text) = call(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(text.contains("serve.completed 1"), "metrics:\n{text}");
        assert!(text.contains("tenant.acme.completed 1"), "metrics:\n{text}");

        // error paths
        let (status, _) = call(addr, "GET", "/v1/jobs/999", "");
        assert_eq!(status, 404);
        let (status, _) = call(addr, "POST", "/v1/jobs", "{\"no\":\"tenant\"}");
        assert_eq!(status, 400);
        let (status, _) = call(addr, "DELETE", "/v1/jobs/1", "");
        assert_eq!(status, 405);

        service.shutdown();
    }
}
