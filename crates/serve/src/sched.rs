//! Inter-job scheduling policy: priority classes, weighted fair share,
//! and admission control — the decision layer *above* the per-job MICCO
//! planner.
//!
//! The algebra (DESIGN.md §17):
//!
//! - Every job belongs to a **tenant** with a priority class
//!   (`high`/`normal`/`low`) and an integer **weight**.
//! - Each tenant accumulates **virtual time**: simulated GPU-seconds of
//!   service divided by its weight. Weighted fair share = always dispatch
//!   the eligible tenant with the *least* virtual time, so a tenant with
//!   weight 3 receives 3× the service of a weight-1 tenant under
//!   contention, and an idle tenant's next job runs promptly (its vtime
//!   lags the busy tenants').
//! - **Priority classes dominate fair share**: all eligible `high` jobs
//!   dispatch before any `normal`, before any `low`. Fair share
//!   arbitrates *within* a class.
//! - **Admission control** bounds the queue: a full queue rejects new
//!   work (HTTP 429) unless the incoming job outranks a queued one, in
//!   which case the lowest-priority, most-recently-arrived queued job is
//!   evicted ("admission preemption" — running jobs are never killed).
//!   A job whose estimated working set exceeds the pool's memory
//!   headroom is rejected outright (HTTP 413): it could never run.
//!
//! These decisions are pure functions over [`Candidate`] snapshots, so
//! the policy is unit-testable without a daemon.

use micco_core::SessionConfig;

/// Priority class of a tenant or job. Ordered: `Low < Normal < High`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Batch / best-effort work; first to be preempted from the queue.
    Low,
    /// The default class.
    Normal,
    /// Latency-sensitive work; dispatches before everything else.
    High,
}

impl Priority {
    /// Parse `high` | `normal` | `low`.
    pub fn parse(s: &str) -> Result<Priority, String> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!("unknown priority '{other}' (high|normal|low)")),
        }
    }

    /// Canonical lowercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Static description of a tenant: name, priority class, fair-share
/// weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant name (the key jobs submit under).
    pub name: String,
    /// Priority class for the tenant's jobs.
    pub priority: Priority,
    /// Fair-share weight (≥ 1); relative service under contention.
    pub weight: u32,
}

impl TenantSpec {
    /// A tenant with the default class and weight.
    pub fn new(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            priority: Priority::Normal,
            weight: 1,
        }
    }

    /// Parse the CLI grammar `NAME[:PRIORITY[:WEIGHT]]`, e.g.
    /// `acme:high:4` or `batch:low`.
    pub fn parse(s: &str) -> Result<TenantSpec, String> {
        let mut parts = s.split(':');
        let name = parts
            .next()
            .filter(|n| !n.is_empty())
            .ok_or_else(|| format!("empty tenant spec '{s}'"))?;
        let mut spec = TenantSpec::new(name);
        if let Some(p) = parts.next() {
            spec.priority = Priority::parse(p)?;
        }
        if let Some(w) = parts.next() {
            spec.weight =
                w.parse().ok().filter(|&w| w >= 1).ok_or_else(|| {
                    format!("bad weight '{w}' in tenant spec '{s}' (integer ≥ 1)")
                })?;
        }
        if parts.next().is_some() {
            return Err(format!("too many ':' in tenant spec '{s}'"));
        }
        Ok(spec)
    }
}

/// Mutable fair-share accounting for one tenant.
#[derive(Debug, Clone)]
pub struct TenantState {
    /// The static spec.
    pub spec: TenantSpec,
    /// Accumulated virtual time: simulated GPU-seconds / weight.
    pub vtime: f64,
}

impl TenantState {
    /// Fresh state for `spec`.
    pub fn new(spec: TenantSpec) -> TenantState {
        TenantState { spec, vtime: 0.0 }
    }

    /// Charge `gpu_secs` of service (simulated seconds × GPUs held);
    /// the weight divides it into virtual time.
    pub fn charge(&mut self, gpu_secs: f64) {
        self.vtime += gpu_secs / f64::from(self.spec.weight.max(1));
    }
}

/// A queued job as the dispatch policy sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Priority class.
    pub priority: Priority,
    /// The owning tenant's current virtual time.
    pub vtime: f64,
    /// Admission order (monotone; lower = arrived earlier).
    pub seq: u64,
    /// Whether the pool currently has the resources this job needs.
    pub fits: bool,
}

/// Pick the next job to dispatch: among candidates that fit, the highest
/// priority class wins; within the class, the least tenant virtual time;
/// ties break FIFO by admission order. Returns an index into
/// `candidates`, or `None` when nothing fits.
pub fn pick_next(candidates: &[Candidate]) -> Option<usize> {
    candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.fits)
        .min_by(|(_, a), (_, b)| {
            b.priority
                .cmp(&a.priority) // higher class first
                .then(
                    a.vtime
                        .partial_cmp(&b.vtime)
                        .unwrap_or(std::cmp::Ordering::Equal),
                ) // then least virtual time
                .then(a.seq.cmp(&b.seq)) // then FIFO
        })
        .map(|(i, _)| i)
}

/// When the queue is full, choose the queued job an `incoming` priority
/// may displace: the *lowest*-priority entry, latest-arrived among
/// equals — and only when it is strictly below `incoming`. Returns an
/// index into `queued`, or `None` (reject the incoming job instead).
pub fn admission_victim(queued: &[Candidate], incoming: Priority) -> Option<usize> {
    let (idx, worst) = queued
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)))?;
    (worst.priority < incoming).then_some(idx)
}

/// Conservative upper bound on a job's working set, without generating
/// the workload: every task touches two inputs and one output of
/// `batch × dim × dim` complex-double tensors (16 B/element), ignoring
/// cross-task reuse. Used for the admission memory check — an
/// over-estimate can only reject a job that would have fit, never admit
/// one that cannot.
pub fn estimated_bytes(cfg: &SessionConfig) -> u64 {
    let dim = cfg
        .dims
        .iter()
        .copied()
        .chain(std::iter::once(cfg.tensor_size))
        .max()
        .unwrap_or(cfg.tensor_size) as u64;
    let per_tensor = (cfg.batch as u64)
        .saturating_mul(dim)
        .saturating_mul(dim)
        .saturating_mul(16);
    (cfg.vectors as u64)
        .saturating_mul(cfg.vector_size as u64)
        .saturating_mul(3)
        .saturating_mul(per_tensor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(priority: Priority, vtime: f64, seq: u64) -> Candidate {
        Candidate {
            priority,
            vtime,
            seq,
            fits: true,
        }
    }

    #[test]
    fn priority_class_dominates_fair_share() {
        let q = [
            cand(Priority::Low, 0.0, 0),
            cand(Priority::High, 99.0, 1),
            cand(Priority::Normal, 0.0, 2),
        ];
        // the high job dispatches first despite the largest vtime
        assert_eq!(pick_next(&q), Some(1));
    }

    #[test]
    fn within_a_class_least_vtime_wins_then_fifo() {
        let q = [
            cand(Priority::Normal, 2.0, 0),
            cand(Priority::Normal, 1.0, 1),
            cand(Priority::Normal, 1.0, 2),
        ];
        assert_eq!(pick_next(&q), Some(1), "least vtime, earliest seq");
    }

    #[test]
    fn unfit_candidates_are_skipped() {
        let mut q = vec![cand(Priority::High, 0.0, 0), cand(Priority::Low, 5.0, 1)];
        q[0].fits = false;
        assert_eq!(pick_next(&q), Some(1));
        q[1].fits = false;
        assert_eq!(pick_next(&q), None);
    }

    #[test]
    fn weighted_interleave_is_proportional() {
        // two tenants, weight 3 vs 1, equal-cost jobs: simulate the
        // dispatch loop and count the first dispatches
        let mut a = TenantState::new(TenantSpec {
            name: "a".into(),
            priority: Priority::Normal,
            weight: 3,
        });
        let mut b = TenantState::new(TenantSpec {
            name: "b".into(),
            priority: Priority::Normal,
            weight: 1,
        });
        let mut order = Vec::new();
        for seq in 0..8 {
            let q = [
                cand(Priority::Normal, a.vtime, 0),
                cand(Priority::Normal, b.vtime, seq + 1),
            ];
            let pick = pick_next(&q).unwrap();
            if pick == 0 {
                a.charge(1.0);
                order.push('a');
            } else {
                b.charge(1.0);
                order.push('b');
            }
        }
        let a_count = order.iter().filter(|&&c| c == 'a').count();
        assert_eq!(a_count, 6, "weight 3:1 → 3x the service, got {order:?}");
    }

    #[test]
    fn admission_evicts_only_strictly_lower_priority() {
        let q = [
            cand(Priority::Normal, 0.0, 0),
            cand(Priority::Low, 0.0, 1),
            cand(Priority::Low, 0.0, 2),
        ];
        // high evicts the latest-arrived low job
        assert_eq!(admission_victim(&q, Priority::High), Some(2));
        // normal also outranks low
        assert_eq!(admission_victim(&q, Priority::Normal), Some(2));
        // low does not outrank low
        assert_eq!(admission_victim(&q, Priority::Low), None);
        // equal-priority queue rejects an equal incoming
        let all_normal = [cand(Priority::Normal, 0.0, 0)];
        assert_eq!(admission_victim(&all_normal, Priority::Normal), None);
        assert_eq!(admission_victim(&[], Priority::High), None);
    }

    #[test]
    fn tenant_spec_grammar() {
        let t = TenantSpec::parse("acme:high:4").unwrap();
        assert_eq!(t.name, "acme");
        assert_eq!(t.priority, Priority::High);
        assert_eq!(t.weight, 4);
        let t = TenantSpec::parse("batch:low").unwrap();
        assert_eq!(t.priority, Priority::Low);
        assert_eq!(t.weight, 1);
        let t = TenantSpec::parse("solo").unwrap();
        assert_eq!(t.priority, Priority::Normal);
        assert!(TenantSpec::parse("").is_err());
        assert!(TenantSpec::parse("x:mid").is_err());
        assert!(TenantSpec::parse("x:low:0").is_err());
        assert!(TenantSpec::parse("x:low:1:extra").is_err());
    }

    #[test]
    fn estimate_upper_bounds_the_real_working_set() {
        let cfg = SessionConfig {
            vector_size: 8,
            tensor_size: 48,
            vectors: 2,
            gpus: 2,
            ..SessionConfig::default()
        };
        let stream = cfg.stream().unwrap();
        assert!(estimated_bytes(&cfg) >= stream.unique_bytes());
    }
}
