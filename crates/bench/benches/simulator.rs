//! Simulator micro-benchmarks: task execution (residency bookkeeping,
//! transfer/compute accounting) and the eviction path under pressure.

// Bench bodies unwrap freely: a bench that cannot set up its workload
// should abort, same as a test.
#![allow(clippy::unwrap_used)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use micco_gpusim::{GpuId, MachineConfig, SimMachine};
use micco_workload::{ContractionTask, TaskId, TensorDesc, TensorId};

const MB: u64 = 1 << 20;

fn task(i: u64, mod_tensors: u64, bytes: u64) -> ContractionTask {
    ContractionTask {
        id: TaskId(i),
        a: TensorDesc {
            id: TensorId(i % mod_tensors),
            bytes,
        },
        b: TensorDesc {
            id: TensorId((i * 7 + 3) % mod_tensors),
            bytes,
        },
        out: TensorDesc {
            id: TensorId(1_000_000 + i),
            bytes,
        },
        flops: 1_000_000,
    }
}

fn bench_execute(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    g.bench_function("execute_1k_tasks_roomy", |b| {
        b.iter(|| {
            let mut m = SimMachine::new(MachineConfig::mi100_like(8));
            for i in 0..1000u64 {
                let t = task(i, 128, MB);
                m.execute(&t, GpuId((i % 8) as usize)).unwrap();
            }
            m.barrier();
            black_box(m.stats().elapsed_secs)
        });
    });

    g.bench_function("execute_1k_tasks_evicting", |b| {
        b.iter(|| {
            // 16 MB per device: outputs accumulate, LRU eviction churns
            let cfg = MachineConfig::mi100_like(4).with_mem_bytes(16 * MB);
            let mut m = SimMachine::new(cfg);
            for i in 0..1000u64 {
                let t = task(i, 64, MB);
                m.execute(&t, GpuId((i % 4) as usize)).unwrap();
            }
            m.barrier();
            black_box(m.stats().total_evictions())
        });
    });

    g.bench_function("holders_lookup", |b| {
        let mut m = SimMachine::new(MachineConfig::mi100_like(8));
        for i in 0..512u64 {
            m.execute(&task(i, 256, MB), GpuId((i % 8) as usize))
                .unwrap();
        }
        b.iter(|| {
            use micco_gpusim::MachineView;
            let mut n = 0;
            for i in 0..256u64 {
                n += m.holders(TensorId(i)).len();
            }
            black_box(n)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_execute);
criterion_main!(benches);
