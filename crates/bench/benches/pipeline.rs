//! Front-end pipeline benchmarks: Wick enumeration, graph lowering,
//! staging/CSE — the preprocessing a Redstar job pays before scheduling.

// Bench bodies unwrap freely: a bench that cannot set up its workload
// should abort, same as a test.
#![allow(clippy::unwrap_used)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use micco_graph::{build_stream, plan_contraction, EdgeOrder, InternTable};
use micco_redstar::{al_rhopi, build_correlator, enumerate_diagrams, f0d2, PresetScale};

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));

    g.bench_function("wick_enumerate_6_hadrons", |b| {
        let ops: Vec<_> = (0..6)
            .map(|i| {
                micco_redstar::MesonOperator::new(
                    &format!("h{i}"),
                    micco_redstar::Flavor::Up,
                    micco_redstar::Flavor::Up,
                )
            })
            .collect();
        b.iter(|| black_box(enumerate_diagrams(&ops, 1000).len()));
    });

    g.bench_function("build_correlator_al_rhopi_ci", |b| {
        let spec = al_rhopi(PresetScale::Ci);
        b.iter(|| black_box(build_correlator(&spec).stream.total_tasks()));
    });

    g.bench_function("build_correlator_f0d2_ci", |b| {
        let spec = f0d2(PresetScale::Ci);
        b.iter(|| black_box(build_correlator(&spec).stream.total_tasks()));
    });

    g.bench_function("stage_1000_shared_plans", |b| {
        // 1000 chain graphs sharing a common prefix — the staging/CSE path
        let plans: Vec<_> = (0..1000u64)
            .map(|i| {
                let mut g = micco_graph::ContractionGraph::new();
                let node = |l: u64| micco_graph::HadronNode {
                    label: l,
                    kind: micco_tensor::ContractionKind::Meson,
                    batch: 2,
                    dim: 16,
                };
                let a = g.add_node(node(1));
                let bn = g.add_node(node(2));
                let cn = g.add_node(node(100 + i % 50));
                g.add_edge(a, bn).unwrap();
                g.add_edge(bn, cn).unwrap();
                plan_contraction(&g, EdgeOrder::Sequential).unwrap()
            })
            .collect();
        b.iter(|| {
            let mut intern = InternTable::new();
            black_box(build_stream(&plans, &mut intern).unique_steps)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
