//! Scheduler micro-benchmarks: per-pair assignment cost of MICCO vs the
//! baselines (the quantity Table V's "scheduling overhead" aggregates),
//! plus local-reuse-pattern classification.

// Bench bodies unwrap freely: a bench that cannot set up its workload
// should abort, same as a test.
#![allow(clippy::unwrap_used)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use micco_core::pattern::classify;
use micco_core::{GrouteScheduler, MiccoScheduler, ReuseBounds, Scheduler};
use micco_gpusim::{GpuId, MachineConfig, SimMachine};
use micco_workload::{RepeatDistribution, WorkloadSpec};

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    g
}

/// One full vector scheduled + executed per iteration — the realistic unit
/// of work (state resets cleanly at vector boundaries).
fn bench_assign_throughput(c: &mut Criterion) {
    let stream = WorkloadSpec::new(64, 384)
        .with_repeat_rate(0.75)
        .with_distribution(RepeatDistribution::Gaussian)
        .with_vectors(2)
        .generate();
    let cfg = MachineConfig::mi100_like(8);
    let mut group = quick(c);
    for (name, mk) in [
        (
            "micco",
            Box::new(|| {
                Box::new(MiccoScheduler::new(ReuseBounds::new(0, 2, 0))) as Box<dyn Scheduler>
            }) as Box<dyn Fn() -> Box<dyn Scheduler>>,
        ),
        (
            "groute",
            Box::new(|| Box::new(GrouteScheduler::new()) as Box<dyn Scheduler>),
        ),
    ] {
        group.bench_function(BenchmarkId::new("assign_vector64", name), |b| {
            b.iter(|| {
                let mut machine = SimMachine::new(cfg);
                let mut sched = mk();
                for v in &stream.vectors {
                    sched.begin_vector(v, &machine);
                    for t in &v.tasks {
                        let gpu = sched.assign(t, &machine);
                        machine.execute(t, black_box(gpu)).unwrap();
                    }
                    machine.barrier();
                }
                black_box(machine.stats().elapsed_secs)
            });
        });
    }
    group.finish();
}

fn bench_pattern_classification(c: &mut Criterion) {
    let stream = WorkloadSpec::new(64, 384)
        .with_repeat_rate(0.9)
        .with_vectors(2)
        .generate();
    let cfg = MachineConfig::mi100_like(8);
    let mut machine = SimMachine::new(cfg);
    // warm residency
    for (i, t) in stream.vectors[0].tasks.iter().enumerate() {
        machine.execute(t, GpuId(i % 8)).unwrap();
    }
    machine.barrier();
    let probe = &stream.vectors[1].tasks;
    let mut group = quick(c);
    group.bench_function("classify_pair", |b| {
        b.iter(|| {
            for t in probe {
                black_box(classify(black_box(t), &machine));
            }
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_assign_throughput,
    bench_pattern_classification
);
criterion_main!(benches);
