//! Planner throughput micro-benchmarks: end-to-end `plan_schedule_in`
//! (decide-only, arena-reusing) at 10⁴–10⁵ tasks on 8–64 simulated GPUs,
//! plus plan validation and static-analysis (lint) throughput over the
//! decided plan. The 10⁶-task point lives in `src/bin/bench_planner.rs`
//! (too heavy for the default criterion loop; run it via
//! `scripts/bench_planner.sh`).

// Bench bodies unwrap freely: a bench that cannot set up its workload
// should abort, same as a test.
#![allow(clippy::unwrap_used)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use micco_core::{
    plan_schedule_in, plan_schedule_with, DriverOptions, MiccoScheduler, PlanArena, ReuseBounds,
};
use micco_gpusim::MachineConfig;
use micco_workload::{RepeatDistribution, TensorPairStream, WorkloadSpec};

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("planner");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    g
}

/// `tasks` total contractions split over stages of 1000 pairs.
fn stream_of(tasks: usize) -> TensorPairStream {
    let per_stage = 1000.min(tasks);
    WorkloadSpec::new(per_stage, 64)
        .with_repeat_rate(0.6)
        .with_distribution(RepeatDistribution::Gaussian)
        .with_vectors(tasks.div_ceil(per_stage))
        .with_seed(42)
        .generate()
}

fn bench_plan_throughput(c: &mut Criterion) {
    let mut group = quick(c);
    for tasks in [10_000usize, 100_000] {
        let stream = stream_of(tasks);
        for gpus in [8usize, 64] {
            let cfg = MachineConfig::mi100_like(gpus);
            group.throughput(Throughput::Elements(stream.total_tasks() as u64));
            group.bench_function(
                BenchmarkId::new(format!("plan/{tasks}tasks"), format!("{gpus}gpus")),
                |b| {
                    let mut arena =
                        PlanArena::with_capacity(stream.total_tasks(), stream.vectors.len());
                    b.iter(|| {
                        let mut sched = MiccoScheduler::new(ReuseBounds::new(0, 2, 0));
                        let plan = plan_schedule_in(
                            &mut sched,
                            black_box(&stream),
                            &cfg,
                            DriverOptions::default(),
                            &mut arena,
                        )
                        .unwrap();
                        black_box(plan.fingerprint)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_validate_and_lint(c: &mut Criterion) {
    let stream = stream_of(10_000);
    let cfg = MachineConfig::mi100_like(8);
    let mut sched = MiccoScheduler::new(ReuseBounds::new(0, 2, 0));
    let plan = plan_schedule_with(&mut sched, &stream, &cfg, DriverOptions::default()).unwrap();

    let mut group = quick(c);
    group.throughput(Throughput::Elements(stream.total_tasks() as u64));
    group.bench_function(BenchmarkId::new("validate", "10000tasks"), |b| {
        b.iter(|| black_box(&plan).validate(black_box(&stream)).unwrap())
    });
    group.bench_function(BenchmarkId::new("lint", "10000tasks"), |b| {
        b.iter(|| {
            let report =
                micco_analysis::analyze_plan(black_box(&plan), black_box(&stream), black_box(&cfg));
            black_box(report.errors())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_plan_throughput, bench_validate_and_lint);
criterion_main!(benches);
