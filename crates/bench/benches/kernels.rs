//! Tensor-kernel benchmarks: the batched GEMM / rank-3 contraction that a
//! real deployment would dispatch to hipBLAS. These calibrate the
//! simulator's flop-rate assumptions against this host's CPU.

// Bench bodies unwrap freely: a bench that cannot set up its workload
// should abort, same as a test.
#![allow(clippy::unwrap_used)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use micco_tensor::{
    contraction_flops, gemm_blocked, gemm_naive, BatchedMatrix, BatchedTensor3, Complex64,
    ContractionKind, Matrix,
};

fn bench_batched_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/batched_matmul");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for &dim in &[64usize, 128] {
        let batch = 4;
        let a = BatchedMatrix::from_fn(batch, dim, |b, i, j| {
            Complex64::new((b + i) as f64 * 0.01, j as f64 * 0.01)
        });
        let bm = BatchedMatrix::from_fn(batch, dim, |b, i, j| {
            Complex64::new(j as f64 * 0.02, (b + i) as f64 * 0.005)
        });
        g.throughput(Throughput::Elements(contraction_flops(
            ContractionKind::Meson,
            batch,
            dim,
        )));
        g.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bch, _| {
            bch.iter(|| black_box(a.matmul(&bm).unwrap()));
        });
    }
    g.finish();
}

fn bench_tensor3_contract(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/tensor3_contract");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for &dim in &[16usize, 32] {
        let batch = 4;
        let a = BatchedTensor3::from_fn(batch, dim, |b, i, j, k| {
            Complex64::new((b + i + j) as f64 * 0.01, k as f64 * 0.01)
        });
        let t = BatchedTensor3::from_fn(batch, dim, |b, i, j, k| {
            Complex64::new(k as f64 * 0.02, (b + i + j) as f64 * 0.004)
        });
        g.throughput(Throughput::Elements(contraction_flops(
            ContractionKind::Baryon,
            batch,
            dim,
        )));
        g.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bch, _| {
            bch.iter(|| black_box(a.contract(&t).unwrap()));
        });
    }
    g.finish();
}

fn bench_trace_inner(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/trace_inner");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let a = BatchedMatrix::identity(8, 128);
    let b = BatchedMatrix::identity(8, 128);
    g.bench_function("dim128_batch8", |bch| {
        bch.iter(|| black_box(a.trace_inner(&b).unwrap()));
    });
    g.finish();
}

/// DESIGN.md-adjacent micro-ablation: the cache-blocked GEMM vs the naive
/// ordering at the paper's tensor sizes (results are bitwise identical —
/// asserted by unit tests — so only time differs).
fn bench_gemm_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/gemm_blocking");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for &n in &[128usize, 384] {
        let a = Matrix::from_fn(n, |i, j| Complex64::new(i as f64 * 0.01, j as f64 * 0.02));
        let b = Matrix::from_fn(n, |i, j| Complex64::new(j as f64 * 0.03, i as f64 * 0.01));
        let mut out = vec![Complex64::ZERO; n * n];
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| {
                out.fill(Complex64::ZERO);
                gemm_naive(a.as_slice(), b.as_slice(), &mut out, n);
                black_box(out[0])
            });
        });
        g.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| {
                out.fill(Complex64::ZERO);
                gemm_blocked(a.as_slice(), b.as_slice(), &mut out, n);
                black_box(out[0])
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_batched_matmul,
    bench_tensor3_contract,
    bench_trace_inner,
    bench_gemm_blocking
);
criterion_main!(benches);
