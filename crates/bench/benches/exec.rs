//! Execution-engine benchmarks: real-kernel throughput vs worker count.
//!
//! Expect *flat* scaling on most hosts: the batched kernels are already
//! rayon-parallel across the batch dimension, so the worker threads add an
//! outer layer of parallelism over cores the inner layer saturates. The
//! interesting readout is that extra workers also cost almost nothing —
//! the engine's locking (one `RwLock` around the store) does not
//! serialise.

// Bench bodies unwrap freely: a bench that cannot set up its workload
// should abort, same as a test.
#![allow(clippy::unwrap_used)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use micco_core::{run_schedule, MiccoScheduler, ReuseBounds};
use micco_exec::{execute_assignments, ExecOptions, TensorShape, TensorStore};
use micco_gpusim::MachineConfig;
use micco_workload::WorkloadSpec;

fn bench_exec_scaling(c: &mut Criterion) {
    let shape = TensorShape { batch: 2, dim: 64 };
    let stream = WorkloadSpec::new(16, shape.dim)
        .with_batch(shape.batch)
        .with_repeat_rate(0.5)
        .with_vectors(4)
        .with_seed(7)
        .generate();
    let mut g = c.benchmark_group("exec/worker_scaling");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let opts = ExecOptions::default();
    for workers in [1usize, 2, 4] {
        let assignments = run_schedule(
            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
            &stream,
            &MachineConfig::mi100_like(workers),
        )
        .expect("fits")
        .assignments;
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let store = TensorStore::new(shape.batch, shape.dim, 3);
                black_box(
                    execute_assignments(&stream, &assignments, w, &store, &opts)
                        .unwrap()
                        .checksum,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_exec_scaling);
criterion_main!(benches);
