//! Ablation benches for the design decisions called out in DESIGN.md §6:
//! eviction policy, per-pattern bounds vs a single shared bound, and
//! d2d source charging. Each variant runs the same reference workload;
//! compare the reported simulated times across group entries.

// Bench bodies unwrap freely: a bench that cannot set up its workload
// should abort, same as a test.
#![allow(clippy::unwrap_used)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use micco_core::{run_schedule, MiccoScheduler, ReuseBounds};
use micco_gpusim::{CostModel, EvictionPolicy, MachineConfig};
use micco_workload::{RepeatDistribution, TensorPairStream, WorkloadSpec};

fn reference_stream() -> TensorPairStream {
    WorkloadSpec::new(48, 384)
        .with_repeat_rate(0.6)
        .with_distribution(RepeatDistribution::Gaussian)
        .with_vectors(6)
        .with_seed(31)
        .generate()
}

fn group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    g
}

/// DESIGN.md §6.2 — eviction policy under oversubscription. The metric of
/// interest is the *simulated* time; this bench reports both (wall time of
/// the run is roughly proportional to simulated events processed).
fn bench_eviction_policy(c: &mut Criterion) {
    let stream = reference_stream();
    let mut g = group(c, "ablation/eviction_policy");
    for policy in [
        EvictionPolicy::Lru,
        EvictionPolicy::Fifo,
        EvictionPolicy::LargestFirst,
        EvictionPolicy::Clairvoyant,
    ] {
        let cfg = MachineConfig::mi100_like(8)
            .with_oversubscription(stream.unique_bytes(), 1.5)
            .with_eviction(policy);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut machine = micco_gpusim::SimMachine::new(*cfg).with_oracle(&stream);
                    let mut s = MiccoScheduler::new(ReuseBounds::new(0, 2, 0));
                    let r =
                        micco_core::driver::run_schedule_on(&mut s, &stream, &mut machine).unwrap();
                    black_box(r.elapsed_secs())
                });
            },
        );
    }
    g.finish();
}

/// DESIGN.md §6.1 — three per-pattern bounds (Table II) vs one shared
/// bound applied to every pattern class.
fn bench_per_pattern_bounds(c: &mut Criterion) {
    let stream = reference_stream();
    let cfg = MachineConfig::mi100_like(8);
    let mut g = group(c, "ablation/bounds_shape");
    for (name, bounds) in [
        ("per_pattern_020", ReuseBounds::new(0, 2, 0)),
        ("shared_0", ReuseBounds::new(0, 0, 0)),
        ("shared_1", ReuseBounds::new(1, 1, 1)),
        ("shared_2", ReuseBounds::new(2, 2, 2)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut s = MiccoScheduler::new(bounds);
                let r = run_schedule(&mut s, &stream, &cfg).unwrap();
                black_box(r.elapsed_secs())
            });
        });
    }
    g.finish();
}

/// DESIGN.md §6 — whether peer copies charge the source device.
fn bench_d2d_source_charge(c: &mut Criterion) {
    let stream = reference_stream();
    let mut g = group(c, "ablation/d2d_source_charge");
    for (name, charge) in [("charged", true), ("free", false)] {
        let cfg = MachineConfig::mi100_like(8).with_cost(CostModel {
            d2d_charges_source: charge,
            ..CostModel::mi100_like()
        });
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut s = MiccoScheduler::new(ReuseBounds::new(0, 2, 0));
                let r = run_schedule(&mut s, &stream, &cfg).unwrap();
                black_box(r.elapsed_secs())
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_eviction_policy,
    bench_per_pattern_bounds,
    bench_d2d_source_charge
);
criterion_main!(benches);
