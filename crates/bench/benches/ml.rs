//! ML micro-benchmarks: the per-vector inference cost the paper claims is
//! negligible (Fig. 6 step (2)), forest training, and Spearman's ρ.

// Bench bodies unwrap freely: a bench that cannot set up its workload
// should abort, same as a test.
#![allow(clippy::unwrap_used)]

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use micco_ml::{spearman, RandomForestRegressor, Regressor, TreeParams};

fn synthetic(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            vec![
                (i % 7) as f64,
                (i % 13) as f64 * 3.0,
                (i % 3) as f64 / 3.0,
                ((i * 2654435761) % 100) as f64 / 100.0,
            ]
        })
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|r| r[0] * 2.0 + (r[2] * 6.0).floor() + r[3])
        .collect();
    (x, y)
}

fn bench_ml(c: &mut Criterion) {
    let mut g = c.benchmark_group("ml");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let (x, y) = synthetic(300);
    let mut forest = RandomForestRegressor::paper_default(1);
    forest.fit(&x, &y);

    // The online path: one prediction per incoming vector.
    g.bench_function("forest150_predict_one", |b| {
        let row = [3.0, 9.0, 0.66, 0.42];
        b.iter(|| black_box(forest.predict_one(black_box(&row))));
    });

    g.bench_function("forest30_train_300rows", |b| {
        b.iter(|| {
            let mut f = RandomForestRegressor::new(30, TreeParams::default(), 2);
            f.fit(&x, &y);
            black_box(f.predict_one(&[1.0, 2.0, 0.3, 0.4]))
        });
    });

    let a: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
    let bvec: Vec<f64> = (0..1000).map(|i| ((i * 17 + 5) % 97) as f64).collect();
    g.bench_function("spearman_1k", |bch| {
        bch.iter(|| black_box(spearman(&a, &bvec)));
    });
    g.finish();
}

criterion_group!(benches, bench_ml);
criterion_main!(benches);
