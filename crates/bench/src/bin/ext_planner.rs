//! Extension experiment: cross-graph-aware contraction planning.
//!
//! Redstar's milestone reports describe "graph-based contractions with
//! optimal evaluation strategies" — choosing reduction orders that maximise
//! sharing across a correlation function's diagram family. This binary
//! compares per-graph (min-degree) planning against the joint
//! frequency-guided planner on the Table VI presets: unique steps, CSE
//! savings, and the MICCO-scheduled execution time of the resulting
//! streams.

use micco_bench::markdown_table;
use micco_core::{run_schedule, MiccoScheduler, ReuseBounds};
use micco_gpusim::MachineConfig;
use micco_redstar::{al_rhopi, build_correlator, build_correlator_shared, f0d2, f0d4, PresetScale};

fn main() {
    let cfg = MachineConfig::mi100_like(8);
    println!("# Extension — Cross-graph-aware Planning (Table VI presets, 8 GPUs)");
    let mut rows = Vec::new();
    for build in [al_rhopi, f0d2, f0d4] {
        let spec = build(PresetScale::Paper);
        let isolated = build_correlator(&spec);
        let shared = build_correlator_shared(&spec);
        let time = |p: &micco_redstar::CorrelatorProgram| {
            let mut s = MiccoScheduler::new(ReuseBounds::new(0, 2, 0));
            run_schedule(&mut s, &p.stream, &cfg)
                .expect("fits")
                .elapsed_secs()
        };
        let ti = time(&isolated);
        let ts = time(&shared);
        rows.push(vec![
            spec.name.clone(),
            format!(
                "{} ({:.1}%)",
                isolated.unique_steps,
                isolated.cse_savings() * 100.0
            ),
            format!(
                "{} ({:.1}%)",
                shared.unique_steps,
                shared.cse_savings() * 100.0
            ),
            format!("{:.2}x", ti / ts),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "correlator",
                "unique steps, per-graph planning (CSE)",
                "unique steps, joint planning (CSE)",
                "MICCO time gain"
            ],
            &rows
        )
    );
    println!("\nJoint planning steers every diagram toward the same intermediates, so more");
    println!("steps collapse before the scheduler ever sees them — less work beats faster");
    println!("placement of the same work.");
}
