//! Fig. 10 — Impact of tensor size.
//!
//! GFLOPS of Groute vs MICCO for tensor sizes 128–768. Vector size 64,
//! repeated rate 50 %, eight GPUs, both distributions.
//!
//! Paper reference: MICCO wins at every size, 1.35×–1.92×; performance is
//! strongly sensitive to tensor size (it sets the kernel cost).

use micco_bench::{distributions, run, standard_stream, tuned_fixed_micco, DEFAULT_GPUS};
use micco_core::GrouteScheduler;
use micco_gpusim::MachineConfig;

fn main() {
    let cfg = MachineConfig::mi100_like(DEFAULT_GPUS);
    println!("# Fig. 10 — Impact of Tensor Size (vector 64, rate 50%, {DEFAULT_GPUS} GPUs)");
    for (dist, dist_name) in distributions() {
        println!("\n## {dist_name}");
        let mut rows = Vec::new();
        let mut speedups = Vec::new();
        for &dim in &[128usize, 256, 384, 768] {
            let stream = standard_stream(64, dim, 0.5, dist, 19);
            let groute = run(&mut GrouteScheduler::new(), &stream, &cfg);
            let (mut micco, bounds) = tuned_fixed_micco(&stream, &cfg);
            let micco_pt = run(&mut micco, &stream, &cfg);
            let speedup = groute.elapsed_secs / micco_pt.elapsed_secs;
            speedups.push(speedup);
            rows.push(vec![
                dim.to_string(),
                format!("{:.0}", groute.gflops),
                format!("{:.0}", micco_pt.gflops),
                format!("{bounds}"),
                format!("{speedup:.2}x"),
            ]);
        }
        micco_bench::report::emit(
            &format!("fig10_{}", dist_name.to_lowercase()),
            &["tensor size", "Groute", "MICCO", "bounds", "speedup"],
            &rows,
        );
        println!(
            "speedup range {:.2}x–{:.2}x (paper: 1.35x–1.92x)",
            speedups.iter().copied().fold(f64::MAX, f64::min),
            speedups.iter().copied().fold(0.0, f64::max),
        );
    }
}
