//! Multi-tenant serving benchmark with a machine-readable report.
//!
//! Starts the micco-serve daemon in-process on an ephemeral port and
//! drives it with the open-loop load generator through two tenant mixes:
//!
//! 1. `high_solo` — a high-priority tenant alone on the pool: its p99
//!    here is the *unloaded* baseline.
//! 2. `high_vs_flood` — the same tenant at the same arrival rate while a
//!    low-priority tenant floods the queue at many times that rate.
//!
//! Fair-share isolation holds when the flooded p99 stays within 2× the
//! unloaded p99 (the priority class dominates dispatch, so the high
//! tenant waits for at most the job currently holding its GPUs). A third
//! phase restarts a store-backed daemon to prove warm starts: the same
//! submission on the second daemon must be served from the durable log
//! without invoking the scheduler. Writes `BENCH_serve.json` in the
//! schema `scripts/check_bench_schema.py` validates.
//!
//! Usage:
//!   bench_serve [--duration SECS] [--rate JOBS_PER_SEC]
//!               [--flood-factor N] [--pool-gpus N] [--hold-ms MS]
//!               [--out PATH]
//!
//! Defaults: 3s windows, 4 jobs/s for the high tenant, a 10× flood, a
//! 4-GPU pool and ~120 ms of pool occupancy per job. CI smoke runs use
//! `--duration 1`.

use std::time::Duration;

use micco_core::SessionConfig;
use micco_load::{run_open_loop, LoadReport, TenantLoad};
use micco_serve::{Priority, ServeConfig, Service, TenantSpec};

struct Args {
    duration: f64,
    rate: f64,
    flood_factor: f64,
    pool_gpus: usize,
    hold_ms: f64,
    out: String,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("bench_serve: {msg}");
    eprintln!(
        "usage: bench_serve [--duration SECS] [--rate JOBS_PER_SEC] \
         [--flood-factor N] [--pool-gpus N] [--hold-ms MS] [--out PATH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        duration: 3.0,
        rate: 4.0,
        flood_factor: 10.0,
        pool_gpus: 4,
        hold_ms: 120.0,
        out: "BENCH_serve.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        let num = |name: &str, v: String| {
            v.parse()
                .unwrap_or_else(|_| usage_error(&format!("{name} expects a number, got {v}")))
        };
        match flag.as_str() {
            "--duration" => args.duration = num("--duration", value("--duration")),
            "--rate" => args.rate = num("--rate", value("--rate")),
            "--flood-factor" => args.flood_factor = num("--flood-factor", value("--flood-factor")),
            "--pool-gpus" => {
                args.pool_gpus = value("--pool-gpus")
                    .parse()
                    .unwrap_or_else(|_| usage_error("--pool-gpus expects an integer"));
            }
            "--hold-ms" => args.hold_ms = num("--hold-ms", value("--hold-ms")),
            "--out" => args.out = value("--out"),
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    if args.duration <= 0.0 || args.rate <= 0.0 || args.flood_factor < 1.0 {
        usage_error("--duration and --rate must be positive, --flood-factor >= 1");
    }
    if args.pool_gpus < 2 || args.hold_ms <= 0.0 {
        usage_error("--pool-gpus must be >= 2 and --hold-ms positive");
    }
    args
}

/// The high-priority tenant's job: two GPUs of a small contraction batch.
fn prio_job() -> SessionConfig {
    SessionConfig {
        vector_size: 8,
        tensor_size: 48,
        vectors: 3,
        gpus: 2,
        ..SessionConfig::default()
    }
}

/// The flooding tenant's job: smaller, so its pool holds are shorter than
/// the high tenant's — head-of-line blocking stays well under one
/// high-job service time.
fn flood_job() -> SessionConfig {
    SessionConfig {
        vector_size: 8,
        tensor_size: 48,
        vectors: 1,
        gpus: 2,
        ..SessionConfig::default()
    }
}

/// Measure the simulated makespan of `cfg` once (no hold) so the real
/// runs can pin wall-clock pool occupancy to `--hold-ms` regardless of
/// the cost model's absolute numbers.
fn probe_sim_ms(cfg: &SessionConfig) -> f64 {
    let service = Service::start(
        "127.0.0.1:0",
        ServeConfig {
            pool_gpus: cfg.gpus,
            ..ServeConfig::default()
        },
    )
    .expect("probe daemon starts");
    let shared = service.scheduling().clone();
    let id = shared
        .submit("probe", None, cfg.clone())
        .expect("probe submit");
    let job = shared
        .wait_job(id, Duration::from_secs(30))
        .expect("probe finishes");
    let ms = job.result.expect("probe result").sim_elapsed_ms;
    service.shutdown();
    ms
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

/// One tenant's JSON row, weight looked up from the daemon config.
fn tenant_json(report: &LoadReport, tenant: &str, priority: &str, weight: u32) -> String {
    let t = report.tenant(tenant).expect("tenant in report");
    format!(
        "{{\"tenant\": \"{}\", \"priority\": \"{}\", \"weight\": {}, \
         \"submitted\": {}, \"completed\": {}, \"rejected\": {}, \
         \"evicted\": {}, \"failed\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
         \"jobs_per_sec\": {}}}",
        t.tenant,
        priority,
        weight,
        t.submitted,
        t.completed,
        t.rejected,
        t.evicted,
        t.failed,
        json_f64(t.latency.p50()),
        json_f64(t.latency.p99()),
        json_f64(t.jobs_per_sec),
    )
}

fn main() {
    let args = parse_args();
    let window = Duration::from_secs_f64(args.duration);
    let drain = Duration::from_secs(60);

    // pin wall-clock occupancy: hold-ms of real time per high job
    let probe_ms = probe_sim_ms(&prio_job());
    let time_scale = args.hold_ms / probe_ms.max(1e-6);
    eprintln!(
        "bench_serve: probe sim makespan {probe_ms:.3} ms -> time_scale {time_scale:.1} \
         (~{:.0} ms pool hold per high job)",
        args.hold_ms
    );

    let serve_config = || ServeConfig {
        pool_gpus: args.pool_gpus,
        time_scale,
        tenants: vec![
            TenantSpec {
                name: "prio".into(),
                priority: Priority::High,
                weight: 2,
            },
            TenantSpec {
                name: "flood".into(),
                priority: Priority::Low,
                weight: 1,
            },
        ],
        ..ServeConfig::default()
    };

    // mix 1: the high tenant alone — unloaded baseline
    eprintln!(
        "mix high_solo: {} jobs/s for {:.1}s",
        args.rate, args.duration
    );
    let service = Service::start("127.0.0.1:0", serve_config()).expect("daemon starts");
    let solo = run_open_loop(
        service.addr(),
        &[TenantLoad::new("prio", args.rate, prio_job()).with_priority("high")],
        window,
        drain,
        11,
    )
    .expect("solo run completes");
    service.shutdown();
    let solo_prio = solo.tenant("prio").expect("prio in solo report");
    assert!(
        solo_prio.completed > 0,
        "unloaded run completed no jobs — window too short"
    );
    let unloaded_p99 = solo_prio.latency.p99();
    eprintln!(
        "  {} done, p50 {:.1} ms, p99 {:.1} ms",
        solo_prio.completed,
        solo_prio.latency.p50(),
        unloaded_p99
    );

    // mix 2: same tenant, same rate, plus a low-priority flood
    let flood_rate = args.rate * args.flood_factor;
    eprintln!(
        "mix high_vs_flood: {} + {} jobs/s for {:.1}s",
        args.rate, flood_rate, args.duration
    );
    let service = Service::start("127.0.0.1:0", serve_config()).expect("daemon starts");
    let flooded = run_open_loop(
        service.addr(),
        &[
            TenantLoad::new("prio", args.rate, prio_job()).with_priority("high"),
            TenantLoad::new("flood", flood_rate, flood_job()).with_priority("low"),
        ],
        window,
        drain,
        13,
    )
    .expect("flooded run completes");
    service.shutdown();
    let flood_prio = flooded.tenant("prio").expect("prio in flooded report");
    assert!(
        flood_prio.completed > 0,
        "high tenant completed nothing under flood — isolation is broken"
    );
    let flooded_p99 = flood_prio.latency.p99();
    let ratio = flooded_p99 / unloaded_p99;
    eprintln!(
        "  prio: {} done, p99 {flooded_p99:.1} ms ({ratio:.2}x unloaded)",
        flood_prio.completed
    );
    assert!(
        ratio <= 2.0,
        "fair-share isolation failed: flooded p99 {flooded_p99:.1} ms is \
         {ratio:.2}x the unloaded {unloaded_p99:.1} ms (limit 2x)"
    );

    // warm start: a store-backed daemon, then a restart over the same dir
    let store = std::env::temp_dir().join(format!("micco-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let store_config = || ServeConfig {
        pool_gpus: args.pool_gpus,
        store: Some(store.clone()),
        ..ServeConfig::default()
    };
    let submit_once = |label: &str| {
        let service = Service::start("127.0.0.1:0", store_config()).expect("daemon starts");
        let shared = service.scheduling().clone();
        let id = shared
            .submit("warm", None, prio_job())
            .expect("warm submit");
        let job = shared.wait_job(id, Duration::from_secs(30));
        assert!(job.is_some(), "{label} job finishes");
        let result = job.and_then(|j| j.result);
        assert!(result.is_some(), "{label} job result");
        let result = result.expect("checked above");
        let stats = shared.cache_stats().expect("store-backed daemon");
        service.shutdown();
        (result, stats)
    };
    let (cold, cold_stats) = submit_once("cold");
    assert!(!cold.warm, "first submission on a fresh store must plan");
    let (warm, warm_stats) = submit_once("warm");
    assert!(
        warm.warm && warm_stats.1 >= 1,
        "restart over {} did not serve the plan from the log \
         (cold stats {cold_stats:?}, warm stats {warm_stats:?})",
        store.display()
    );
    let speedup = if warm.plan_ms > 0.0 {
        cold.plan_ms / warm.plan_ms
    } else {
        f64::INFINITY
    };
    eprintln!(
        "warm start: plan {:.3} ms cold -> {:.3} ms warm ({} log hit(s))",
        cold.plan_ms, warm.plan_ms, warm_stats.1
    );
    let _ = std::fs::remove_dir_all(&store);

    let throughput = flooded.total_jobs_per_sec();
    let mixes = format!(
        "[\n    {{\"name\": \"high_solo\", \"duration_secs\": {}, \"tenants\": [\n      {}\n    ]}},\n    \
         {{\"name\": \"high_vs_flood\", \"duration_secs\": {}, \"tenants\": [\n      {},\n      {}\n    ]}}\n  ]",
        json_f64(args.duration),
        tenant_json(&solo, "prio", "high", 2),
        json_f64(args.duration),
        tenant_json(&flooded, "prio", "high", 2),
        tenant_json(&flooded, "flood", "low", 1),
    );
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"version\": 1,\n  \"pool_gpus\": {},\n  \
         \"time_scale\": {},\n  \"mixes\": {},\n  \
         \"isolation\": {{\"tenant\": \"prio\", \"unloaded_p99_ms\": {}, \
         \"flooded_p99_ms\": {}, \"ratio\": {}}},\n  \
         \"warm_start\": {{\"cold_plan_ms\": {}, \"warm_plan_ms\": {}, \
         \"log_hits\": {}, \"warm_hit\": true, \"speedup\": {}}},\n  \
         \"throughput_jobs_per_sec\": {}\n}}\n",
        args.pool_gpus,
        json_f64(time_scale),
        mixes,
        json_f64(unloaded_p99),
        json_f64(flooded_p99),
        json_f64(ratio),
        json_f64(cold.plan_ms),
        json_f64(warm.plan_ms),
        warm_stats.1,
        json_f64(speedup),
        json_f64(throughput),
    );
    std::fs::write(&args.out, json).expect("write report");
    eprintln!(
        "throughput {throughput:.2} jobs/s under flood; wrote {}",
        args.out
    );
}
