//! Table VI — Real many-body correlation functions in the Redstar system.
//!
//! The three correlators of the `a1` and `f0` systems (al_rhopi, f0d2,
//! f0d4), built by the `micco-redstar` front end across sixteen time
//! slices, scheduled on eight GPUs. Groute vs MICCO.
//!
//! Paper reference: tensor sizes 128/256/256; total device memory 56 GB /
//! 4645 GB / 4065 GB; speedups 1.49× / 1.41× / 1.36×. Our front end
//! reproduces the structure (operator content, momentum sweep, 16 slices,
//! cross-diagram sharing) at reproduction scale; the claim under test is
//! that MICCO's gains carry from synthetic streams to Redstar-shaped ones.

use micco_core::{run_schedule, GrouteScheduler, MiccoScheduler, ReuseBounds};
use micco_gpusim::MachineConfig;
use micco_redstar::{al_rhopi, build_correlator, f0d2, f0d4, PresetScale};

fn main() {
    let cfg = MachineConfig::mi100_like(8);
    println!("# Table VI — Real Many-body Correlation Functions (8 GPUs, 16 time slices)");
    let mut rows = Vec::new();
    let paper = [("al_rhopi", 1.49), ("f0d2", 1.41), ("f0d4", 1.36)];
    for (build, (pname, pspeed)) in [al_rhopi as fn(PresetScale) -> _, f0d2, f0d4]
        .iter()
        .zip(paper)
    {
        let spec = build(PresetScale::Paper);
        eprintln!("# building {} (this enumerates every diagram)…", spec.name);
        let program = build_correlator(&spec);
        // Size memory to the per-vector peak so the large correlators run
        // under pressure, as the paper's 4.6 TB jobs do on 8×32 GB.
        let cfg_run = cfg.with_oversubscription(program.stream.peak_vector_bytes() * 2, 1.0);
        let groute =
            run_schedule(&mut GrouteScheduler::new(), &program.stream, &cfg_run).expect("fits");
        // MICCO with the small-bounds setting that Fig. 8 favours; real
        // Redstar deployments would use the regression model identically.
        let mut micco = MiccoScheduler::new(ReuseBounds::new(0, 2, 0));
        let m = run_schedule(&mut micco, &program.stream, &cfg_run).expect("fits");
        let speedup = groute.elapsed_secs() / m.elapsed_secs();
        rows.push(vec![
            spec.name.clone(),
            spec.tensor_dim.to_string(),
            format!(
                "{:.2} GiB",
                program.working_set_bytes as f64 / (1u64 << 30) as f64
            ),
            format!("{}", program.graph_count),
            format!("{:.1}%", program.cse_savings() * 100.0),
            format!("{speedup:.2}x"),
            format!("{pspeed:.2}x ({pname})"),
        ]);
    }
    micco_bench::report::emit(
        "tab6_redstar",
        &[
            "Function",
            "Tensor Size",
            "Memory Cost",
            "Graphs",
            "CSE savings",
            "Speedup",
            "Paper speedup",
        ],
        &rows,
    );
    println!("\nMemory cost is at reproduction scale (batch 4 instead of the production");
    println!("dilution count); the structure — graphs, sharing, stage shape — is faithful.");
}
