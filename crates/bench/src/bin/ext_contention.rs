//! Extension experiment: shared host-link (PCIe) contention.
//!
//! The default cost model gives each device an independent host link; a
//! worst-case alternative serialises every H2D transfer through one shared
//! root complex. This binary measures both schedulers under both link
//! models. The measured outcome is a *negative result*: full serialisation
//! makes the schedulers converge, because first-touch traffic is
//! schedule-invariant — see the closing note it prints.

use micco_bench::{distributions, run, standard_stream, DEFAULT_GPUS, DEFAULT_TENSOR_SIZE};
use micco_core::{GrouteScheduler, MiccoScheduler, ReuseBounds};
use micco_gpusim::{CostModel, MachineConfig};

fn main() {
    println!("# Extension — Shared Host-Link Contention (vector 64, tensor {DEFAULT_TENSOR_SIZE}, {DEFAULT_GPUS} GPUs, rate 50%)");
    for (dist, dist_name) in distributions() {
        println!("\n## {dist_name}");
        let stream = standard_stream(64, DEFAULT_TENSOR_SIZE, 0.5, dist, 83);
        let mut rows = Vec::new();
        for (label, shared) in [("independent links", false), ("shared PCIe link", true)] {
            let cost = if shared {
                CostModel::mi100_like().with_shared_h2d_link()
            } else {
                CostModel::mi100_like()
            };
            let cfg = MachineConfig::mi100_like(DEFAULT_GPUS).with_cost(cost);
            let groute = run(&mut GrouteScheduler::new(), &stream, &cfg);
            let micco = run(
                &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
                &stream,
                &cfg,
            );
            rows.push(vec![
                label.to_owned(),
                format!("{:.0}", groute.gflops),
                format!("{:.0}", micco.gflops),
                format!("{:.2}x", groute.elapsed_secs / micco.elapsed_secs),
            ]);
        }
        micco_bench::report::emit(
            &format!("ext_contention_{}", dist_name.to_lowercase()),
            &["link model", "Groute", "MICCO", "speedup"],
            &rows,
        );
    }
    println!("\nReading (a negative result worth keeping): with a fully serialised link the");
    println!("two schedulers *converge*. Every distinct tensor is fetched from the host");
    println!("exactly once under either policy, so the serialised link becomes a");
    println!("schedule-invariant critical path that swamps the d2d/reuse differences the");
    println!("schedulers control. MICCO's edge therefore depends on per-device (or at");
    println!("least parallel) host links — which is what MI100 nodes actually have, and");
    println!("what the default cost model assumes.");
}
