//! Fig. 7 — Overall performance.
//!
//! Eight panels: {Uniform, Gaussian} × vector size {8, 16, 32, 64}, repeated
//! rate 25 %–100 %, tensor size 384, eight GPUs. Series: Groute,
//! MICCO-naive (bounds 0), MICCO-optimal (regression-driven bounds), plus
//! the MICCO-optimal/Groute speedup (the paper's blue stars).
//!
//! Paper reference: up to 2.25× speedup; geomean 1.57× (Uniform) and
//! 1.65× (Gaussian); MICCO-optimal up to 1.89× over MICCO-naive.

use micco_bench::{
    distributions, geomean, run, standard_stream, trained_model, DEFAULT_GPUS, DEFAULT_TENSOR_SIZE,
};
use micco_core::{GrouteScheduler, MiccoScheduler};
use micco_gpusim::MachineConfig;

fn main() {
    let cfg = MachineConfig::mi100_like(DEFAULT_GPUS);
    eprintln!("# training regression model (one-off)…");
    let model = trained_model(60, &cfg, 7);

    println!("# Fig. 7 — Overall Performance (GFLOPS; tensor size {DEFAULT_TENSOR_SIZE}, {DEFAULT_GPUS} GPUs)");
    let rates = [0.25, 0.5, 0.75, 1.0];
    let vector_sizes = [8usize, 16, 32, 64];

    for (dist, dist_name) in distributions() {
        let mut speedups = Vec::new();
        let mut naive_ratio = Vec::new();
        for &vs in &vector_sizes {
            println!("\n## {dist_name}, vector size {vs}");
            let mut rows = Vec::new();
            for &rate in &rates {
                let stream = standard_stream(vs, DEFAULT_TENSOR_SIZE, rate, dist, 11);
                let groute = run(&mut GrouteScheduler::new(), &stream, &cfg);
                let naive = run(&mut MiccoScheduler::naive(), &stream, &cfg);
                let opt = run(
                    &mut MiccoScheduler::with_provider(model.clone()),
                    &stream,
                    &cfg,
                );
                let speedup = groute.elapsed_secs / opt.elapsed_secs;
                speedups.push(speedup);
                naive_ratio.push(naive.elapsed_secs / opt.elapsed_secs);
                rows.push(vec![
                    format!("{:.0}%", rate * 100.0),
                    format!("{:.0}", groute.gflops),
                    format!("{:.0}", naive.gflops),
                    format!("{:.0}", opt.gflops),
                    format!("{speedup:.2}x"),
                ]);
            }
            micco_bench::report::emit(
                &format!("fig7_{}_v{vs}", dist_name.to_lowercase()),
                &[
                    "repeated rate",
                    "Groute",
                    "MICCO-naive",
                    "MICCO-optimal",
                    "speedup*",
                ],
                &rows,
            );
        }
        println!(
            "\n{dist_name}: geomean speedup MICCO-optimal/Groute = {:.2}x (paper: {}), max {:.2}x (paper: up to 2.25x)",
            geomean(&speedups),
            if dist_name == "Uniform" { "1.57x" } else { "1.65x" },
            speedups.iter().copied().fold(0.0, f64::max),
        );
        println!(
            "{dist_name}: max MICCO-optimal/MICCO-naive = {:.2}x (paper: up to 1.89x)",
            naive_ratio.iter().copied().fold(0.0, f64::max),
        );
    }
}
