//! Fig. 9 — Scalability.
//!
//! GFLOPS of Groute vs MICCO as the GPU count grows 1 → 8. Vector size 64,
//! tensor size 384, repeated rate 50 %, both distributions.
//!
//! Paper reference: MICCO up to 1.96× over Groute; GFLOPS grows slowly with
//! GPU count (memory operations dominate small tensors, and more devices
//! make full data reuse harder); the speedup widens with more GPUs (1.18×
//! at 2 GPUs → 1.68× at 8).

use micco_bench::{distributions, run, standard_stream, tuned_fixed_micco, DEFAULT_TENSOR_SIZE};
use micco_core::GrouteScheduler;
use micco_gpusim::MachineConfig;

fn main() {
    println!("# Fig. 9 — Scalability (vector 64, tensor {DEFAULT_TENSOR_SIZE}, rate 50%)");
    for (dist, dist_name) in distributions() {
        println!("\n## {dist_name}");
        let mut rows = Vec::new();
        let mut speedups = Vec::new();
        for gpus in 1..=8usize {
            let cfg = MachineConfig::mi100_like(gpus);
            let stream = standard_stream(64, DEFAULT_TENSOR_SIZE, 0.5, dist, 17);
            let groute = run(&mut GrouteScheduler::new(), &stream, &cfg);
            let (mut micco, bounds) = tuned_fixed_micco(&stream, &cfg);
            let micco_pt = run(&mut micco, &stream, &cfg);
            let speedup = groute.elapsed_secs / micco_pt.elapsed_secs;
            speedups.push(speedup);
            rows.push(vec![
                gpus.to_string(),
                format!("{:.0}", groute.gflops),
                format!("{:.0}", micco_pt.gflops),
                format!("{bounds}"),
                format!("{speedup:.2}x"),
            ]);
        }
        micco_bench::report::emit(
            &format!("fig9_{}", dist_name.to_lowercase()),
            &["GPUs", "Groute", "MICCO", "bounds", "speedup"],
            &rows,
        );
        println!(
            "max speedup {:.2}x (paper: up to 1.96x); speedup at 2 GPUs {:.2}x vs 8 GPUs {:.2}x (paper: 1.18x → 1.68x)",
            speedups.iter().copied().fold(0.0, f64::max),
            speedups[1],
            speedups[7],
        );
    }
}
