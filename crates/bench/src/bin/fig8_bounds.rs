//! Fig. 8 — Impact of reuse bounds.
//!
//! Thirteen reuse-bound settings (values 0–2) measured on three cases:
//! (1) vector 64, rate 50 %; (2) vector 16, rate 25 %; (3) vector 32,
//! rate 75 %. Tensor size 384, eight GPUs, both distributions.
//!
//! Paper reference: the best setting varies per case — e.g. 9753 GFLOPS at
//! (0,2,0) for case (1) Uniform vs 5869 GFLOPS at (0,2,2) for case (3) —
//! demonstrating no single setting wins everywhere (hence the regression
//! model).

use micco_bench::{distributions, standard_stream, DEFAULT_GPUS, DEFAULT_TENSOR_SIZE};
use micco_core::tuner::{evaluate_bounds, FIG8_BOUND_SETTINGS};
use micco_gpusim::MachineConfig;

fn main() {
    let cfg = MachineConfig::mi100_like(DEFAULT_GPUS);
    let cases = [(1, 64usize, 0.5), (2, 16, 0.25), (3, 32, 0.75)];

    println!("# Fig. 8 — Impact of Reuse Bounds (GFLOPS; tensor {DEFAULT_TENSOR_SIZE}, {DEFAULT_GPUS} GPUs)");
    for (dist, dist_name) in distributions() {
        println!("\n## {dist_name}");
        let mut rows = Vec::new();
        let mut best: Vec<(f64, [usize; 3])> = vec![(0.0, [0; 3]); cases.len()];
        for setting in FIG8_BOUND_SETTINGS {
            let mut row = vec![format!("({},{},{})", setting[0], setting[1], setting[2])];
            for (i, &(_, vs, rate)) in cases.iter().enumerate() {
                let stream = standard_stream(vs, DEFAULT_TENSOR_SIZE, rate, dist, 13);
                let gf = evaluate_bounds(&stream, &cfg, setting.into());
                if gf > best[i].0 {
                    best[i] = (gf, setting);
                }
                row.push(format!("{gf:.0}"));
            }
            rows.push(row);
        }
        micco_bench::report::emit(
            &format!("fig8_{}", dist_name.to_lowercase()),
            &[
                "bounds",
                "case(1) v64 r50%",
                "case(2) v16 r25%",
                "case(3) v32 r75%",
            ],
            &rows,
        );
        for (i, &(_, vs, rate)) in cases.iter().enumerate() {
            println!(
                "best for case ({}) v{} r{:.0}%: {:?} at {:.0} GFLOPS",
                i + 1,
                vs,
                rate * 100.0,
                best[i].1,
                best[i].0
            );
        }
    }
    println!("\nNote: per the paper, the optimal setting shifts with vector size, repeated rate,");
    println!("and distribution — the spread across rows above is the evidence.");
}
