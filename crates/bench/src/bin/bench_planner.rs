//! Planner throughput benchmark with a machine-readable report.
//!
//! Plans the same workload twice — once with the fast planner
//! (`plan_schedule_in`: interned IDs, SoA shadow state, arena-allocated
//! plan) and once with the retained seed reference (`plan_schedule_seed`,
//! the frozen map-based machine) — asserts the two plans are
//! **byte-identical**, and writes `BENCH_planner.json` with tasks/sec for
//! both paths, the speedup, and peak RSS.
//!
//! Usage:
//!   bench_planner [--tasks N] [--gpus G] [--out PATH] [--skip-seed]
//!
//! Defaults are the full acceptance point (1,000,000 tasks on 64 GPUs);
//! CI smoke runs use `--tasks 20000 --gpus 8`. `--skip-seed` omits the
//! slow reference pass (speedup is then reported as null).

use std::time::Instant;

use micco_core::{
    plan_schedule_in, plan_schedule_seed, DriverOptions, MiccoScheduler, PlanArena, ReuseBounds,
    SchedulePlan, Scheduler,
};
use micco_gpusim::MachineConfig;
use micco_workload::{RepeatDistribution, TensorPairStream, WorkloadSpec};

struct Args {
    tasks: usize,
    gpus: usize,
    out: String,
    skip_seed: bool,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("bench_planner: {msg}");
    eprintln!("usage: bench_planner [--tasks N] [--gpus G] [--out PATH] [--skip-seed]");
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        tasks: 1_000_000,
        gpus: 64,
        out: "BENCH_planner.json".to_string(),
        skip_seed: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        let int = |name: &str, v: String| {
            v.parse()
                .unwrap_or_else(|_| usage_error(&format!("{name} expects an integer, got {v}")))
        };
        match flag.as_str() {
            "--tasks" => args.tasks = int("--tasks", value("--tasks")),
            "--gpus" => args.gpus = int("--gpus", value("--gpus")),
            "--out" => args.out = value("--out"),
            "--skip-seed" => args.skip_seed = true,
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    args
}

fn stream_of(tasks: usize) -> TensorPairStream {
    let per_stage = 1000.min(tasks.max(1));
    WorkloadSpec::new(per_stage, 64)
        .with_repeat_rate(0.6)
        .with_distribution(RepeatDistribution::Gaussian)
        .with_vectors(tasks.div_ceil(per_stage))
        .with_seed(42)
        .generate()
}

/// Peak resident set size in bytes from /proc/self/status (Linux only).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

fn time_plan<F: FnOnce() -> SchedulePlan>(f: F) -> (SchedulePlan, f64) {
    let start = Instant::now();
    let plan = f();
    (plan, start.elapsed().as_secs_f64())
}

fn json_f64(v: f64) -> String {
    // JSON has no NaN/Inf; the schema checker rejects them anyway.
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = parse_args();
    eprintln!(
        "bench_planner: {} tasks on {} gpus{}",
        args.tasks,
        args.gpus,
        if args.skip_seed {
            " (seed pass skipped)"
        } else {
            ""
        }
    );

    let stream = stream_of(args.tasks);
    let total = stream.total_tasks();
    let cfg = MachineConfig::mi100_like(args.gpus);
    let opts = DriverOptions::default();
    let mk = || MiccoScheduler::new(ReuseBounds::new(0, 2, 0));

    // Warm-up pass (touches the allocator and page cache), then the
    // measured fast pass reusing the warm arena — the steady-state shape.
    let mut arena = PlanArena::with_capacity(total, stream.vectors.len());
    let mut warm = mk();
    plan_schedule_in(&mut warm, &stream, &cfg, opts, &mut arena).expect("warm-up plans");
    let (fast_plan, fast_secs) = time_plan(|| {
        let mut sched = mk();
        plan_schedule_in(&mut sched, &stream, &cfg, opts, &mut arena).expect("fast path plans")
    });
    let fast_rate = total as f64 / fast_secs;
    eprintln!("fast: {fast_secs:.3}s ({fast_rate:.0} tasks/sec)");

    let seed = if args.skip_seed {
        None
    } else {
        let (seed_plan, seed_secs) = time_plan(|| {
            let mut sched = mk();
            plan_schedule_seed(&mut sched as &mut dyn Scheduler, &stream, &cfg, opts)
                .expect("seed path plans")
        });
        assert_eq!(
            fast_plan.to_text(),
            seed_plan.to_text(),
            "fast and seed planners must emit byte-identical plans"
        );
        assert_eq!(fast_plan.digest(), seed_plan.digest());
        eprintln!(
            "seed: {seed_secs:.3}s ({:.0} tasks/sec); plans byte-identical",
            total as f64 / seed_secs
        );
        Some(seed_secs)
    };

    let speedup = seed.map(|s| s / fast_secs);
    if let Some(x) = speedup {
        eprintln!("speedup: {x:.1}x");
    }

    let rss = peak_rss_bytes();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"planner\",\n",
            "  \"version\": 1,\n",
            "  \"tasks\": {tasks},\n",
            "  \"gpus\": {gpus},\n",
            "  \"stages\": {stages},\n",
            "  \"scheduler\": \"{sched}\",\n",
            "  \"digest\": \"{digest:016x}\",\n",
            "  \"fast_secs\": {fast_secs},\n",
            "  \"fast_tasks_per_sec\": {fast_rate},\n",
            "  \"seed_secs\": {seed_secs},\n",
            "  \"seed_tasks_per_sec\": {seed_rate},\n",
            "  \"speedup\": {speedup},\n",
            "  \"peak_rss_bytes\": {rss}\n",
            "}}\n"
        ),
        tasks = total,
        gpus = args.gpus,
        stages = stream.vectors.len(),
        sched = fast_plan.scheduler,
        digest = fast_plan.digest(),
        fast_secs = json_f64(fast_secs),
        fast_rate = json_f64(fast_rate),
        seed_secs = seed.map_or("null".into(), json_f64),
        seed_rate = seed.map_or("null".into(), |s| json_f64(total as f64 / s)),
        speedup = speedup.map_or("null".into(), json_f64),
        rss = rss.map_or("null".to_string(), |b| b.to_string()),
    );
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {}", args.out);
    print!("{json}");
}
