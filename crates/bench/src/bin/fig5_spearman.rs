//! Fig. 5 — Spearman correlation heatmap.
//!
//! Correlation coefficients among the four data characteristics
//! (DataDistribution, VectorSize, RepeatRate, TensorSize), the three reuse
//! bounds of the grid-search optimum, and achieved GFLOPS, computed over the
//! labelled training population.
//!
//! Paper reference: all seven factors correlate positively with GFLOPS;
//! DataDistribution and RepeatRate correlate positively with the bounds
//! (reuse pays under biased/repetitive data), while VectorSize and
//! TensorSize correlate negatively with the bounds (bigger work is more
//! sensitive to imbalance).

use micco_core::tuner::{build_training_set, TrainingConfig};
use micco_gpusim::MachineConfig;
use micco_ml::spearman_matrix;

fn main() {
    let machine = MachineConfig::mi100_like(8);
    let tc = TrainingConfig {
        samples: 200,
        seed: 0x5EA,
        ..TrainingConfig::default()
    };
    eprintln!("# labelling {} samples by grid search…", tc.samples);
    let samples = build_training_set(&tc, &machine);

    // Columns in the paper's ordering.
    let names = [
        "DataDist",
        "VectorSize",
        "RepeatRate",
        "TensorSize",
        "bound_1",
        "bound_2",
        "bound_3",
        "GFLOPS",
    ];
    let columns: Vec<Vec<f64>> = vec![
        samples.iter().map(|s| s.features[3]).collect(), // distribution bias
        samples.iter().map(|s| s.features[0]).collect(), // vector size
        samples.iter().map(|s| s.features[2]).collect(), // repeat rate
        samples.iter().map(|s| s.features[1]).collect(), // tensor bytes
        samples.iter().map(|s| s.bounds[0] as f64).collect(),
        samples.iter().map(|s| s.bounds[1] as f64).collect(),
        samples.iter().map(|s| s.bounds[2] as f64).collect(),
        samples.iter().map(|s| s.gflops).collect(),
    ];
    let m = spearman_matrix(&columns);

    println!(
        "# Fig. 5 — Spearman correlation heatmap ({} samples)",
        samples.len()
    );
    print!("{:>11}", "");
    for n in names {
        print!("{n:>11}");
    }
    println!();
    for (i, n) in names.iter().enumerate() {
        print!("{n:>11}");
        for v in &m[i] {
            print!("{v:>11.2}");
        }
        println!();
    }

    // The paper's headline observations, as explicit checks.
    let gflops = names.len() - 1;
    println!("\nChecks against the paper's reading of Fig. 5:");
    for (i, n) in names.iter().enumerate().take(gflops) {
        let rho = m[i][gflops];
        println!(
            "  ρ({n}, GFLOPS) = {rho:+.2} {}",
            if rho > 0.0 {
                "(positive, as reported)"
            } else {
                "(paper reports positive)"
            }
        );
    }
}
