//! Extension experiment: multi-correlator jobs.
//!
//! Production Redstar campaigns evaluate many correlation functions against
//! the same gauge configurations in one session; operators (pions are
//! everywhere) and whole sub-chains recur *across* correlators. This binary
//! compares running the three Table VI correlators separately vs as one
//! jointly-planned job, and prints the Fig. 4 mapping histograms showing
//! where the savings come from.

use micco_bench::markdown_table;
use micco_core::{mapping_histogram, run_schedule, MiccoScheduler, ReuseBounds};
use micco_gpusim::MachineConfig;
use micco_redstar::{al_rhopi, build_correlator, build_job, f0d2, f0d4, PresetScale};

fn main() {
    let cfg = MachineConfig::mi100_like(8);
    let specs = vec![
        al_rhopi(PresetScale::Paper),
        f0d2(PresetScale::Paper),
        f0d4(PresetScale::Paper),
    ];

    println!("# Extension — Multi-correlator Job (Table VI presets together, 8 GPUs)");
    let mut rows = Vec::new();
    let mut separate_steps = 0usize;
    let mut separate_secs = 0.0;
    for spec in &specs {
        let program = build_correlator(spec);
        let mut micco = MiccoScheduler::new(ReuseBounds::new(0, 2, 0));
        let r = run_schedule(&mut micco, &program.stream, &cfg).expect("fits");
        separate_steps += program.unique_steps;
        separate_secs += r.elapsed_secs();
        let hist = mapping_histogram(&program.stream, &r.assignments, &cfg);
        rows.push(vec![
            program.name.clone(),
            program.unique_steps.to_string(),
            format!("{:.2}", r.elapsed_secs() * 1e3),
            format!("{:.1}%", hist.m1_fraction() * 100.0),
            format!("{:.2}", hist.mean_memory_ops()),
        ]);
    }
    let job = build_job(&specs);
    let mut micco = MiccoScheduler::new(ReuseBounds::new(0, 2, 0));
    let rj = run_schedule(&mut micco, &job.stream, &cfg).expect("fits");
    let hist = mapping_histogram(&job.stream, &rj.assignments, &cfg);
    rows.push(vec![
        format!("JOB: {}", job.name),
        job.unique_steps.to_string(),
        format!("{:.2}", rj.elapsed_secs() * 1e3),
        format!("{:.1}%", hist.m1_fraction() * 100.0),
        format!("{:.2}", hist.mean_memory_ops()),
    ]);
    print!(
        "{}",
        markdown_table(
            &[
                "program",
                "unique steps",
                "MICCO time (ms)",
                "mapping (1) share",
                "mean mem-ops"
            ],
            &rows
        )
    );
    println!(
        "\nseparate: {} steps in {:.2} ms | job: {} steps in {:.2} ms → {:.2}x end-to-end",
        separate_steps,
        separate_secs * 1e3,
        job.unique_steps,
        rj.elapsed_secs() * 1e3,
        separate_secs / rj.elapsed_secs(),
    );
    println!("\nThe win comes from the front end, not the scheduler: joint frequency-guided");
    println!("planning eliminates whole steps (shared sub-chains are computed once for the");
    println!("entire job), so the machine simply has less work. The mapping histogram of");
    println!("the surviving steps stays comparable — reuse that used to be a repeated");
    println!("computation became no computation at all.");
}
