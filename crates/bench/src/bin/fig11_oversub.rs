//! Fig. 11 — Memory oversubscription.
//!
//! Device memory is sized so the stream's working set oversubscribes the
//! aggregate memory by 125 %–200 %. Vector size 64, tensor size 384,
//! repeated rate 50 %, eight GPUs, both distributions.
//!
//! Paper reference: MICCO up to 1.9× over Groute; GFLOPS falls as the
//! oversubscription rate rises (1841 → 1224 Gaussian, 2663 → 1194 Uniform);
//! geomean speedups 1.4× (Gaussian) and 1.2× (Uniform).

use micco_bench::{
    distributions, geomean, run, standard_stream, tuned_fixed_micco, DEFAULT_GPUS,
    DEFAULT_TENSOR_SIZE,
};
use micco_core::GrouteScheduler;
use micco_gpusim::MachineConfig;

fn main() {
    println!(
        "# Fig. 11 — Memory Oversubscription (vector 64, tensor {DEFAULT_TENSOR_SIZE}, rate 50%)"
    );
    for (dist, dist_name) in distributions() {
        println!("\n## {dist_name}");
        let mut rows = Vec::new();
        let mut speedups = Vec::new();
        let mut first_gf = 0.0;
        let mut last_gf = 0.0;
        for &rate in &[1.25, 1.5, 1.75, 2.0] {
            let stream = standard_stream(64, DEFAULT_TENSOR_SIZE, 0.5, dist, 23);
            let cfg = MachineConfig::mi100_like(DEFAULT_GPUS)
                .with_oversubscription(stream.unique_bytes(), rate);
            let groute = run(&mut GrouteScheduler::new(), &stream, &cfg);
            let (mut micco, bounds) = tuned_fixed_micco(&stream, &cfg);
            let micco_pt = run(&mut micco, &stream, &cfg);
            let speedup = groute.elapsed_secs / micco_pt.elapsed_secs;
            speedups.push(speedup);
            if rows.is_empty() {
                first_gf = micco_pt.gflops;
            }
            last_gf = micco_pt.gflops;
            rows.push(vec![
                format!("{:.0}%", rate * 100.0),
                format!("{:.0}", groute.gflops),
                format!("{:.0}", micco_pt.gflops),
                format!("{bounds}"),
                format!("{speedup:.2}x"),
            ]);
        }
        micco_bench::report::emit(
            &format!("fig11_{}", dist_name.to_lowercase()),
            &["oversubscription", "Groute", "MICCO", "bounds", "speedup"],
            &rows,
        );
        println!(
            "{dist_name}: MICCO GFLOPS falls {first_gf:.0} → {last_gf:.0} as pressure grows; \
             geomean speedup {:.2}x (paper: {}), max {:.2}x (paper: up to 1.9x)",
            geomean(&speedups),
            if dist_name == "Uniform" {
                "1.2x"
            } else {
                "1.4x"
            },
            speedups.iter().copied().fold(0.0, f64::max),
        );
    }
}
