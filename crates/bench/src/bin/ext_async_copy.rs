//! Extension experiment (the paper's future work, Sec. VII): asynchronous
//! data copy / prefetching.
//!
//! The paper's evaluated system is synchronous — every memory operation
//! blocks the device. The conclusion sketches "further optimizations on
//! both intra-node and inter-node communications, including asynchronous
//! data copy and prefetching data". This binary measures that extension on
//! the simulator: each device gets an independent DMA engine so the next
//! contraction's transfers overlap the current kernel.
//!
//! Expected shape: async copy lifts *both* schedulers, but lifts Groute
//! more (its schedule is transfer-heavy, so it has more to hide), narrowing
//! — not closing — MICCO's advantage. Reuse still wins because a reused
//! operand costs nothing at all, overlapped or not.

use micco_bench::{distributions, markdown_table, run, standard_stream, DEFAULT_GPUS, DEFAULT_TENSOR_SIZE};
use micco_core::{GrouteScheduler, MiccoScheduler, ReuseBounds};
use micco_gpusim::{CostModel, MachineConfig};

fn main() {
    println!("# Extension — Asynchronous Data Copy (vector 64, tensor {DEFAULT_TENSOR_SIZE}, {DEFAULT_GPUS} GPUs)");
    for (dist, dist_name) in distributions() {
        println!("\n## {dist_name}");
        let mut rows = Vec::new();
        for &rate in &[0.25, 0.5, 0.75] {
            let stream = standard_stream(64, DEFAULT_TENSOR_SIZE, rate, dist, 41);
            let mut cells = vec![format!("{:.0}%", rate * 100.0)];
            let mut elapsed = [[0.0f64; 2]; 2]; // [sched][async]
            for (si, micco) in [false, true].iter().enumerate() {
                for (ai, async_copy) in [false, true].iter().enumerate() {
                    let cost = if *async_copy {
                        CostModel::mi100_like().with_async_copy()
                    } else {
                        CostModel::mi100_like()
                    };
                    let cfg = MachineConfig::mi100_like(DEFAULT_GPUS).with_cost(cost);
                    let point = if *micco {
                        run(&mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)), &stream, &cfg)
                    } else {
                        run(&mut GrouteScheduler::new(), &stream, &cfg)
                    };
                    elapsed[si][ai] = point.elapsed_secs;
                    cells.push(format!("{:.0}", point.gflops));
                }
            }
            cells.push(format!("{:.2}x", elapsed[0][0] / elapsed[0][1])); // groute async gain
            cells.push(format!("{:.2}x", elapsed[1][0] / elapsed[1][1])); // micco async gain
            cells.push(format!("{:.2}x", elapsed[0][1] / elapsed[1][1])); // micco vs groute, both async
            rows.push(cells);
        }
        print!(
            "{}",
            markdown_table(
                &[
                    "rate",
                    "Groute sync",
                    "Groute async",
                    "MICCO sync",
                    "MICCO async",
                    "async gain (Groute)",
                    "async gain (MICCO)",
                    "MICCO/Groute (async)"
                ],
                &rows
            )
        );
    }
    println!("\nReading: asynchronous copy hides transfer latency behind kernels for both");
    println!("schedulers; MICCO keeps a speedup even with perfect-overlap hardware because");
    println!("reuse eliminates the transfers outright rather than hiding them.");
}
