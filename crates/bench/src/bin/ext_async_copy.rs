//! Extension experiment (the paper's future work, Sec. VII): asynchronous
//! data copy / prefetching.
//!
//! The paper's evaluated system is synchronous — every memory operation
//! blocks the device. The conclusion sketches "further optimizations on
//! both intra-node and inter-node communications, including asynchronous
//! data copy and prefetching data". This binary measures that extension on
//! the simulator: each device gets an independent DMA engine so the next
//! contraction's transfers overlap the current kernel.
//!
//! Expected shape: async copy lifts *both* schedulers, but lifts Groute
//! more (its schedule is transfer-heavy, so it has more to hide), narrowing
//! — not closing — MICCO's advantage. Reuse still wins because a reused
//! operand costs nothing at all, overlapped or not.

use micco_bench::{
    distributions, markdown_table, run, standard_stream, DEFAULT_GPUS, DEFAULT_TENSOR_SIZE,
};
use micco_core::{
    run_schedule_with, DriverOptions, GrouteScheduler, MiccoScheduler, ReuseBounds,
    RoundRobinScheduler,
};
use micco_exec::{execute_assignments, ExecOptions, TensorShape, TensorStore};
use micco_gpusim::{CostModel, MachineConfig};
use micco_workload::{RepeatDistribution, WorkloadSpec};

/// Copy-bound makespan study: repeat rate 0 (no reuse to eliminate) and
/// large tensors make every task transfer-dominated, the best case for
/// copy/compute overlap. Asserts the acceptance property: overlap on
/// strictly reduces the simulated makespan.
fn overlap_makespan_study() {
    println!("\n# Pipelined execution — copy-bound makespan (rate 0%, tensor 768)");
    let stream = standard_stream(64, 768, 0.0, RepeatDistribution::Uniform, 17);
    let cfg = MachineConfig::mi100_like(DEFAULT_GPUS);
    let mut rows = Vec::new();
    for (label, opts) in [
        ("overlap off", DriverOptions::default()),
        (
            "overlap on (unbounded)",
            DriverOptions::default().with_overlap(),
        ),
        (
            "overlap on, 2 buffers",
            DriverOptions::default()
                .with_overlap()
                .with_prefetch_tasks(2),
        ),
        (
            "overlap on, 1 buffer",
            DriverOptions::default()
                .with_overlap()
                .with_prefetch_tasks(1),
        ),
    ] {
        let r = run_schedule_with(
            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
            &stream,
            &cfg,
            opts,
        )
        .expect("workload fits");
        rows.push((label, r));
    }
    let header = [
        "mode",
        "makespan (ms)",
        "GFLOPS",
        "overlap (ms)",
        "idle (ms)",
    ];
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, r)| {
            vec![
                (*label).to_owned(),
                format!("{:.3}", r.elapsed_secs() * 1e3),
                format!("{:.0}", r.gflops()),
                format!("{:.3}", r.stats.total_overlap_secs() * 1e3),
                format!("{:.3}", r.stats.total_idle_secs() * 1e3),
            ]
        })
        .collect();
    print!("{}", markdown_table(&header, &cells));
    let sync = rows[0].1.elapsed_secs();
    let overlapped = rows[1].1.elapsed_secs();
    assert!(
        overlapped < sync,
        "overlap must strictly reduce the copy-bound makespan: {overlapped} vs {sync}"
    );
    println!(
        "\noverlap hides {:.1}% of the copy-bound makespan; tighter staging windows",
        (1.0 - overlapped / sync) * 100.0
    );
    println!("(1–2 buffers) trade some of that back for bounded staging memory.");
}

/// Checksum validation: the real execution engine computes bit-identical
/// correlator checksums across overlap/steal settings and worker counts.
fn checksum_validation() {
    println!("\n# Checksum validation — physics is invariant to execution strategy");
    let shape = TensorShape { batch: 2, dim: 16 };
    let stream = WorkloadSpec::new(16, shape.dim)
        .with_batch(shape.batch)
        .with_repeat_rate(0.5)
        .with_vectors(3)
        .with_seed(17)
        .generate();
    let mut reference = None;
    for workers in [1usize, 2, 4] {
        let report = run_schedule_with(
            &mut RoundRobinScheduler::new(),
            &stream,
            &MachineConfig::mi100_like(workers),
            DriverOptions::default().with_overlap(),
        )
        .expect("workload fits");
        for opts in [
            ExecOptions::default(),
            ExecOptions::default().with_steal(),
            ExecOptions::default().with_steal().with_prefetch(),
        ] {
            let store = TensorStore::new(shape.batch, shape.dim, 17);
            let out = execute_assignments(&stream, &report.assignments, workers, &store, &opts)
                .expect("schedule covers the stream");
            match reference {
                None => reference = Some(out.checksum),
                Some(r) => assert_eq!(
                    out.checksum, r,
                    "checksum diverged: {workers} workers, {opts:?}"
                ),
            }
        }
    }
    println!(
        "checksum {} identical across 1/2/4 workers × {{static, steal, steal+prefetch}}",
        reference.expect("ran")
    );
}

fn main() {
    println!("# Extension — Asynchronous Data Copy (vector 64, tensor {DEFAULT_TENSOR_SIZE}, {DEFAULT_GPUS} GPUs)");
    for (dist, dist_name) in distributions() {
        println!("\n## {dist_name}");
        let mut rows = Vec::new();
        for &rate in &[0.25, 0.5, 0.75] {
            let stream = standard_stream(64, DEFAULT_TENSOR_SIZE, rate, dist, 41);
            let mut cells = vec![format!("{:.0}%", rate * 100.0)];
            let mut elapsed = [[0.0f64; 2]; 2]; // [sched][async]
            for (si, micco) in [false, true].iter().enumerate() {
                for (ai, async_copy) in [false, true].iter().enumerate() {
                    let cost = if *async_copy {
                        CostModel::mi100_like().with_async_copy()
                    } else {
                        CostModel::mi100_like()
                    };
                    let cfg = MachineConfig::mi100_like(DEFAULT_GPUS).with_cost(cost);
                    let point = if *micco {
                        run(
                            &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
                            &stream,
                            &cfg,
                        )
                    } else {
                        run(&mut GrouteScheduler::new(), &stream, &cfg)
                    };
                    elapsed[si][ai] = point.elapsed_secs;
                    cells.push(format!("{:.0}", point.gflops));
                }
            }
            cells.push(format!("{:.2}x", elapsed[0][0] / elapsed[0][1])); // groute async gain
            cells.push(format!("{:.2}x", elapsed[1][0] / elapsed[1][1])); // micco async gain
            cells.push(format!("{:.2}x", elapsed[0][1] / elapsed[1][1])); // micco vs groute, both async
            rows.push(cells);
        }
        print!(
            "{}",
            markdown_table(
                &[
                    "rate",
                    "Groute sync",
                    "Groute async",
                    "MICCO sync",
                    "MICCO async",
                    "async gain (Groute)",
                    "async gain (MICCO)",
                    "MICCO/Groute (async)"
                ],
                &rows
            )
        );
    }
    println!("\nReading: asynchronous copy hides transfer latency behind kernels for both");
    println!("schedulers; MICCO keeps a speedup even with perfect-overlap hardware because");
    println!("reuse eliminates the transfers outright rather than hiding them.");

    overlap_makespan_study();
    checksum_validation();
}
