//! Table V — Scheduling overhead.
//!
//! Wall-clock time spent inside MICCO's per-pair scheduling decision vs the
//! total execution time, for a sum of ten vectors (vector size 64, tensor
//! size 384, repeated rate 50 %).
//!
//! Paper reference: 8.27 ms overhead / 4925.73 ms total (Uniform, 0.17 %…
//! the paper quotes 5.4 % including model inference) and 8.52 / 1550.88 ms
//! (Gaussian). The claim under test: the scheduler is *lightweight* —
//! overhead is a vanishing fraction of execution time.

use micco_bench::{
    distributions, standard_stream, trained_model, DEFAULT_GPUS, DEFAULT_TENSOR_SIZE,
};
use micco_core::{run_schedule_with, DriverOptions, MiccoScheduler};
use micco_gpusim::MachineConfig;

fn main() {
    let cfg = MachineConfig::mi100_like(DEFAULT_GPUS);
    eprintln!("# training regression model (one-off)…");
    let model = trained_model(60, &cfg, 7);

    println!("# Table V — Execution Time (ms). Tensor 384, vector 64, rate 50%, 10 vectors.");
    let mut rows = Vec::new();
    for (dist, dist_name) in distributions() {
        let stream = standard_stream(64, DEFAULT_TENSOR_SIZE, 0.5, dist, 29);
        let mut sched = MiccoScheduler::with_provider(model.clone());
        // overhead timing is opt-in since the decide/execute split
        let report = run_schedule_with(
            &mut sched,
            &stream,
            &cfg,
            DriverOptions::default().with_measure_overhead(),
        )
        .expect("workload fits");
        let overhead_ms = report.scheduling_overhead_secs * 1e3;
        let total_ms = report.elapsed_secs() * 1e3;
        rows.push(vec![
            dist_name.to_string(),
            format!("{overhead_ms:.3}"),
            format!("{total_ms:.2}"),
            format!("{:.2}%", overhead_ms / total_ms * 100.0),
        ]);
    }
    micco_bench::report::emit(
        "tab5_overhead",
        &[
            "Distribution",
            "Scheduling Overhead (ms)",
            "Total Time (ms)",
            "fraction",
        ],
        &rows,
    );
    println!("\nPaper: Uniform 8.27 / 4925.73 ms, Gaussian 8.52 / 1550.88 ms — the");
    println!("reproduction claim is the *ratio* (overhead ≪ total), not absolute ms:");
    println!("the total here is simulated device time while the overhead is real");
    println!("host time, exactly as in the paper's measurement.");
}
