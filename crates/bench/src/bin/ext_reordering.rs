//! Extension experiment: intra-vector task reordering.
//!
//! Stage vectors are sets of independent tasks, so their order is free.
//! Reuse-clustering the order (tasks sharing operands scheduled back to
//! back) shortens reuse distances, which matters most under memory
//! pressure where an evicted tensor cannot be reused later. This binary
//! quantifies the effect for MICCO at several oversubscription levels.

use micco_bench::{
    distributions, markdown_table, run, standard_stream, DEFAULT_GPUS, DEFAULT_TENSOR_SIZE,
};
use micco_core::{reorder_stream, reuse_clustered_order, MiccoScheduler, ReuseBounds};
use micco_gpusim::MachineConfig;

fn main() {
    println!("# Extension — Reuse-Clustered Task Reordering (vector 64, tensor {DEFAULT_TENSOR_SIZE}, rate 75%)");
    for (dist, dist_name) in distributions() {
        println!("\n## {dist_name}");
        let stream = standard_stream(64, DEFAULT_TENSOR_SIZE, 0.75, dist, 61);
        let clustered = reorder_stream(&stream, reuse_clustered_order);
        let mut rows = Vec::new();
        for oversub in [0.0, 1.25, 1.5, 2.0] {
            let cfg = if oversub > 0.0 {
                MachineConfig::mi100_like(DEFAULT_GPUS)
                    .with_oversubscription(stream.unique_bytes(), oversub)
            } else {
                MachineConfig::mi100_like(DEFAULT_GPUS)
            };
            let base = run(
                &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
                &stream,
                &cfg,
            );
            let reord = run(
                &mut MiccoScheduler::new(ReuseBounds::new(0, 2, 0)),
                &clustered,
                &cfg,
            );
            rows.push(vec![
                if oversub > 0.0 {
                    format!("{:.0}%", oversub * 100.0)
                } else {
                    "none".into()
                },
                format!("{:.0}", base.gflops),
                format!("{:.0}", reord.gflops),
                format!("{:.2}x", base.elapsed_secs / reord.elapsed_secs),
            ]);
        }
        print!(
            "{}",
            markdown_table(
                &[
                    "oversubscription",
                    "front-end order",
                    "clustered order",
                    "gain"
                ],
                &rows
            )
        );
    }
    println!("\nReading: the effect is small and mixed (±5%). Clustering shortens reuse");
    println!("distances, but it also *concentrates* a tensor's uses onto whichever device");
    println!("takes the head of the cluster, interacting with the reuse bounds. MICCO's");
    println!("residency-aware placement already captures most of the locality value, so");
    println!("order matters little — itself a useful robustness result for the scheduler.");
}
