//! Durable plan store benchmark with a machine-readable report.
//!
//! Appends N checksummed records to a fresh write-ahead log (two versions
//! per key, so compaction has something to fold), reopens the store to
//! measure recovery replay, compacts, and verifies a warm restart of the
//! plan-aware layer serves a previously decided plan from the log without
//! invoking the scheduler. Writes `BENCH_store.json`.
//!
//! Usage:
//!   bench_store [--records N] [--payload B] [--out PATH]
//!
//! Defaults are 50,000 records of 256 bytes; CI smoke runs use
//! `--records 5000`. Appends run unsynced (`StoreOptions::sync = false`)
//! so the numbers measure the log path, not the disk's fsync latency —
//! recovery semantics are identical either way.

use std::time::Instant;

use micco_core::{DriverOptions, DurablePlanCache, MiccoScheduler, ReuseBounds};
use micco_gpusim::MachineConfig;
use micco_store::{PlanStore, StoreOptions};
use micco_workload::WorkloadSpec;

struct Args {
    records: usize,
    payload: usize,
    out: String,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("bench_store: {msg}");
    eprintln!("usage: bench_store [--records N] [--payload B] [--out PATH]");
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        records: 50_000,
        payload: 256,
        out: "BENCH_store.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{name} requires a value")))
        };
        let int = |name: &str, v: String| {
            v.parse()
                .unwrap_or_else(|_| usage_error(&format!("{name} expects an integer, got {v}")))
        };
        match flag.as_str() {
            "--records" => args.records = int("--records", value("--records")),
            "--payload" => args.payload = int("--payload", value("--payload")),
            "--out" => args.out = value("--out"),
            other => usage_error(&format!("unknown flag {other}")),
        }
    }
    if args.records == 0 || args.payload == 0 {
        usage_error("--records and --payload must be positive");
    }
    args
}

/// Deterministic pseudo-random payload for `key` (splitmix-style LCG).
fn payload_for(key: u64, len: usize) -> Vec<u8> {
    let mut x = key.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = parse_args();
    let dir = std::env::temp_dir().join(format!("micco-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = StoreOptions {
        sync: false,
        ..StoreOptions::default()
    };
    eprintln!(
        "bench_store: {} records x {} bytes (two versions per key)",
        args.records, args.payload
    );

    // append: every key written twice, newest wins on replay
    let mut store = PlanStore::open_with(&dir, options).expect("fresh store opens");
    let start = Instant::now();
    for round in 0..2u64 {
        for k in 0..args.records as u64 {
            let body = payload_for(k ^ (round << 32), args.payload);
            store.put(k, &body).expect("append succeeds");
        }
    }
    let append_secs = start.elapsed().as_secs_f64();
    let appended = 2 * args.records;
    let append_rate = appended as f64 / append_secs;
    let disk_before = store.stats().disk_bytes;
    drop(store);
    eprintln!("append: {append_secs:.3}s ({append_rate:.0} records/sec)");

    // recovery replay: reopen and verify the newest version of every key
    let start = Instant::now();
    let mut store = PlanStore::open_with(&dir, options).expect("reopen succeeds");
    let reopen_secs = start.elapsed().as_secs_f64();
    let replayed = store.recovery().records_loaded;
    let replay_rate = replayed as f64 / reopen_secs;
    assert_eq!(store.len(), args.records, "one live version per key");
    for k in [0u64, (args.records as u64) / 2, args.records as u64 - 1] {
        assert_eq!(
            store.get(k).expect("live record"),
            payload_for(k ^ (1 << 32), args.payload),
            "newest version wins"
        );
    }
    eprintln!("reopen: {reopen_secs:.3}s ({replay_rate:.0} records replayed/sec)");

    // compaction folds the superseded half away
    let start = Instant::now();
    let report = store.compact().expect("compact succeeds");
    let compact_secs = start.elapsed().as_secs_f64();
    let disk_after = store.stats().disk_bytes;
    assert_eq!(report.live_records, args.records);
    assert!(
        disk_after <= disk_before,
        "compaction never grows the store"
    );
    drop(store);
    eprintln!(
        "compact: {compact_secs:.3}s ({} -> {} bytes)",
        disk_before, disk_after
    );

    // warm restart through the plan-aware layer: decide once, reopen,
    // and the same request must come back as a log hit (no scheduling)
    let plan_dir = dir.join("plans");
    let stream = WorkloadSpec::new(8, 64)
        .with_vectors(2)
        .with_seed(7)
        .generate();
    let cfg = MachineConfig::mi100_like(4);
    {
        let mut cache = DurablePlanCache::open(&plan_dir).expect("plan store opens");
        let mut sched = MiccoScheduler::new(ReuseBounds::new(0, 2, 0));
        cache
            .plan_for(&mut sched, &stream, &cfg, DriverOptions::default())
            .expect("cold plan");
        assert_eq!(cache.misses(), 1);
    }
    let mut cache = DurablePlanCache::open(&plan_dir).expect("plan store reopens");
    let mut sched = MiccoScheduler::new(ReuseBounds::new(0, 2, 0));
    cache
        .plan_for(&mut sched, &stream, &cfg, DriverOptions::default())
        .expect("warm plan");
    let warm_log_hit = cache.log_hits() == 1 && cache.misses() == 0;
    assert!(warm_log_hit, "warm restart must serve from the log");
    eprintln!("warm restart: log hit, scheduler not invoked");
    let _ = std::fs::remove_dir_all(&dir);

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"store\",\n",
            "  \"version\": 1,\n",
            "  \"records\": {records},\n",
            "  \"appended\": {appended},\n",
            "  \"payload_bytes\": {payload},\n",
            "  \"append_secs\": {append_secs},\n",
            "  \"append_records_per_sec\": {append_rate},\n",
            "  \"reopen_secs\": {reopen_secs},\n",
            "  \"replay_records_per_sec\": {replay_rate},\n",
            "  \"compact_secs\": {compact_secs},\n",
            "  \"disk_bytes_before_compact\": {disk_before},\n",
            "  \"disk_bytes_after_compact\": {disk_after},\n",
            "  \"warm_log_hit\": {warm_log_hit}\n",
            "}}\n"
        ),
        records = args.records,
        appended = appended,
        payload = args.payload,
        append_secs = json_f64(append_secs),
        append_rate = json_f64(append_rate),
        reopen_secs = json_f64(reopen_secs),
        replay_rate = json_f64(replay_rate),
        compact_secs = json_f64(compact_secs),
        disk_before = disk_before,
        disk_after = disk_after,
        warm_log_hit = warm_log_hit,
    );
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {}", args.out);
    print!("{json}");
}
