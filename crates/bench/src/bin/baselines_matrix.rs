//! Scheduler comparison matrix: every scheduler in the repository on the
//! standard configuration grid — a one-stop overview complementing the
//! per-figure binaries (which stick to the paper's Groute-vs-MICCO framing).
//!
//! Schedulers: round-robin, Groute-like (earliest available device),
//! CODA-like (static compute-follows-data), MICCO-naive (bounds 0),
//! MICCO fixed (0,2,0), MICCO unbounded (pure data-centric, Fig. 2 case ①).

use micco_bench::{distributions, run, standard_stream, DEFAULT_GPUS, DEFAULT_TENSOR_SIZE};
use micco_core::{
    CodaScheduler, GrouteScheduler, MiccoScheduler, ReuseBounds, RoundRobinScheduler, Scheduler,
};
use micco_gpusim::MachineConfig;

fn contenders() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(RoundRobinScheduler::new()),
        Box::new(GrouteScheduler::new()),
        Box::new(CodaScheduler::new()),
        Box::new(MiccoScheduler::naive()),
        Box::new(MiccoScheduler::new(ReuseBounds::new(0, 2, 0))),
        Box::new(MiccoScheduler::new(ReuseBounds::unbounded())),
    ]
}

fn main() {
    let cfg = MachineConfig::mi100_like(DEFAULT_GPUS);
    println!(
        "# Scheduler Matrix (GFLOPS; vector 64, tensor {DEFAULT_TENSOR_SIZE}, {DEFAULT_GPUS} GPUs)"
    );
    for (dist, dist_name) in distributions() {
        println!("\n## {dist_name}");
        let headers: Vec<String> = std::iter::once("rate".to_owned())
            .chain(contenders().iter().map(|s| s.name()))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for &rate in &[0.25, 0.5, 0.75, 1.0] {
            let stream = standard_stream(64, DEFAULT_TENSOR_SIZE, rate, dist, 71);
            let mut row = vec![format!("{:.0}%", rate * 100.0)];
            for mut s in contenders() {
                row.push(format!("{:.0}", run(s.as_mut(), &stream, &cfg).gflops));
            }
            rows.push(row);
        }
        micco_bench::report::emit(
            &format!("baselines_{}", dist_name.to_lowercase()),
            &header_refs,
            &rows,
        );
    }
    println!("\nReading: static co-location (CODA-like) collapses under load imbalance.");
    println!("Unbounded MICCO stays competitive here because its computation-centric");
    println!("tie-break still spreads candidates; the bounded variants win most cells,");
    println!("and Fig. 8 / the oversubscription runs show where the bounds earn their");
    println!("keep — under memory pressure and biased reuse.");
}
