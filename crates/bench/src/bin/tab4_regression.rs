//! Table IV — R² score of the regression models.
//!
//! 300 grid-search-labelled samples, 20 % held out; Linear Regression vs
//! Gradient Boosting (150 stages, lr 0.1) vs Random Forest (150 trees),
//! each predicting the optimal reuse-bound triple from the four data
//! characteristics. Reported R² is averaged over the three bound outputs.
//!
//! Paper reference: 0.57 / 0.91 / 0.95 — the relation is non-linear, which
//! is why MICCO ships a random forest.

use micco_core::tuner::{build_training_set, TrainingConfig};
use micco_gpusim::MachineConfig;
use micco_ml::{
    r2_score, Dataset, GradientBoostingRegressor, LinearRegression, RandomForestRegressor,
    Regressor,
};

fn main() {
    let machine = MachineConfig::mi100_like(8);
    let tc = TrainingConfig {
        seeds_per_sample: 12,
        ..TrainingConfig::default()
    };
    eprintln!(
        "# labelling {} samples by grid search (27 settings each)…",
        tc.samples
    );
    let samples = build_training_set(&tc, &machine);

    // One dataset per bound output.
    let datasets: Vec<Dataset> = (0..3)
        .map(|k| {
            Dataset::new(
                samples.iter().map(|s| s.features.to_vec()).collect(),
                samples.iter().map(|s| s.bounds[k] as f64).collect(),
            )
        })
        .collect();

    let mut rows = Vec::new();
    let mut scores = [0.0f64; 3]; // lin, gbm, rf
    for (k, ds) in datasets.iter().enumerate() {
        let (train, test) = ds.train_test_split(0.2, 42);
        let mut lin = LinearRegression::new();
        lin.fit(&train.x, &train.y);
        let mut gbm = GradientBoostingRegressor::paper_default();
        gbm.fit(&train.x, &train.y);
        let mut rf = RandomForestRegressor::paper_default(k as u64);
        rf.fit(&train.x, &train.y);
        let r2 = [
            r2_score(&test.y, &lin.predict(&test.x)),
            r2_score(&test.y, &gbm.predict(&test.x)),
            r2_score(&test.y, &rf.predict(&test.x)),
        ];
        for (s, v) in scores.iter_mut().zip(r2) {
            *s += v / 3.0;
        }
        rows.push(vec![
            format!("reuse_bound_{}", k + 1),
            format!("{:.2}", r2[0]),
            format!("{:.2}", r2[1]),
            format!("{:.2}", r2[2]),
        ]);
    }
    rows.push(vec![
        "mean".into(),
        format!("{:.2}", scores[0]),
        format!("{:.2}", scores[1]),
        format!("{:.2}", scores[2]),
    ]);

    println!("# Table IV — R² Score of Regression Models (300 samples, 20% test)");
    micco_bench::report::emit(
        "tab4_regression",
        &[
            "output",
            "Linear Regression",
            "Gradient Boosting",
            "RandomForest",
        ],
        &rows,
    );
    println!("\nPaper: 0.57 / 0.91 / 0.95. The reproduction claim is the *ordering*");
    println!("(linear ≪ boosted trees ≤ random forest) — the bound/characteristics");
    println!("relation is non-linear.");
}
