//! Extension experiment: link-topology sweep.
//!
//! Fixes the machine at 8 GPUs and sweeps NVLink island sizes × inter-island
//! (PCIe) bandwidths × the four schedulers, replaying every plan on a
//! topology-carrying [`SimMachine`] to measure elapsed time and cross-island
//! traffic. Each point runs twice: `routed` (flat placement decisions, link
//! time charged per hop) and `aware` (the scheduler's candidate scoring also
//! penalizes cross-island fetch routes, `DriverOptions::with_topology_aware`).
//!
//! Emits `results/ext_topology.csv` plus a machine-readable
//! `BENCH_topology.json` (validated by `scripts/check_bench_schema.py`)
//! recording every swept point and the configs where topology-aware placement
//! strictly reduced inter-island bytes — the binary fails if there are none.
//!
//! Usage:
//!   ext_topology [--out PATH]

use micco_bench::report::emit;
use micco_core::{
    execute_plan_with_topology, plan_schedule_with_topology, CodaScheduler, DriverOptions,
    GrouteScheduler, MiccoScheduler, ReuseBounds, RoundRobinScheduler, Scheduler,
};
use micco_gpusim::{LinkSpec, LinkTopology, MachineConfig, SimMachine};
use micco_workload::{RepeatDistribution, TensorPairStream, WorkloadSpec};

const GPUS: usize = 8;
/// NVLink bandwidth pin; the sweep varies the inter-island tier against it.
const NV_GIB_S: f64 = 200.0;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(MiccoScheduler::new(ReuseBounds::new(0, 2, 0))),
        Box::new(GrouteScheduler::new()),
        Box::new(CodaScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
    ]
}

/// The sweep stream: repeat-heavy enough that operands are routinely held
/// on a remote device, so island placement actually matters.
fn sweep_stream() -> TensorPairStream {
    WorkloadSpec::new(24, 64)
        .with_repeat_rate(0.6)
        .with_distribution(RepeatDistribution::Gaussian)
        .with_vectors(6)
        .with_seed(0x5eed)
        .generate()
}

/// One measured point of the sweep.
struct Point {
    island: usize,
    pcie_gib_s: f64,
    scheduler: String,
    mode: &'static str,
    elapsed_secs: f64,
    cross_island_transfers: u64,
    cross_island_bytes: u64,
}

fn measure(
    stream: &TensorPairStream,
    cfg: &MachineConfig,
    topo: &LinkTopology,
    sched: &mut dyn Scheduler,
    opts: DriverOptions,
    mode: &'static str,
) -> Point {
    let plan =
        plan_schedule_with_topology(sched, stream, cfg, opts, Some(topo)).expect("sweep plans");
    let mut machine = SimMachine::new(opts.apply(cfg));
    let report =
        execute_plan_with_topology(&plan, stream, &mut machine, opts, Some(topo)).expect("replays");
    let (transfers, bytes) = machine.cross_island_traffic();
    Point {
        island: topo.island_size(),
        pcie_gib_s: topo.pcie_spec().gib_s,
        scheduler: plan.scheduler.clone(),
        mode,
        elapsed_secs: report.elapsed_secs(),
        cross_island_transfers: transfers,
        cross_island_bytes: bytes,
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let mut out = "BENCH_topology.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => {
                out = it.next().unwrap_or_else(|| {
                    eprintln!("ext_topology: --out requires a value");
                    std::process::exit(2)
                })
            }
            other => {
                eprintln!("ext_topology: unknown flag {other}");
                eprintln!("usage: ext_topology [--out PATH]");
                std::process::exit(2)
            }
        }
    }

    println!("# Extension — Link Topology (8 GPUs, NVLink islands over PCIe)");
    let stream = sweep_stream();
    let cfg = MachineConfig::mi100_like(GPUS);
    let mut points = Vec::new();
    for island in [2usize, 4] {
        for pcie_gib_s in [64.0f64, 16.0, 4.0] {
            let topo = LinkTopology::nvlink(GPUS, island)
                .with_nvlink(LinkSpec::new(NV_GIB_S, 1.0))
                .with_pcie(LinkSpec::new(pcie_gib_s, 3.0));
            for mut sched in schedulers() {
                for (mode, opts) in [
                    ("routed", DriverOptions::default()),
                    ("aware", DriverOptions::default().with_topology_aware()),
                ] {
                    points.push(measure(&stream, &cfg, &topo, &mut *sched, opts, mode));
                }
            }
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.island.to_string(),
                format!("{:.0}", p.pcie_gib_s),
                p.scheduler.clone(),
                p.mode.to_string(),
                format!("{:.6}", p.elapsed_secs),
                p.cross_island_transfers.to_string(),
                p.cross_island_bytes.to_string(),
            ]
        })
        .collect();
    emit(
        "ext_topology",
        &[
            "island",
            "pcie GiB/s",
            "scheduler",
            "mode",
            "elapsed s",
            "cross-island xfers",
            "cross-island bytes",
        ],
        &rows,
    );

    // Pair up routed/aware runs of the same (island, pcie, scheduler) point
    // and collect the configs where awareness strictly reduced inter-island
    // bytes — the acceptance signal this experiment exists to demonstrate.
    let mut improved = Vec::new();
    for routed in points.iter().filter(|p| p.mode == "routed") {
        let aware = points
            .iter()
            .find(|p| {
                p.mode == "aware"
                    && p.island == routed.island
                    && p.pcie_gib_s == routed.pcie_gib_s
                    && p.scheduler == routed.scheduler
            })
            .expect("every routed point has an aware twin");
        if aware.cross_island_bytes < routed.cross_island_bytes {
            improved.push((routed, aware));
        }
    }
    assert!(
        !improved.is_empty(),
        "topology-aware placement reduced inter-island bytes on no swept config"
    );
    println!(
        "\nReading: `routed` keeps flat placement decisions and only charges the\n\
         per-hop link time, so slow inter-island links stretch the timeline;\n\
         `aware` lets the scheduler's candidate scoring see the routed fetch\n\
         cost. Awareness strictly reduced inter-island bytes on {} of {} swept\n\
         scheduler×topology points (reuse-oblivious schedulers ignore the knob).",
        improved.len(),
        points.len() / 2,
    );

    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\"island\": {}, \"pcie_gib_s\": {}, \"scheduler\": \"{}\", ",
                    "\"mode\": \"{}\", \"elapsed_secs\": {}, ",
                    "\"cross_island_transfers\": {}, \"cross_island_bytes\": {}}}"
                ),
                p.island,
                json_f64(p.pcie_gib_s),
                p.scheduler,
                p.mode,
                json_f64(p.elapsed_secs),
                p.cross_island_transfers,
                p.cross_island_bytes
            )
        })
        .collect();
    let improved_entries: Vec<String> = improved
        .iter()
        .map(|(r, a)| {
            format!(
                concat!(
                    "    {{\"island\": {}, \"pcie_gib_s\": {}, \"scheduler\": \"{}\", ",
                    "\"routed_bytes\": {}, \"aware_bytes\": {}}}"
                ),
                r.island,
                json_f64(r.pcie_gib_s),
                r.scheduler,
                r.cross_island_bytes,
                a.cross_island_bytes
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"topology\",\n",
            "  \"version\": 1,\n",
            "  \"tasks\": {tasks},\n",
            "  \"gpus\": {gpus},\n",
            "  \"nvlink_gib_s\": {nv},\n",
            "  \"points\": [\n{points}\n  ],\n",
            "  \"aware_improvements\": [\n{improved}\n  ]\n",
            "}}\n"
        ),
        tasks = stream.total_tasks(),
        gpus = GPUS,
        nv = json_f64(NV_GIB_S),
        points = entries.join(",\n"),
        improved = improved_entries.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write report");
    eprintln!("wrote {out}");
}
