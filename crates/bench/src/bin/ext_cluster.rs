//! Extension experiment (the paper's future work, Sec. VII): multi-node
//! clusters.
//!
//! Fixes the total GPU budget at 8 and splits it across 1, 2, and 4 nodes
//! joined by an InfiniBand-like link. Intermediates only exist where they
//! were produced, so node-oblivious scheduling pays network transfers that
//! a hierarchical (node-level data-centric) MICCO avoids.
//!
//! The workload chains stages (outputs of stage v feed stage v+1), which is
//! exactly what correlation-function programs look like after staging.

use micco_bench::markdown_table;
use micco_cluster::{
    run_cluster_schedule, ClusterConfig, FlatClusterScheduler, HierarchicalScheduler,
};
use micco_core::ReuseBounds;
use micco_workload::{RepeatDistribution, TensorPairStream, WorkloadSpec};

/// A stream with producer-consumer chains across stages.
fn chained_stream(seed: u64) -> TensorPairStream {
    let base = WorkloadSpec::new(64, 384)
        .with_repeat_rate(0.5)
        .with_distribution(RepeatDistribution::Uniform)
        .with_vectors(8)
        .with_seed(seed)
        .generate();
    let mut vectors = base.vectors.clone();
    for v in 1..vectors.len() {
        let prev_outs: Vec<_> = vectors[v - 1].tasks.iter().map(|t| t.out).collect();
        for (i, t) in vectors[v].tasks.iter_mut().enumerate() {
            if i % 2 == 0 {
                t.a = prev_outs[i % prev_outs.len()];
            }
        }
    }
    TensorPairStream::new(vectors)
}

fn main() {
    println!("# Extension — Multi-node Cluster (8 GPUs total, chained stages)");
    let stream = chained_stream(55);
    let mut rows = Vec::new();
    for (nodes, gpus) in [(1usize, 8usize), (2, 4), (4, 2)] {
        let cfg = ClusterConfig::mi100_cluster(nodes, gpus);
        let flat =
            run_cluster_schedule(&mut FlatClusterScheduler::new(), &stream, &cfg).expect("fits");
        let mut hier = HierarchicalScheduler::new(nodes, 16, ReuseBounds::new(0, 2, 0));
        let h = run_cluster_schedule(&mut hier, &stream, &cfg).expect("fits");
        rows.push(vec![
            format!("{nodes}×{gpus}"),
            format!("{:.0}", flat.gflops()),
            format!("{}", flat.inter_transfers),
            format!("{:.0}", h.gflops()),
            format!("{}", h.inter_transfers),
            format!("{:.2}x", flat.elapsed_secs / h.elapsed_secs),
        ]);
    }
    print!(
        "{}",
        markdown_table(
            &[
                "topology",
                "flat GFLOPS",
                "flat net xfers",
                "hier GFLOPS",
                "hier net xfers",
                "hier speedup"
            ],
            &rows
        )
    );
    println!("\nReading: with one node the schedulers coincide (no network); as the same");
    println!("GPU budget spreads over more nodes, the node-oblivious baseline pays");
    println!("increasing network traffic for cross-node intermediates while hierarchical");
    println!("MICCO keeps producer-consumer chains node-local.");
}
