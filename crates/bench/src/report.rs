//! Result emission: markdown to stdout + CSV files under the results
//! directory (`MICCO_RESULTS_DIR`, default `results/`).

use std::io::Write;
use std::path::PathBuf;

use crate::markdown_table;

/// Directory CSVs are written to.
pub fn results_dir() -> PathBuf {
    std::env::var_os("MICCO_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Escape one CSV field (RFC-4180 quoting when needed).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Render rows as CSV text.
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| csv_field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|f| csv_field(f))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    out
}

/// Print a table as markdown and persist it as `<name>.csv` in the results
/// directory. IO failures are reported to stderr but never abort an
/// experiment (the stdout table is the primary artefact).
pub fn emit(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", markdown_table(headers, rows));
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(to_csv(headers, rows).as_bytes()))
    {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_basic() {
        let csv = to_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn csv_quoting() {
        let csv = to_csv(
            &["x"],
            &[vec!["has,comma".into()], vec!["has\"quote".into()]],
        );
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn emit_writes_file() {
        let dir = std::env::temp_dir().join(format!("micco-report-test-{}", std::process::id()));
        std::env::set_var("MICCO_RESULTS_DIR", &dir);
        emit("unit_test_table", &["h"], &[vec!["v".into()]]);
        let written = std::fs::read_to_string(dir.join("unit_test_table.csv")).unwrap();
        assert_eq!(written, "h\nv\n");
        std::env::remove_var("MICCO_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
