#![warn(missing_docs)]

//! # micco-bench
//!
//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation (Sec. V), plus Criterion micro-benchmarks and ablations.
//!
//! Each `src/bin/*.rs` binary reproduces one exhibit and prints the same
//! rows/series the paper reports:
//!
//! | Binary | Paper exhibit |
//! |---|---|
//! | `fig5_spearman` | Fig. 5 — Spearman correlation heatmap |
//! | `tab4_regression` | Table IV — R² of the three regressors |
//! | `tab5_overhead` | Table V — scheduling overhead vs total time |
//! | `fig7_overall` | Fig. 7 — overall performance (8 panels) |
//! | `fig8_bounds` | Fig. 8 — impact of reuse bounds (13 settings × 3 cases) |
//! | `fig9_scalability` | Fig. 9 — 1–8 GPU scalability |
//! | `fig10_tensor_size` | Fig. 10 — tensor size sweep |
//! | `fig11_oversub` | Fig. 11 — memory oversubscription sweep |
//! | `tab6_redstar` | Table VI — real correlation functions in Redstar |
//!
//! This library crate holds the shared pieces: deterministic spec grids,
//! the trained-model builder, table printers, and geometric means.

pub mod report;

use micco_core::model::RegressionBounds;
use micco_core::tuner::{build_training_set, TrainingConfig};
use micco_core::{MiccoScheduler, ReuseBounds, ScheduleReport, Scheduler};
use micco_gpusim::MachineConfig;
use micco_workload::{RepeatDistribution, TensorPairStream, WorkloadSpec};

/// The evaluation's standard synthetic tensor size (Sec. V-A).
pub const DEFAULT_TENSOR_SIZE: usize = 384;
/// Default GPU count (the paper's platform has eight MI100s).
pub const DEFAULT_GPUS: usize = 8;
/// Default vectors per synthetic stream (Table V sums ten vectors).
pub const DEFAULT_VECTORS: usize = 10;

/// Build the standard synthetic stream for a configuration point.
pub fn standard_stream(
    vector_size: usize,
    tensor_size: usize,
    rate: f64,
    dist: RepeatDistribution,
    seed: u64,
) -> TensorPairStream {
    WorkloadSpec::new(vector_size, tensor_size)
        .with_repeat_rate(rate)
        .with_distribution(dist)
        .with_vectors(DEFAULT_VECTORS)
        .with_seed(seed)
        .generate()
}

/// Result of running one scheduler on one stream.
#[derive(Debug, Clone)]
pub struct RunPoint {
    /// Scheduler name.
    pub scheduler: String,
    /// Achieved GFLOPS.
    pub gflops: f64,
    /// Simulated elapsed seconds.
    pub elapsed_secs: f64,
    /// Wall-clock scheduling overhead in seconds.
    pub overhead_secs: f64,
}

impl From<&ScheduleReport> for RunPoint {
    fn from(r: &ScheduleReport) -> Self {
        RunPoint {
            scheduler: r.scheduler.clone(),
            gflops: r.gflops(),
            elapsed_secs: r.elapsed_secs(),
            overhead_secs: r.scheduling_overhead_secs,
        }
    }
}

/// Run one scheduler over a stream, panicking with a readable message if
/// the workload does not fit the machine (experiments are sized to fit).
///
/// Scheduling-overhead timing is opted in (it is off by default since the
/// plan-IR split) so [`RunPoint::overhead_secs`] stays meaningful.
pub fn run(s: &mut dyn Scheduler, stream: &TensorPairStream, cfg: &MachineConfig) -> RunPoint {
    let report = micco_core::run_schedule_with(
        s,
        stream,
        cfg,
        micco_core::DriverOptions::default().with_measure_overhead(),
    )
    .expect("experiment workload must fit the machine");
    RunPoint::from(&report)
}

/// Train the paper's regression model on grid-search-labelled samples.
/// `samples = 300` reproduces Table IV's setup exactly; figure binaries may
/// use fewer for faster start-up.
pub fn trained_model(samples: usize, machine: &MachineConfig, seed: u64) -> RegressionBounds {
    let tc = TrainingConfig {
        samples,
        seed,
        ..TrainingConfig::default()
    };
    let training = build_training_set(&tc, machine);
    RegressionBounds::train(&training, seed)
}

/// MICCO with the best fixed bounds found by a grid search over the Fig. 8
/// candidate set on a reference stream — a cheaper stand-in for the full
/// regression model in sweeps that only need "well-tuned MICCO".
pub fn tuned_fixed_micco(
    stream: &TensorPairStream,
    cfg: &MachineConfig,
) -> (MiccoScheduler, ReuseBounds) {
    let (bounds, _) =
        micco_core::tuner::grid_search(stream, cfg, &micco_core::tuner::FIG8_BOUND_SETTINGS);
    (MiccoScheduler::new(bounds), bounds)
}

/// Geometric mean of a non-empty slice of positive numbers.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Both repeated-data distributions with their paper names.
pub fn distributions() -> [(RepeatDistribution, &'static str); 2] {
    [
        (RepeatDistribution::Uniform, "Uniform"),
        (RepeatDistribution::Gaussian, "Gaussian"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use micco_core::GrouteScheduler;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        let _ = geomean(&[]);
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn standard_stream_is_deterministic() {
        let a = standard_stream(8, 128, 0.5, RepeatDistribution::Uniform, 1);
        let b = standard_stream(8, 128, 0.5, RepeatDistribution::Uniform, 1);
        assert_eq!(a, b);
        assert_eq!(a.vectors.len(), DEFAULT_VECTORS);
    }

    #[test]
    fn run_produces_sane_point() {
        let stream = standard_stream(8, 64, 0.5, RepeatDistribution::Uniform, 1);
        let cfg = MachineConfig::mi100_like(2);
        let p = run(&mut GrouteScheduler::new(), &stream, &cfg);
        assert!(p.gflops > 0.0);
        assert!(p.elapsed_secs > 0.0);
        assert_eq!(p.scheduler, "groute");
    }

    #[test]
    fn tuned_fixed_micco_returns_fig8_setting() {
        let stream = standard_stream(8, 64, 0.75, RepeatDistribution::Uniform, 2);
        let cfg = MachineConfig::mi100_like(2);
        let (_, bounds) = tuned_fixed_micco(&stream, &cfg);
        assert!(micco_core::tuner::FIG8_BOUND_SETTINGS.contains(&bounds.as_array()));
    }

    #[test]
    fn trained_model_smoke() {
        let cfg = MachineConfig::mi100_like(2);
        let model = trained_model(6, &cfg, 1);
        let c = micco_workload::DataCharacteristics {
            vector_size: 16,
            tensor_bytes: 1e6,
            repeated_rate: 0.5,
            distribution_bias: 0.1,
        };
        let b = model.predict(&c);
        assert!(b.as_array().iter().all(|&v| v <= 8));
    }
}
