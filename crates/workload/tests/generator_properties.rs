//! Property-based tests of the synthetic workload generator and the
//! characteristics measurement.

use std::collections::HashSet;

use proptest::prelude::*;

use micco_workload::{
    from_text, to_text, DataCharacteristics, RepeatDistribution, TensorId, WorkloadSpec,
};

fn spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1usize..32,
        4usize..64,
        0.0f64..=1.0,
        any::<bool>(),
        1usize..6,
        any::<u64>(),
        1usize..6,
    )
        .prop_map(|(vs, dim, rate, gaussian, nv, seed, batch)| {
            WorkloadSpec::new(vs, dim)
                .with_repeat_rate(rate)
                .with_distribution(if gaussian {
                    RepeatDistribution::Gaussian
                } else {
                    RepeatDistribution::Uniform
                })
                .with_vectors(nv)
                .with_seed(seed)
                .with_batch(batch)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Structural invariants of any generated stream.
    #[test]
    fn stream_is_well_formed(spec in spec()) {
        let s = spec.generate();
        prop_assert_eq!(s.vectors.len(), spec.num_vectors);
        let mut task_ids = HashSet::new();
        let mut out_ids = HashSet::new();
        for v in &s.vectors {
            prop_assert_eq!(v.len(), spec.vector_size);
            for t in &v.tasks {
                prop_assert!(task_ids.insert(t.id), "task ids unique");
                prop_assert!(out_ids.insert(t.out.id), "output ids unique");
                prop_assert!(t.out.id.0 >= 1 << 40, "outputs in their own range");
                prop_assert!(t.a.id.0 < 1 << 40);
                prop_assert!(t.b.id.0 < 1 << 40);
                prop_assert_eq!(t.a.bytes, t.b.bytes);
                prop_assert!(t.flops > 0);
            }
        }
    }

    /// Generation is a pure function of the spec.
    #[test]
    fn generation_deterministic(spec in spec()) {
        prop_assert_eq!(spec.generate(), spec.generate());
    }

    /// A rate-zero stream has no repeated input slots at all; a rate-one
    /// stream repeats every slot after the seed vector.
    #[test]
    fn rate_extremes(spec in spec()) {
        let fresh = spec.clone().with_repeat_rate(0.0).generate();
        let mut seen = HashSet::new();
        for v in &fresh.vectors {
            for t in &v.tasks {
                prop_assert!(seen.insert(t.a.id) && seen.insert(t.b.id), "rate 0 must be all fresh");
            }
        }
        let full = spec.with_repeat_rate(1.0).generate();
        let mut pool: HashSet<TensorId> = HashSet::new();
        for (vi, v) in full.vectors.iter().enumerate() {
            for t in &v.tasks {
                for id in [t.a.id, t.b.id] {
                    if vi > 0 {
                        prop_assert!(pool.contains(&id), "rate 1 must repeat after the seed vector");
                    }
                    pool.insert(id);
                }
            }
        }
    }

    /// Measured characteristics are within their documented ranges and the
    /// measured repeat rate of steady-state vectors tracks the spec rate.
    #[test]
    fn characteristics_in_range(spec in spec()) {
        let s = spec.generate();
        let mut seen = HashSet::new();
        for v in &s.vectors {
            let c = DataCharacteristics::measure(v, &mut seen);
            prop_assert_eq!(c.vector_size, v.len());
            prop_assert!((0.0..=1.0).contains(&c.repeated_rate));
            prop_assert!((0.0..=1.0).contains(&c.distribution_bias));
            prop_assert!(c.tensor_bytes > 0.0);
            let f = c.features();
            prop_assert!(f.iter().all(|x| x.is_finite()));
        }
    }

    /// The text serialisation round-trips any generated stream exactly.
    #[test]
    fn serialization_roundtrips(spec in spec()) {
        let stream = spec.generate();
        let text = to_text(&stream);
        let back = from_text(&text).expect("own output must parse");
        prop_assert_eq!(stream, back);
    }

    /// Working-set accounting: unique bytes never exceed the naive total
    /// and never fall below one vector's share.
    #[test]
    fn unique_bytes_bounds(spec in spec()) {
        let s = spec.generate();
        let naive: u64 = s
            .vectors
            .iter()
            .flat_map(|v| v.tasks.iter())
            .map(|t| t.a.bytes + t.b.bytes + t.out.bytes)
            .sum();
        prop_assert!(s.unique_bytes() <= naive);
        prop_assert!(s.peak_vector_bytes() <= s.unique_bytes());
        for v in &s.vectors {
            prop_assert!(v.unique_bytes() <= s.unique_bytes());
        }
    }
}
