//! Per-vector data characteristics (Table I of the paper).
//!
//! MICCO extracts these online for every incoming vector and feeds them to
//! the regression model, which returns the reuse-bound setting for that
//! vector. All four characteristics are *measured from the vector itself*
//! (plus the set of tensors seen so far), exactly as the paper's step (1) in
//! Fig. 6 describes — the scheduler never needs generator-side ground truth.

use std::collections::{HashMap, HashSet};

use crate::task::{TensorId, Vector};

/// Measured data characteristics of one stage vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataCharacteristics {
    /// Number of tensor pairs in the vector (the paper's vector size).
    pub vector_size: usize,
    /// Mean tensor footprint in bytes (proxy for the paper's tensor size —
    /// monotone in the mode length for fixed batch/kind).
    pub tensor_bytes: f64,
    /// Fraction of input tensor slots referencing an already-seen tensor.
    pub repeated_rate: f64,
    /// Bias of the repeated-data distribution in `[0, 1]`:
    /// `1 − H/H_max` where `H` is the Shannon entropy of repeat-target
    /// frequencies. Uniform reuse ⇒ near 0; a hot set (Gaussian) ⇒ near 1.
    pub distribution_bias: f64,
}

impl DataCharacteristics {
    /// Measure characteristics of `vector`, treating `seen` as the tensors
    /// already materialised by earlier vectors. Updates `seen` with this
    /// vector's inputs and outputs so streams can be measured incrementally.
    ///
    /// Generic over the set's hasher so hot planners can pass a
    /// [`crate::FastIdSet`] instead of the SipHash default.
    pub fn measure<S: std::hash::BuildHasher>(
        vector: &Vector,
        seen: &mut HashSet<TensorId, S>,
    ) -> Self {
        let mut slots = 0usize;
        let mut repeats = 0usize;
        let mut repeat_counts: HashMap<TensorId, usize> = HashMap::new();
        let mut bytes_sum: u128 = 0;

        for t in &vector.tasks {
            for d in [t.a, t.b] {
                slots += 1;
                bytes_sum += d.bytes as u128;
                if seen.contains(&d.id) {
                    repeats += 1;
                    *repeat_counts.entry(d.id).or_default() += 1;
                }
            }
        }
        // Within-vector repeats also count: a second appearance in the same
        // vector is just as reusable as one from a previous vector.
        let mut local: HashSet<TensorId> = HashSet::new();
        for t in &vector.tasks {
            for d in [t.a, t.b] {
                if !seen.contains(&d.id) && !local.insert(d.id) {
                    repeats += 1;
                    *repeat_counts.entry(d.id).or_default() += 1;
                }
            }
        }
        for t in &vector.tasks {
            seen.insert(t.a.id);
            seen.insert(t.b.id);
            seen.insert(t.out.id);
        }

        let repeated_rate = if slots == 0 {
            0.0
        } else {
            repeats as f64 / slots as f64
        };
        let tensor_bytes = if slots == 0 {
            0.0
        } else {
            bytes_sum as f64 / slots as f64
        };
        DataCharacteristics {
            vector_size: vector.len(),
            tensor_bytes,
            repeated_rate,
            distribution_bias: bias_from_counts(&repeat_counts),
        }
    }

    /// Feature vector for the regression model, in the order
    /// `[vector_size, tensor_bytes, repeated_rate, distribution_bias]`.
    pub fn features(&self) -> [f64; 4] {
        [
            self.vector_size as f64,
            self.tensor_bytes,
            self.repeated_rate,
            self.distribution_bias,
        ]
    }

    /// Names matching [`Self::features`] (for reports and the Fig. 5
    /// Spearman heatmap).
    pub fn feature_names() -> [&'static str; 4] {
        ["VectorSize", "TensorSize", "RepeatRate", "DataDistribution"]
    }
}

/// Concentration of repeat targets: `1 − distinct_targets / total_repeats`.
///
/// 0 when every repeat lands on its own target (no hot set); approaches 1
/// when a single tensor absorbs all repeats. This cheap statistic separates
/// the paper's Uniform and Gaussian (biased) repeated-data distributions
/// cleanly, because the Gaussian funnels repeats onto a small hot set while
/// the Uniform spreads them over the whole pool.
fn bias_from_counts(counts: &HashMap<TensorId, usize>) -> f64 {
    let total: usize = counts.values().sum();
    if total == 0 {
        return 0.0;
    }
    (1.0 - counts.len() as f64 / total as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{RepeatDistribution, WorkloadSpec};
    use crate::task::{ContractionTask, TaskId, TensorPairStream};
    use micco_tensor::ContractionKind;

    fn task(id: u64, a: u64, b: u64, out: u64) -> ContractionTask {
        ContractionTask::uniform(
            TaskId(id),
            TensorId(a),
            TensorId(b),
            TensorId(out),
            ContractionKind::Meson,
            2,
            8,
        )
    }

    fn measure_stream(s: &TensorPairStream) -> Vec<DataCharacteristics> {
        let mut seen = HashSet::new();
        s.vectors
            .iter()
            .map(|v| DataCharacteristics::measure(v, &mut seen))
            .collect()
    }

    #[test]
    fn fresh_vector_has_zero_repeat_rate() {
        let v = Vector::new(vec![task(0, 1, 2, 100), task(1, 3, 4, 101)]);
        let mut seen = HashSet::new();
        let c = DataCharacteristics::measure(&v, &mut seen);
        assert_eq!(c.repeated_rate, 0.0);
        assert_eq!(c.vector_size, 2);
        assert_eq!(c.tensor_bytes, (2 * 8 * 8 * 16) as f64);
        assert_eq!(c.distribution_bias, 0.0);
    }

    #[test]
    fn cross_vector_repeats_detected() {
        let v1 = Vector::new(vec![task(0, 1, 2, 100)]);
        let v2 = Vector::new(vec![task(1, 1, 3, 101)]);
        let mut seen = HashSet::new();
        DataCharacteristics::measure(&v1, &mut seen);
        let c = DataCharacteristics::measure(&v2, &mut seen);
        assert_eq!(c.repeated_rate, 0.5); // one of two slots repeats
    }

    #[test]
    fn within_vector_repeats_detected() {
        let v = Vector::new(vec![task(0, 1, 2, 100), task(1, 1, 1, 101)]);
        let mut seen = HashSet::new();
        let c = DataCharacteristics::measure(&v, &mut seen);
        // slots: 1, 2, 1, 1 -> second and third appearance of tensor 1 repeat
        assert_eq!(c.repeated_rate, 0.5);
    }

    #[test]
    fn single_hot_target_is_high_bias() {
        let v = Vector::new(vec![task(0, 1, 1, 100), task(1, 1, 1, 101)]);
        let mut seen = HashSet::new();
        seen.insert(TensorId(1));
        let c = DataCharacteristics::measure(&v, &mut seen);
        assert_eq!(c.repeated_rate, 1.0);
        // four repeats, one target → 1 − 1/4
        assert_eq!(c.distribution_bias, 0.75);
    }

    #[test]
    fn even_repeats_have_low_bias() {
        // four repeats across four distinct targets, one hit each
        let v = Vector::new(vec![task(0, 1, 2, 100), task(1, 3, 4, 101)]);
        let mut seen: HashSet<TensorId> = [1, 2, 3, 4].into_iter().map(TensorId).collect();
        let c = DataCharacteristics::measure(&v, &mut seen);
        assert_eq!(c.repeated_rate, 1.0);
        assert!(c.distribution_bias < 1e-9);
    }

    #[test]
    fn gaussian_workload_measures_more_biased_than_uniform() {
        let spec = WorkloadSpec::new(64, 64)
            .with_repeat_rate(0.75)
            .with_vectors(6)
            .with_seed(5);
        let u = measure_stream(
            &spec
                .clone()
                .with_distribution(RepeatDistribution::Uniform)
                .generate(),
        );
        let g = measure_stream(
            &spec
                .with_distribution(RepeatDistribution::Gaussian)
                .generate(),
        );
        let mean = |cs: &[DataCharacteristics]| {
            cs.iter().map(|c| c.distribution_bias).sum::<f64>() / cs.len() as f64
        };
        assert!(
            mean(&g) > mean(&u) + 0.05,
            "gaussian bias {} should exceed uniform {}",
            mean(&g),
            mean(&u)
        );
    }

    #[test]
    fn measured_rate_close_to_spec_rate() {
        let spec = WorkloadSpec::new(64, 64)
            .with_repeat_rate(0.5)
            .with_vectors(8)
            .with_seed(11);
        let cs = measure_stream(&spec.generate());
        // skip the warm-up vector
        let mean: f64 =
            cs[1..].iter().map(|c| c.repeated_rate).sum::<f64>() / (cs.len() - 1) as f64;
        assert!((mean - 0.5).abs() < 0.1, "mean measured rate {mean}");
    }

    #[test]
    fn empty_vector_is_all_zeros() {
        let mut seen = HashSet::new();
        let c = DataCharacteristics::measure(&Vector::default(), &mut seen);
        assert_eq!(c.features(), [0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn feature_names_align() {
        assert_eq!(DataCharacteristics::feature_names().len(), 4);
    }
}
