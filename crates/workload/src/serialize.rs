//! Plain-text serialisation of tensor-pair streams.
//!
//! A tiny line-oriented format (no external dependencies) so workloads can
//! be saved, diffed, shipped to other tools, and reloaded bit-exactly:
//!
//! ```text
//! micco-stream v1
//! vector
//! task <id> <a_id> <a_bytes> <b_id> <b_bytes> <out_id> <out_bytes> <flops>
//! task …
//! vector
//! …
//! ```
//!
//! Round-tripping is exact (all fields are integers).

use crate::task::{ContractionTask, TaskId, TensorDesc, TensorId, TensorPairStream, Vector};

/// Magic first line.
const HEADER: &str = "micco-stream v1";

/// Serialisation/parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamFormatError {
    /// Missing or wrong header line.
    BadHeader,
    /// A malformed line, with its 1-based line number.
    BadLine {
        /// Line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A task line appeared before any `vector` line.
    TaskOutsideVector {
        /// Line number.
        line: usize,
    },
}

impl std::fmt::Display for StreamFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamFormatError::BadHeader => write!(f, "missing '{HEADER}' header"),
            StreamFormatError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            StreamFormatError::TaskOutsideVector { line } => {
                write!(f, "line {line}: task before any 'vector' marker")
            }
        }
    }
}

impl std::error::Error for StreamFormatError {}

/// Serialise a stream to the text format.
pub fn to_text(stream: &TensorPairStream) -> String {
    let mut out = String::with_capacity(64 + stream.total_tasks() * 48);
    out.push_str(HEADER);
    out.push('\n');
    for v in &stream.vectors {
        out.push_str("vector\n");
        for t in &v.tasks {
            out.push_str(&format!(
                "task {} {} {} {} {} {} {} {}\n",
                t.id.0, t.a.id.0, t.a.bytes, t.b.id.0, t.b.bytes, t.out.id.0, t.out.bytes, t.flops
            ));
        }
    }
    out
}

/// Parse a stream from the text format.
pub fn from_text(text: &str) -> Result<TensorPairStream, StreamFormatError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l.trim() == HEADER => {}
        _ => return Err(StreamFormatError::BadHeader),
    }
    let mut vectors: Vec<Vector> = Vec::new();
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "vector" {
            vectors.push(Vector::default());
            continue;
        }
        if let Some(rest) = line.strip_prefix("task ") {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 8 {
                return Err(StreamFormatError::BadLine {
                    line: line_no,
                    reason: format!("expected 8 fields, got {}", fields.len()),
                });
            }
            let mut nums = [0u64; 8];
            for (slot, f) in nums.iter_mut().zip(&fields) {
                *slot = f.parse().map_err(|_| StreamFormatError::BadLine {
                    line: line_no,
                    reason: format!("'{f}' is not an unsigned integer"),
                })?;
            }
            let task = ContractionTask {
                id: TaskId(nums[0]),
                a: TensorDesc {
                    id: TensorId(nums[1]),
                    bytes: nums[2],
                },
                b: TensorDesc {
                    id: TensorId(nums[3]),
                    bytes: nums[4],
                },
                out: TensorDesc {
                    id: TensorId(nums[5]),
                    bytes: nums[6],
                },
                flops: nums[7],
            };
            vectors
                .last_mut()
                .ok_or(StreamFormatError::TaskOutsideVector { line: line_no })?
                .tasks
                .push(task);
        } else {
            return Err(StreamFormatError::BadLine {
                line: line_no,
                reason: format!("unrecognised line '{line}'"),
            });
        }
    }
    Ok(TensorPairStream::new(vectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadSpec;

    #[test]
    fn roundtrip_is_exact() {
        let stream = WorkloadSpec::new(16, 128)
            .with_repeat_rate(0.6)
            .with_vectors(4)
            .generate();
        let text = to_text(&stream);
        let back = from_text(&text).unwrap();
        assert_eq!(stream, back);
    }

    #[test]
    fn empty_stream_roundtrips() {
        let s = TensorPairStream::default();
        assert_eq!(from_text(&to_text(&s)).unwrap(), s);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = format!("{HEADER}\n# a comment\n\nvector\ntask 0 1 10 2 10 3 10 99\n");
        let s = from_text(&text).unwrap();
        assert_eq!(s.total_tasks(), 1);
        assert_eq!(s.vectors[0].tasks[0].flops, 99);
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(from_text("nope\n"), Err(StreamFormatError::BadHeader));
        assert_eq!(from_text(""), Err(StreamFormatError::BadHeader));
    }

    #[test]
    fn task_outside_vector_rejected() {
        let text = format!("{HEADER}\ntask 0 1 10 2 10 3 10 99\n");
        assert!(matches!(
            from_text(&text),
            Err(StreamFormatError::TaskOutsideVector { line: 2 })
        ));
    }

    #[test]
    fn field_count_checked() {
        let text = format!("{HEADER}\nvector\ntask 0 1 10\n");
        let err = from_text(&text).unwrap_err();
        assert!(err.to_string().contains("8 fields"));
    }

    #[test]
    fn non_numeric_rejected() {
        let text = format!("{HEADER}\nvector\ntask 0 1 ten 2 10 3 10 99\n");
        let err = from_text(&text).unwrap_err();
        assert!(err.to_string().contains("'ten'"));
    }

    #[test]
    fn unknown_line_rejected() {
        let text = format!("{HEADER}\nwat\n");
        assert!(from_text(&text).is_err());
    }
}
