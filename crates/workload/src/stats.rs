//! Descriptive statistics of tensor-pair streams.
//!
//! Front ends and papers talk about streams in aggregate terms — how much
//! reuse, how concentrated, how heavy per stage. This module computes those
//! aggregates for any [`TensorPairStream`] (synthetic or Redstar-built), and
//! backs the `micco info`-style reporting in examples and experiments.

use std::collections::HashMap;

use crate::task::{TensorId, TensorPairStream};

/// Aggregate statistics of one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Stage count.
    pub stages: usize,
    /// Total contraction tasks.
    pub tasks: usize,
    /// Total kernel flops.
    pub flops: u64,
    /// Distinct input tensors.
    pub distinct_inputs: usize,
    /// Fraction of input slots that re-reference an earlier tensor.
    pub repeat_fraction: f64,
    /// Mean appearances per distinct input tensor (≥ 1; higher = hotter).
    pub mean_uses_per_tensor: f64,
    /// Appearance count of the single hottest tensor.
    pub max_uses: usize,
    /// Working-set bytes (each distinct tensor once, outputs included).
    pub working_set_bytes: u64,
    /// Largest single-stage working set in bytes.
    pub peak_stage_bytes: u64,
    /// Tasks per stage: (min, mean, max).
    pub tasks_per_stage: (usize, f64, usize),
}

impl StreamStats {
    /// Compute statistics for `stream`.
    pub fn measure(stream: &TensorPairStream) -> Self {
        let mut uses: HashMap<TensorId, usize> = HashMap::new();
        let mut slots = 0usize;
        for v in &stream.vectors {
            for t in &v.tasks {
                for id in [t.a.id, t.b.id] {
                    *uses.entry(id).or_default() += 1;
                    slots += 1;
                }
            }
        }
        let distinct = uses.len();
        let repeats = slots - distinct.min(slots);
        let max_uses = uses.values().copied().max().unwrap_or(0);
        let per_stage: Vec<usize> = stream.vectors.iter().map(|v| v.len()).collect();
        let (min_t, max_t) = per_stage
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), &n| (lo.min(n), hi.max(n)));
        let mean_t = if per_stage.is_empty() {
            0.0
        } else {
            per_stage.iter().sum::<usize>() as f64 / per_stage.len() as f64
        };
        StreamStats {
            stages: stream.vectors.len(),
            tasks: stream.total_tasks(),
            flops: stream.total_flops(),
            distinct_inputs: distinct,
            repeat_fraction: if slots == 0 {
                0.0
            } else {
                repeats as f64 / slots as f64
            },
            mean_uses_per_tensor: if distinct == 0 {
                0.0
            } else {
                slots as f64 / distinct as f64
            },
            max_uses,
            working_set_bytes: stream.unique_bytes(),
            peak_stage_bytes: stream.peak_vector_bytes(),
            tasks_per_stage: (if per_stage.is_empty() { 0 } else { min_t }, mean_t, max_t),
        }
    }
}

impl std::fmt::Display for StreamStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} stages × {:.1} tasks (min {}, max {}), {} tasks total, {:.1} GFLOP",
            self.stages,
            self.tasks_per_stage.1,
            self.tasks_per_stage.0,
            self.tasks_per_stage.2,
            self.tasks,
            self.flops as f64 / 1e9
        )?;
        writeln!(
            f,
            "inputs: {} distinct, repeat fraction {:.1}%, mean uses {:.2}, hottest tensor used {}×",
            self.distinct_inputs,
            self.repeat_fraction * 100.0,
            self.mean_uses_per_tensor,
            self.max_uses
        )?;
        write!(
            f,
            "working set {:.1} MiB (peak stage {:.1} MiB)",
            self.working_set_bytes as f64 / (1 << 20) as f64,
            self.peak_stage_bytes as f64 / (1 << 20) as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{RepeatDistribution, WorkloadSpec};

    #[test]
    fn fresh_stream_has_no_repeats() {
        let s = WorkloadSpec::new(8, 32)
            .with_repeat_rate(0.0)
            .with_vectors(3)
            .generate();
        let st = StreamStats::measure(&s);
        assert_eq!(st.repeat_fraction, 0.0);
        assert_eq!(st.distinct_inputs, 8 * 3 * 2);
        assert_eq!(st.mean_uses_per_tensor, 1.0);
        assert_eq!(st.max_uses, 1);
        assert_eq!(st.stages, 3);
        assert_eq!(st.tasks, 24);
        assert_eq!(st.tasks_per_stage, (8, 8.0, 8));
    }

    #[test]
    fn hot_stream_registers_high_reuse() {
        let s = WorkloadSpec::new(32, 32)
            .with_repeat_rate(0.9)
            .with_distribution(RepeatDistribution::Gaussian)
            .with_vectors(4)
            .generate();
        let st = StreamStats::measure(&s);
        assert!(
            st.repeat_fraction > 0.4,
            "repeat fraction {}",
            st.repeat_fraction
        );
        assert!(st.mean_uses_per_tensor > 1.5);
        assert!(st.max_uses > 3);
    }

    #[test]
    fn consistency_with_stream_accessors() {
        let s = WorkloadSpec::new(16, 48)
            .with_repeat_rate(0.5)
            .with_vectors(3)
            .generate();
        let st = StreamStats::measure(&s);
        assert_eq!(st.tasks, s.total_tasks());
        assert_eq!(st.flops, s.total_flops());
        assert_eq!(st.working_set_bytes, s.unique_bytes());
        assert_eq!(st.peak_stage_bytes, s.peak_vector_bytes());
    }

    #[test]
    fn empty_stream() {
        let st = StreamStats::measure(&TensorPairStream::default());
        assert_eq!(st.tasks, 0);
        assert_eq!(st.repeat_fraction, 0.0);
        assert_eq!(st.tasks_per_stage, (0, 0.0, 0));
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = WorkloadSpec::new(4, 16).with_vectors(2).generate();
        let text = StreamStats::measure(&s).to_string();
        assert!(text.contains("2 stages"));
        assert!(text.contains("distinct"));
        assert!(text.contains("working set"));
    }
}
