//! Core task vocabulary: tensors, contraction tasks, vectors, streams.

use micco_tensor::{contraction_flops, tensor_bytes, ContractionKind};

/// Globally unique identity of a tensor (an original hadron-node payload or
/// an intermediate produced by an earlier contraction).
///
/// Two tasks referencing the same `TensorId` reference the *same data* —
/// this is exactly the reuse the scheduler exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub u64);

/// Identity of one contraction task within a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Shape-level description of a tensor as the scheduler and simulator see it
/// (the numeric payload lives elsewhere; placement only needs identity and
/// footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorDesc {
    /// Identity (shared ⇒ reusable).
    pub id: TensorId,
    /// Device-memory footprint in bytes.
    pub bytes: u64,
}

impl TensorDesc {
    /// Describe a hadron tensor of the given kind/batch/dim.
    pub fn new(id: TensorId, kind: ContractionKind, batch: usize, dim: usize) -> Self {
        TensorDesc {
            id,
            bytes: tensor_bytes(kind, batch, dim),
        }
    }
}

/// One hadron contraction: reduce the edge between two hadron nodes,
/// producing an output tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractionTask {
    /// Task identity (unique within a stream).
    pub id: TaskId,
    /// First input tensor.
    pub a: TensorDesc,
    /// Second input tensor.
    pub b: TensorDesc,
    /// Output tensor (always fresh — contraction creates new data).
    pub out: TensorDesc,
    /// Kernel cost in flops.
    pub flops: u64,
}

impl ContractionTask {
    /// Build a task for two same-shape hadron tensors of `kind`.
    pub fn uniform(
        id: TaskId,
        a: TensorId,
        b: TensorId,
        out: TensorId,
        kind: ContractionKind,
        batch: usize,
        dim: usize,
    ) -> Self {
        ContractionTask {
            id,
            a: TensorDesc::new(a, kind, batch, dim),
            b: TensorDesc::new(b, kind, batch, dim),
            out: TensorDesc::new(out, kind, batch, dim),
            flops: contraction_flops(kind, batch, dim),
        }
    }

    /// Total input bytes of the task.
    pub fn input_bytes(&self) -> u64 {
        self.a.bytes + self.b.bytes
    }
}

/// One stage vector: a list of independent contraction tasks that may run
/// concurrently across GPUs. The scheduler processes the pairs in order
/// (online), and the machine synchronises at vector boundaries (stages are
/// sequential, Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Vector {
    /// Independent contraction tasks of this stage.
    pub tasks: Vec<ContractionTask>,
}

impl Vector {
    /// Build from tasks.
    pub fn new(tasks: Vec<ContractionTask>) -> Self {
        Vector { tasks }
    }

    /// Number of contraction tasks (pairs).
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the vector carries no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of tensor *slots* in the vector — the paper's "vector size"
    /// counts tensors, two per pair.
    pub fn tensor_slots(&self) -> usize {
        self.tasks.len() * 2
    }

    /// Total kernel flops of the vector.
    pub fn total_flops(&self) -> u64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }

    /// Total distinct input tensors (repeats within the vector counted once).
    pub fn unique_input_tensors(&self) -> usize {
        let mut ids: Vec<TensorId> = self.tasks.iter().flat_map(|t| [t.a.id, t.b.id]).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Sum of input bytes counting each distinct tensor once, plus all
    /// output bytes — the working set if the whole vector ran on one device.
    pub fn unique_bytes(&self) -> u64 {
        let mut ids: Vec<TensorDesc> = self.tasks.iter().flat_map(|t| [t.a, t.b]).collect();
        ids.sort_unstable_by_key(|d| d.id);
        ids.dedup_by_key(|d| d.id);
        let inputs: u64 = ids.iter().map(|d| d.bytes).sum();
        let outputs: u64 = self.tasks.iter().map(|t| t.out.bytes).sum();
        inputs + outputs
    }
}

/// A whole scheduling problem: an ordered sequence of stage vectors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TensorPairStream {
    /// Stage vectors, executed in order with a barrier between stages.
    pub vectors: Vec<Vector>,
}

impl TensorPairStream {
    /// Build from vectors.
    pub fn new(vectors: Vec<Vector>) -> Self {
        TensorPairStream { vectors }
    }

    /// Total tasks across all vectors.
    pub fn total_tasks(&self) -> usize {
        self.vectors.iter().map(Vector::len).sum()
    }

    /// Total kernel flops across all vectors.
    pub fn total_flops(&self) -> u64 {
        self.vectors.iter().map(Vector::total_flops).sum()
    }

    /// Working-set bytes if every distinct tensor in the stream (inputs and
    /// outputs) were resident at once. Used to size oversubscribed machines
    /// (Fig. 11).
    pub fn unique_bytes(&self) -> u64 {
        let mut ids: Vec<TensorDesc> = self
            .vectors
            .iter()
            .flat_map(|v| v.tasks.iter().flat_map(|t| [t.a, t.b, t.out]))
            .collect();
        ids.sort_unstable_by_key(|d| d.id);
        ids.dedup_by_key(|d| d.id);
        ids.iter().map(|d| d.bytes).sum()
    }

    /// Largest single-vector working set in bytes (peak concurrent demand).
    pub fn peak_vector_bytes(&self) -> u64 {
        self.vectors
            .iter()
            .map(Vector::unique_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Content hash of the whole stream (64-bit FNV-1a over every task
    /// field plus the stage boundaries). Any change to the stream — task
    /// order, tensor identity or footprint, flops, vector count — changes
    /// the fingerprint; equal streams always fingerprint equal. Schedule
    /// plans carry this value so a plan can be checked against the stream
    /// it is replayed on, and plan caches key on it.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for v in &self.vectors {
            // a stage marker keeps [t0 | t1] distinct from [t0, t1]
            mix(u64::MAX);
            mix(v.tasks.len() as u64);
            for t in &v.tasks {
                mix(t.id.0);
                mix(t.a.id.0);
                mix(t.a.bytes);
                mix(t.b.id.0);
                mix(t.b.bytes);
                mix(t.out.id.0);
                mix(t.out.bytes);
                mix(t.flops);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u64, a: u64, b: u64, out: u64) -> ContractionTask {
        ContractionTask::uniform(
            TaskId(id),
            TensorId(a),
            TensorId(b),
            TensorId(out),
            ContractionKind::Meson,
            2,
            4,
        )
    }

    #[test]
    fn tensor_desc_bytes() {
        let d = TensorDesc::new(TensorId(1), ContractionKind::Meson, 2, 4);
        assert_eq!(d.bytes, 2 * 4 * 4 * 16);
    }

    #[test]
    fn task_flops_and_bytes() {
        let t = task(0, 1, 2, 100);
        assert_eq!(t.flops, 2 * 4u64.pow(3) * 8);
        assert_eq!(t.input_bytes(), 2 * t.a.bytes);
    }

    #[test]
    fn vector_counts() {
        let v = Vector::new(vec![task(0, 1, 2, 100), task(1, 1, 3, 101)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.tensor_slots(), 4);
        // tensor 1 repeats: distinct inputs are {1, 2, 3}
        assert_eq!(v.unique_input_tensors(), 3);
        assert_eq!(v.total_flops(), 2 * 2 * 4u64.pow(3) * 8);
    }

    #[test]
    fn vector_unique_bytes_dedups_inputs_not_outputs() {
        let v = Vector::new(vec![task(0, 1, 2, 100), task(1, 1, 2, 101)]);
        let per = TensorDesc::new(TensorId(0), ContractionKind::Meson, 2, 4).bytes;
        // inputs {1,2} once each + two outputs
        assert_eq!(v.unique_bytes(), 4 * per);
    }

    #[test]
    fn stream_aggregates() {
        let s = TensorPairStream::new(vec![
            Vector::new(vec![task(0, 1, 2, 100)]),
            Vector::new(vec![task(1, 1, 3, 101), task(2, 100, 2, 102)]),
        ]);
        assert_eq!(s.total_tasks(), 3);
        let per = TensorDesc::new(TensorId(0), ContractionKind::Meson, 2, 4).bytes;
        // distinct ids: 1,2,3,100,101,102
        assert_eq!(s.unique_bytes(), 6 * per);
        assert_eq!(s.peak_vector_bytes(), s.vectors[1].unique_bytes());
        assert_eq!(s.total_flops(), 3 * 2 * 4u64.pow(3) * 8);
    }

    #[test]
    fn empty_vector() {
        let v = Vector::default();
        assert!(v.is_empty());
        assert_eq!(v.unique_bytes(), 0);
        assert_eq!(TensorPairStream::default().peak_vector_bytes(), 0);
    }

    #[test]
    fn fingerprint_is_content_sensitive() {
        let base = TensorPairStream::new(vec![
            Vector::new(vec![task(0, 1, 2, 100)]),
            Vector::new(vec![task(1, 1, 3, 101), task(2, 100, 2, 102)]),
        ]);
        assert_eq!(base.fingerprint(), base.clone().fingerprint());

        // task order within a vector matters
        let mut reordered = base.clone();
        reordered.vectors[1].tasks.reverse();
        assert_ne!(base.fingerprint(), reordered.fingerprint());

        // moving a stage boundary matters even with identical task lists
        let flat = TensorPairStream::new(vec![Vector::new(
            base.vectors.iter().flat_map(|v| v.tasks.clone()).collect(),
        )]);
        assert_ne!(base.fingerprint(), flat.fingerprint());

        // any field change matters
        let mut heavier = base.clone();
        heavier.vectors[0].tasks[0].flops += 1;
        assert_ne!(base.fingerprint(), heavier.fingerprint());

        // trailing empty vectors are structurally different streams
        let mut padded = base.clone();
        padded.vectors.push(Vector::default());
        assert_ne!(base.fingerprint(), padded.fingerprint());
    }
}
