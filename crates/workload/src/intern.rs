//! Tensor-identity interning: sparse 64-bit ids → dense 32-bit symbols.
//!
//! Streams name tensors with arbitrary (often widely spaced) [`TensorId`]
//! values. The planner's hot loops, however, want *dense* indices so that
//! residency, next-use and host-copy state can live in flat vectors
//! instead of hash maps. A [`TensorInterner`] assigns each distinct id a
//! [`TensorSym`] — a `u32` in first-appearance order — and converts in
//! both directions. Interning happens once per machine at the id boundary;
//! everything downstream indexes by symbol.
//!
//! The interner's own id→symbol map still hashes, but with a
//! multiply-xor-shift hasher ([`FastIdHasher`]) rather than the standard
//! library's SipHash: tensor ids are not attacker-controlled, so the
//! DoS-resistant default only costs planning throughput.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::task::{TensorId, TensorPairStream};

/// Dense symbol for an interned [`TensorId`] (assigned in first-appearance
/// order, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorSym(pub u32);

impl TensorSym {
    /// The symbol as a `usize` index into per-symbol SoA vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A fast, non-cryptographic hasher for 64-bit keys (splitmix64 finalizer).
///
/// Only suitable for trusted keys like tensor ids; falls back to mixing
/// arbitrary bytes so derived `Hash` impls still work.
#[derive(Default)]
pub struct FastIdHasher(u64);

impl Hasher for FastIdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: full avalanche over the accumulated state
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = self.0.rotate_left(5) ^ i;
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `HashMap` keyed by trusted 64-bit identities (tensor/task ids) using
/// [`FastIdHasher`].
pub type FastIdMap<K, V> = HashMap<K, V, BuildHasherDefault<FastIdHasher>>;

/// `HashSet` counterpart of [`FastIdMap`].
pub type FastIdSet<K> = HashSet<K, BuildHasherDefault<FastIdHasher>>;

/// Bidirectional id↔symbol table.
///
/// # Examples
///
/// ```
/// use micco_workload::{TensorId, TensorInterner, TensorSym};
///
/// let mut interner = TensorInterner::new();
/// let a = interner.intern(TensorId(1_000_000));
/// let b = interner.intern(TensorId(7));
/// assert_eq!((a, b), (TensorSym(0), TensorSym(1)));
/// // re-interning is idempotent
/// assert_eq!(interner.intern(TensorId(1_000_000)), a);
/// assert_eq!(interner.resolve(b), TensorId(7));
/// assert_eq!(interner.get(TensorId(42)), None);
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TensorInterner {
    symbols: FastIdMap<u64, u32>,
    ids: Vec<TensorId>,
}

impl TensorInterner {
    /// An empty table.
    pub fn new() -> Self {
        TensorInterner::default()
    }

    /// An empty table with room for `n` distinct tensors.
    pub fn with_capacity(n: usize) -> Self {
        TensorInterner {
            symbols: FastIdMap::with_capacity_and_hasher(n, BuildHasherDefault::default()),
            ids: Vec::with_capacity(n),
        }
    }

    /// The symbol for `id`, assigning the next free one on first sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct tensors are interned (4
    /// billion — far beyond any stream this repo plans).
    #[inline]
    pub fn intern(&mut self, id: TensorId) -> TensorSym {
        if let Some(&s) = self.symbols.get(&id.0) {
            return TensorSym(s);
        }
        let s = u32::try_from(self.ids.len()).expect("interner overflow: > u32::MAX tensors");
        self.symbols.insert(id.0, s);
        self.ids.push(id);
        TensorSym(s)
    }

    /// The symbol for `id`, if it has been interned.
    #[inline]
    pub fn get(&self, id: TensorId) -> Option<TensorSym> {
        self.symbols.get(&id.0).copied().map(TensorSym)
    }

    /// The original id of a symbol (the boundary conversion for
    /// serialization and reporting).
    ///
    /// # Panics
    ///
    /// Panics when `sym` was not produced by this interner.
    #[inline]
    pub fn resolve(&self, sym: TensorSym) -> TensorId {
        self.ids[sym.index()]
    }

    /// Number of distinct tensors interned so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True before the first intern.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Intern every tensor of `stream` (inputs and outputs) in stream
    /// order, so per-symbol state can be pre-sized before planning starts.
    pub fn intern_stream(&mut self, stream: &TensorPairStream) {
        for v in &stream.vectors {
            for t in &v.tasks {
                self.intern(t.a.id);
                self.intern(t.b.id);
                self.intern(t.out.id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ContractionTask, TaskId, TensorDesc, Vector};

    fn task(id: u64, a: u64, b: u64, out: u64) -> ContractionTask {
        let d = |n| TensorDesc {
            id: TensorId(n),
            bytes: 8,
        };
        ContractionTask {
            id: TaskId(id),
            a: d(a),
            b: d(b),
            out: d(out),
            flops: 1,
        }
    }

    #[test]
    fn first_appearance_order_round_trips() {
        let mut i = TensorInterner::new();
        let ids = [9_u64, 3, 9, 700, 3, 0];
        let syms: Vec<TensorSym> = ids.iter().map(|&n| i.intern(TensorId(n))).collect();
        assert_eq!(
            syms.iter().map(|s| s.0).collect::<Vec<_>>(),
            vec![0, 1, 0, 2, 1, 3]
        );
        for (&n, &s) in ids.iter().zip(&syms) {
            assert_eq!(i.resolve(s), TensorId(n));
            assert_eq!(i.get(TensorId(n)), Some(s));
        }
        assert_eq!(i.len(), 4);
        assert!(!i.is_empty());
    }

    #[test]
    fn intern_stream_covers_inputs_and_outputs() {
        let stream = TensorPairStream::new(vec![
            Vector::new(vec![task(0, 1, 2, 100)]),
            Vector::new(vec![task(1, 2, 3, 101)]),
        ]);
        let mut i = TensorInterner::with_capacity(8);
        i.intern_stream(&stream);
        // distinct: 1, 2, 100, 3, 101 — in stream order
        assert_eq!(i.len(), 5);
        assert_eq!(i.get(TensorId(1)), Some(TensorSym(0)));
        assert_eq!(i.get(TensorId(100)), Some(TensorSym(2)));
        assert_eq!(i.get(TensorId(101)), Some(TensorSym(4)));
    }

    #[test]
    fn fast_map_behaves_like_a_map() {
        let mut m: FastIdMap<u64, u32> = FastIdMap::default();
        for k in 0..1000_u64 {
            m.insert(k.wrapping_mul(0x9e37_79b9), k as u32);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000_u64 {
            assert_eq!(m.get(&k.wrapping_mul(0x9e37_79b9)), Some(&(k as u32)));
        }
        let mut s: FastIdSet<u64> = FastIdSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }
}
