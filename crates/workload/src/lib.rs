#![warn(missing_docs)]

//! # micco-workload
//!
//! Workload vocabulary and synthetic generators for MICCO.
//!
//! A many-body correlation calculation reaches the scheduler as a stream of
//! *vectors* (the paper's stages, Fig. 1): each vector is a list of
//! independent *tensor pairs*, and each pair is one hadron contraction to be
//! placed on some GPU. This crate defines those types —
//! [`TensorDesc`], [`ContractionTask`], [`Vector`], [`TensorPairStream`] —
//! plus:
//!
//! * [`WorkloadSpec`]: the synthetic generator used throughout the paper's
//!   evaluation (Sec. V-A), parameterised by vector size, tensor size,
//!   repeated rate, and the Uniform/Gaussian repeated-data distribution;
//! * [`DataCharacteristics`]: the per-vector features fed to the regression
//!   model (Table I);
//! * [`TensorInterner`]: sparse tensor ids → dense `u32` symbols, so
//!   planners can keep per-tensor state in flat vectors instead of maps.

pub mod characteristics;
pub mod generator;
pub mod intern;
pub mod serialize;
pub mod stats;
pub mod task;

pub use characteristics::DataCharacteristics;
pub use generator::{RepeatDistribution, WorkloadSpec};
pub use intern::{FastIdHasher, FastIdMap, FastIdSet, TensorInterner, TensorSym};
pub use serialize::{from_text, to_text, StreamFormatError};
pub use stats::StreamStats;
pub use task::{ContractionTask, TaskId, TensorDesc, TensorId, TensorPairStream, Vector};
