//! Synthetic workload generator (the paper's evaluation datasets, Sec. V-A).
//!
//! The evaluation synthesises streams of stage vectors controlled by four
//! data characteristics (Table I): *vector size*, *tensor size*, *repeated
//! rate*, and *data distribution*. A repeated tensor slot references a tensor
//! id already emitted earlier in the stream; which earlier tensor it
//! references is drawn either uniformly over the pool (Uniform) or from a
//! Gaussian concentrated on a hot region of the pool (Gaussian — the paper's
//! "biased" distribution, which clusters reuse on few tensors and therefore
//! stresses load balance).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use micco_tensor::ContractionKind;

use crate::task::{ContractionTask, TaskId, TensorId, TensorPairStream, Vector};

/// How repeated tensor slots pick their referent from the pool of previously
/// emitted tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepeatDistribution {
    /// Unbiased: every earlier tensor equally likely.
    Uniform,
    /// Biased: Gaussian over the pool centred on the oldest tensors,
    /// clustering reuse on a hot set (the paper's "biased" case).
    Gaussian,
    /// Extension beyond the paper's two distributions: Zipf-like rank
    /// skew (`P(rank k) ∝ 1/k`), the shape real access frequencies tend
    /// to follow — heavier head than Gaussian, but with a long tail that
    /// keeps every pool member reachable.
    Zipf,
}

impl std::fmt::Display for RepeatDistribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepeatDistribution::Uniform => write!(f, "Uniform"),
            RepeatDistribution::Gaussian => write!(f, "Gaussian"),
            RepeatDistribution::Zipf => write!(f, "Zipf"),
        }
    }
}

/// Builder for synthetic tensor-pair streams.
///
/// # Examples
///
/// ```
/// use micco_workload::{RepeatDistribution, WorkloadSpec};
///
/// let stream = WorkloadSpec::new(16, 384)        // 16 pairs/stage, 384×384 tensors
///     .with_repeat_rate(0.5)
///     .with_distribution(RepeatDistribution::Gaussian)
///     .with_vectors(4)
///     .with_seed(7)
///     .generate();
/// assert_eq!(stream.vectors.len(), 4);
/// assert_eq!(stream.total_tasks(), 64);
/// // same spec ⇒ same stream, bit for bit
/// assert_eq!(stream, WorkloadSpec::new(16, 384)
///     .with_repeat_rate(0.5)
///     .with_distribution(RepeatDistribution::Gaussian)
///     .with_vectors(4)
///     .with_seed(7)
///     .generate());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Tensors per stage side-vector; each stage contributes this many pairs
    /// (the paper's "vector size").
    pub vector_size: usize,
    /// Mode length of every hadron tensor (the paper's "tensor size",
    /// 128–768 in the evaluation).
    pub tensor_dim: usize,
    /// Batch count per hadron tensor.
    pub batch: usize,
    /// Meson (batched GEMM) or baryon (batched rank-3 contraction) system.
    pub kind: ContractionKind,
    /// Fraction of tensor slots that repeat an earlier tensor (0.0–1.0).
    pub repeat_rate: f64,
    /// How repeats pick their referent.
    pub distribution: RepeatDistribution,
    /// Number of stage vectors in the stream.
    pub num_vectors: usize,
    /// RNG seed — generation is fully deterministic given the spec.
    pub seed: u64,
    /// Gaussian width as a fraction of the pool size (biased distribution
    /// only). Smaller ⇒ hotter hot set ⇒ more imbalance.
    pub gaussian_sigma_frac: f64,
    /// Optional heterogeneous mode: each stage vector samples its tensor
    /// mode length from this list instead of using `tensor_dim`. Repeats
    /// only reference earlier tensors of the same mode length (tensors of
    /// different shapes are different data). Real correlation functions mix
    /// stages of different tensor sizes exactly like this (Table VI:
    /// "vector size, repeated rate, and data distribution vary
    /// dynamically").
    pub dim_choices: Option<Vec<usize>>,
    /// Optional per-vector size variation: each stage vector samples its
    /// pair count from this list instead of using `vector_size` (Table VI:
    /// vector size varies dynamically in real runs).
    pub vector_size_choices: Option<Vec<usize>>,
}

impl WorkloadSpec {
    /// Spec with the paper's defaults: meson system, batch 4, four vectors,
    /// 50% repeated rate, uniform distribution, seed 0.
    pub fn new(vector_size: usize, tensor_dim: usize) -> Self {
        WorkloadSpec {
            vector_size,
            tensor_dim,
            batch: 4,
            kind: ContractionKind::Meson,
            repeat_rate: 0.5,
            distribution: RepeatDistribution::Uniform,
            num_vectors: 4,
            seed: 0,
            gaussian_sigma_frac: 1.0 / 16.0,
            dim_choices: None,
            vector_size_choices: None,
        }
    }

    /// Set the repeated rate.
    pub fn with_repeat_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "repeat rate must be in [0,1]");
        self.repeat_rate = rate;
        self
    }

    /// Set the repeated-data distribution.
    pub fn with_distribution(mut self, d: RepeatDistribution) -> Self {
        self.distribution = d;
        self
    }

    /// Set the number of stage vectors.
    pub fn with_vectors(mut self, n: usize) -> Self {
        self.num_vectors = n;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the per-tensor batch count.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Set the system kind (meson/baryon).
    pub fn with_kind(mut self, kind: ContractionKind) -> Self {
        self.kind = kind;
        self
    }

    /// Set the Gaussian hot-set width (fraction of pool size).
    pub fn with_gaussian_sigma_frac(mut self, frac: f64) -> Self {
        assert!(frac > 0.0, "sigma fraction must be positive");
        self.gaussian_sigma_frac = frac;
        self
    }

    /// Enable heterogeneous mode: per-vector tensor sizes drawn from
    /// `dims`.
    pub fn with_dim_choices(mut self, dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "need at least one dim choice");
        self.dim_choices = Some(dims);
        self
    }

    /// Enable per-vector size variation: pair counts drawn from `sizes`.
    pub fn with_vector_size_choices(mut self, sizes: Vec<usize>) -> Self {
        assert!(!sizes.is_empty(), "need at least one vector size choice");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "vector sizes must be positive"
        );
        self.vector_size_choices = Some(sizes);
        self
    }

    /// Generate the stream described by this spec.
    pub fn generate(&self) -> TensorPairStream {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // One tensor pool per mode length: repeats only reference earlier
        // tensors of the same shape.
        let mut pools: std::collections::HashMap<usize, Vec<TensorId>> =
            std::collections::HashMap::new();
        let mut next_tensor: u64 = 0;
        let mut next_task: u64 = 0;
        // Output ids live in a disjoint range so streams stay valid even if
        // callers later feed outputs back in as inputs.
        let mut next_output: u64 = 1 << 40;

        let mut fresh = |pool: &mut Vec<TensorId>, next_tensor: &mut u64| {
            let id = TensorId(*next_tensor);
            *next_tensor += 1;
            pool.push(id);
            id
        };

        let mut vectors = Vec::with_capacity(self.num_vectors);
        for vi in 0..self.num_vectors {
            let dim = match &self.dim_choices {
                Some(choices) => choices[rng.gen_range(0..choices.len())],
                None => self.tensor_dim,
            };
            let pool = pools.entry(dim).or_default();
            let pairs = match &self.vector_size_choices {
                Some(choices) => choices[rng.gen_range(0..choices.len())],
                None => self.vector_size,
            };
            let mut tasks = Vec::with_capacity(pairs);
            // The first vector is entirely fresh: the repeated rate
            // describes repeats *relative to previous data* (Table I), and
            // there is no previous data yet. This also keeps the tensor
            // pool realistic at repeated rate 1.0 (otherwise the whole
            // stream would collapse onto the single first tensor).
            let rate = if vi == 0 { 0.0 } else { self.repeat_rate };
            for _ in 0..pairs {
                let a = self.pick_slot(rate, &mut rng, pool, &mut next_tensor, &mut fresh);
                let b = self.pick_slot(rate, &mut rng, pool, &mut next_tensor, &mut fresh);
                let out = TensorId(next_output);
                next_output += 1;
                tasks.push(ContractionTask::uniform(
                    TaskId(next_task),
                    a,
                    b,
                    out,
                    self.kind,
                    self.batch,
                    dim,
                ));
                next_task += 1;
            }
            vectors.push(Vector::new(tasks));
        }
        TensorPairStream::new(vectors)
    }

    fn pick_slot(
        &self,
        rate: f64,
        rng: &mut StdRng,
        pool: &mut Vec<TensorId>,
        next_tensor: &mut u64,
        fresh: &mut impl FnMut(&mut Vec<TensorId>, &mut u64) -> TensorId,
    ) -> TensorId {
        if !pool.is_empty() && rng.gen_bool(rate) {
            self.pick_from_pool(rng, pool)
        } else {
            fresh(pool, next_tensor)
        }
    }

    fn pick_from_pool(&self, rng: &mut StdRng, pool: &[TensorId]) -> TensorId {
        match self.distribution {
            RepeatDistribution::Uniform => pool[rng.gen_range(0..pool.len())],
            RepeatDistribution::Gaussian => {
                let n = pool.len() as f64;
                let sigma = (n * self.gaussian_sigma_frac).max(0.5);
                // Centre the hot set on the oldest tensors: index 0 is a
                // stable anchor, so reuse keeps hammering the same few
                // tensors as the pool grows (the paper's "biased" case).
                let normal = Normal::new(0.0, sigma).expect("sigma > 0");
                let idx = normal.sample(rng).abs().round();
                let idx = (idx as usize).min(pool.len() - 1);
                pool[idx]
            }
            RepeatDistribution::Zipf => {
                // Inverse-CDF sampling of P(rank k) ∝ 1/(k+1) over the
                // pool, anchored like the Gaussian on the oldest tensors.
                // H_n ≈ ln(n) + γ; solving u·H_n = H_k for k gives the
                // classic exp-of-uniform form.
                let n = pool.len() as f64;
                let h_n = (n + 1.0).ln() + 0.577_215_664_9;
                let u: f64 = rng.gen_range(0.0..1.0);
                let k = (u * h_n).exp_m1(); // e^{uH} − 1 ∈ [0, n)
                let idx = (k.floor() as usize).min(pool.len() - 1);
                pool[idx]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::collections::HashSet;

    /// Measured repeat fraction over the steady-state vectors (the first
    /// vector is all-fresh by construction and excluded from the count,
    /// though its tensors do seed the `seen` set).
    fn measured_repeat_rate(stream: &TensorPairStream) -> f64 {
        let mut seen: HashSet<TensorId> = HashSet::new();
        let mut slots = 0usize;
        let mut repeats = 0usize;
        for (vi, v) in stream.vectors.iter().enumerate() {
            for t in &v.tasks {
                for id in [t.a.id, t.b.id] {
                    let repeat = !seen.insert(id);
                    if vi > 0 {
                        slots += 1;
                        if repeat {
                            repeats += 1;
                        }
                    }
                }
            }
        }
        repeats as f64 / slots as f64
    }

    #[test]
    fn first_vector_is_all_fresh() {
        let s = WorkloadSpec::new(16, 32)
            .with_repeat_rate(1.0)
            .with_vectors(3)
            .generate();
        let mut ids: HashSet<TensorId> = HashSet::new();
        for t in &s.vectors[0].tasks {
            ids.insert(t.a.id);
            ids.insert(t.b.id);
        }
        assert_eq!(ids.len(), 32, "first vector must not repeat anything");
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = WorkloadSpec::new(16, 128).with_seed(42);
        assert_eq!(spec.generate(), spec.generate());
        let other = spec.clone().with_seed(43).generate();
        assert_ne!(spec.generate(), other);
    }

    #[test]
    fn shape_matches_spec() {
        let s = WorkloadSpec::new(8, 64).with_vectors(5).generate();
        assert_eq!(s.vectors.len(), 5);
        for v in &s.vectors {
            assert_eq!(v.len(), 8);
            for t in &v.tasks {
                assert_eq!(t.a.bytes, 4 * 64 * 64 * 16);
            }
        }
    }

    #[test]
    fn zero_repeat_rate_all_fresh() {
        let s = WorkloadSpec::new(16, 32)
            .with_repeat_rate(0.0)
            .with_vectors(3)
            .generate();
        assert_eq!(measured_repeat_rate(&s), 0.0);
        // 3 vectors * 16 pairs * 2 slots distinct inputs
        let mut ids: HashSet<TensorId> = HashSet::new();
        for v in &s.vectors {
            for t in &v.tasks {
                ids.insert(t.a.id);
                ids.insert(t.b.id);
            }
        }
        assert_eq!(ids.len(), 3 * 16 * 2);
    }

    #[test]
    fn full_repeat_rate_reuses_heavily() {
        let s = WorkloadSpec::new(32, 32)
            .with_repeat_rate(1.0)
            .with_vectors(4)
            .with_seed(1)
            .generate();
        // Past the all-fresh seed vector, everything repeats.
        let r = measured_repeat_rate(&s);
        assert_eq!(r, 1.0, "measured repeat rate {r}");
    }

    #[test]
    fn measured_rate_tracks_requested_rate() {
        for &want in &[0.25, 0.5, 0.75] {
            let s = WorkloadSpec::new(64, 32)
                .with_repeat_rate(want)
                .with_vectors(8)
                .with_seed(9)
                .generate();
            let got = measured_repeat_rate(&s);
            assert!((got - want).abs() < 0.08, "want {want}, got {got}");
        }
    }

    #[test]
    fn gaussian_concentrates_repeats() {
        let base = WorkloadSpec::new(64, 32)
            .with_repeat_rate(0.8)
            .with_vectors(8)
            .with_seed(3);
        let count_hot = |s: &TensorPairStream| {
            let mut counts: HashMap<TensorId, usize> = HashMap::new();
            for v in &s.vectors {
                for t in &v.tasks {
                    *counts.entry(t.a.id).or_default() += 1;
                    *counts.entry(t.b.id).or_default() += 1;
                }
            }
            // Max appearance count of any single tensor.
            counts.values().copied().max().unwrap_or(0)
        };
        let uniform = count_hot(
            &base
                .clone()
                .with_distribution(RepeatDistribution::Uniform)
                .generate(),
        );
        let gaussian = count_hot(
            &base
                .with_distribution(RepeatDistribution::Gaussian)
                .generate(),
        );
        assert!(
            gaussian > uniform,
            "gaussian hot count {gaussian} should exceed uniform {uniform}"
        );
    }

    #[test]
    fn outputs_are_unique_and_disjoint_from_inputs() {
        let s = WorkloadSpec::new(16, 32)
            .with_repeat_rate(0.9)
            .with_vectors(4)
            .generate();
        let mut outs = HashSet::new();
        for v in &s.vectors {
            for t in &v.tasks {
                assert!(outs.insert(t.out.id), "duplicate output id {:?}", t.out.id);
                assert!(t.out.id.0 >= 1 << 40);
                assert!(t.a.id.0 < 1 << 40);
            }
        }
    }

    #[test]
    #[should_panic(expected = "repeat rate")]
    fn invalid_rate_panics() {
        let _ = WorkloadSpec::new(4, 16).with_repeat_rate(1.5);
    }

    #[test]
    fn zipf_concentrates_harder_than_uniform_with_a_tail() {
        let base = WorkloadSpec::new(64, 32)
            .with_repeat_rate(0.8)
            .with_vectors(8)
            .with_seed(3);
        let counts = |s: &TensorPairStream| {
            let mut c: HashMap<TensorId, usize> = HashMap::new();
            for v in &s.vectors {
                for t in &v.tasks {
                    *c.entry(t.a.id).or_default() += 1;
                    *c.entry(t.b.id).or_default() += 1;
                }
            }
            c
        };
        let uniform = counts(
            &base
                .clone()
                .with_distribution(RepeatDistribution::Uniform)
                .generate(),
        );
        let zipf = counts(&base.with_distribution(RepeatDistribution::Zipf).generate());
        let max = |c: &HashMap<TensorId, usize>| c.values().copied().max().unwrap();
        assert!(
            max(&zipf) > max(&uniform),
            "zipf head {} must beat uniform {}",
            max(&zipf),
            max(&uniform)
        );
        // long tail: a decent number of distinct tensors still get hit
        assert!(
            zipf.len() > uniform.len() / 4,
            "zipf tail too short: {}",
            zipf.len()
        );
    }

    #[test]
    fn vector_size_choices_vary_per_vector() {
        let s = WorkloadSpec::new(8, 32)
            .with_vector_size_choices(vec![4, 16])
            .with_vectors(10)
            .with_seed(2)
            .generate();
        let sizes: HashSet<usize> = s.vectors.iter().map(|v| v.len()).collect();
        assert!(sizes.iter().all(|s| *s == 4 || *s == 16));
        assert_eq!(sizes.len(), 2, "both sizes should appear over 10 vectors");
    }

    #[test]
    fn heterogeneous_dims_per_vector() {
        let s = WorkloadSpec::new(8, 384)
            .with_dim_choices(vec![128, 256])
            .with_vectors(8)
            .with_seed(3)
            .generate();
        let mut dims_seen = HashSet::new();
        for v in &s.vectors {
            // all tasks within a vector share one dim
            let bytes: HashSet<u64> = v.tasks.iter().map(|t| t.a.bytes).collect();
            assert_eq!(bytes.len(), 1, "mixed dims within a vector");
            dims_seen.extend(bytes);
        }
        assert_eq!(dims_seen.len(), 2, "both dims should appear over 8 vectors");
    }

    #[test]
    fn heterogeneous_repeats_stay_shape_consistent() {
        let s = WorkloadSpec::new(16, 384)
            .with_dim_choices(vec![64, 128])
            .with_repeat_rate(1.0)
            .with_vectors(10)
            .with_seed(9)
            .generate();
        // every tensor id must always appear with the same byte size
        let mut size_of: HashMap<TensorId, u64> = HashMap::new();
        for v in &s.vectors {
            for t in &v.tasks {
                for d in [t.a, t.b] {
                    let prev = size_of.insert(d.id, d.bytes);
                    if let Some(p) = prev {
                        assert_eq!(p, d.bytes, "tensor {:?} changed size", d.id);
                    }
                }
            }
        }
    }

    #[test]
    fn display_of_distribution() {
        assert_eq!(RepeatDistribution::Uniform.to_string(), "Uniform");
        assert_eq!(RepeatDistribution::Gaussian.to_string(), "Gaussian");
    }
}
