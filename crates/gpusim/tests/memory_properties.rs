//! Property-based tests of the device memory manager and the machine's
//! conservation laws under random task sequences.

use proptest::prelude::*;

use micco_gpusim::{
    DeviceMemory, EvictionPolicy, GpuId, MachineConfig, MachineView, Provenance, SimMachine,
};
use micco_workload::{ContractionTask, TaskId, TensorDesc, TensorId};

#[derive(Debug, Clone)]
enum MemOp {
    Alloc {
        id: u64,
        bytes: u64,
        device_created: bool,
    },
    Touch {
        id: u64,
    },
    Discard {
        id: u64,
    },
    Unpin {
        id: u64,
    },
}

fn mem_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (0u64..40, 1u64..50, any::<bool>()).prop_map(|(id, bytes, device_created)| MemOp::Alloc {
            id,
            bytes,
            device_created
        }),
        (0u64..40).prop_map(|id| MemOp::Touch { id }),
        (0u64..40).prop_map(|id| MemOp::Discard { id }),
        (0u64..40).prop_map(|id| MemOp::Unpin { id }),
    ]
}

fn policy() -> impl Strategy<Value = EvictionPolicy> {
    prop_oneof![
        Just(EvictionPolicy::Lru),
        Just(EvictionPolicy::Fifo),
        Just(EvictionPolicy::LargestFirst),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any op sequence and any policy: used ≤ capacity, used equals
    /// the sum of resident bytes, and alloc never reports success while
    /// violating capacity.
    #[test]
    fn device_memory_invariants(
        ops in proptest::collection::vec(mem_op(), 1..120),
        policy in policy(),
        capacity in 50u64..200,
    ) {
        let mut m = DeviceMemory::new(capacity, policy);
        let mut resident_bytes: std::collections::HashMap<TensorId, u64> =
            std::collections::HashMap::new();
        for op in ops {
            match op {
                MemOp::Alloc { id, bytes, device_created } => {
                    let id = TensorId(id);
                    if m.holds(id) {
                        m.touch(id);
                        continue;
                    }
                    let prov = if device_created {
                        Provenance::DeviceCreated
                    } else {
                        Provenance::HostBacked
                    };
                    if let Ok(evicted) = m.allocate(id, bytes, prov) {
                        for ev in &evicted {
                            let removed = resident_bytes.remove(&ev.id);
                            prop_assert_eq!(removed, Some(ev.bytes), "evicted ghost tensor");
                        }
                        resident_bytes.insert(id, bytes);
                        // allocations arrive pinned; unpin later via op
                    }
                }
                MemOp::Touch { id } => m.touch(TensorId(id)),
                MemOp::Discard { id } => {
                    let id = TensorId(id);
                    let did = m.discard(id);
                    prop_assert_eq!(did, resident_bytes.remove(&id).is_some());
                }
                MemOp::Unpin { id } => m.set_pinned(TensorId(id), false),
            }
            prop_assert!(m.used() <= m.capacity(), "over capacity");
            let expect: u64 = resident_bytes.values().sum();
            prop_assert_eq!(m.used(), expect, "byte accounting drifted");
            prop_assert_eq!(m.resident_count(), resident_bytes.len());
        }
    }

    /// The machine's clocks are monotone, memory bounded, and stats
    /// consistent for arbitrary random placements.
    #[test]
    fn machine_conservation(
        placements in proptest::collection::vec((0u64..30, 0u64..30, 0usize..4, any::<bool>()), 1..80),
        policy in policy(),
    ) {
        const MB: u64 = 1 << 20;
        let cfg = MachineConfig {
            num_gpus: 4,
            mem_bytes: 8 * MB,
            cost: Default::default(),
            eviction: policy,
        };
        let mut machine = SimMachine::new(cfg);
        let mut prev_elapsed = 0.0f64;
        let mut executed = 0u64;
        for (i, (a, b, gpu, barrier)) in placements.into_iter().enumerate() {
            let t = ContractionTask {
                id: TaskId(i as u64),
                a: TensorDesc { id: TensorId(a), bytes: MB },
                b: TensorDesc { id: TensorId(b), bytes: MB },
                out: TensorDesc { id: TensorId(10_000 + i as u64), bytes: MB },
                flops: 1_000_000,
            };
            machine.execute(&t, GpuId(gpu)).expect("8 MB fits any 3 MB task");
            executed += 1;
            for g in 0..4 {
                prop_assert!(machine.mem_used(GpuId(g)) <= cfg.mem_bytes);
                prop_assert!(machine.device_time(GpuId(g)) >= 0.0);
                prop_assert!(machine.stage_busy_secs(GpuId(g)) >= 0.0);
            }
            if barrier {
                machine.barrier();
                let elapsed = machine.stats().elapsed_secs;
                prop_assert!(elapsed >= prev_elapsed, "clock went backwards");
                prev_elapsed = elapsed;
                // after a barrier all devices agree
                let t0 = machine.device_time(GpuId(0));
                for g in 1..4 {
                    prop_assert!((machine.device_time(GpuId(g)) - t0).abs() < 1e-12);
                }
            }
        }
        machine.barrier();
        let stats = machine.stats();
        prop_assert_eq!(stats.total_tasks(), executed);
        prop_assert_eq!(
            stats.total_h2d() + stats.total_d2d() + stats.total_reuse_hits(),
            2 * executed,
            "operand sourcing identity"
        );
        // busy time of any device never exceeds total elapsed
        for g in &stats.per_gpu {
            prop_assert!(g.busy_secs() <= stats.elapsed_secs + 1e-9);
        }
    }

    /// `bytes_needed`/`would_evict` agree with what execution then does:
    /// if `would_evict` is false, executing must not evict.
    #[test]
    fn would_evict_is_sound(
        placements in proptest::collection::vec((0u64..20, 0u64..20), 1..40),
    ) {
        const MB: u64 = 1 << 20;
        let cfg = MachineConfig::mi100_like(2).with_mem_bytes(10 * MB);
        let mut machine = SimMachine::new(cfg);
        machine.enable_trace();
        for (i, (a, b)) in placements.into_iter().enumerate() {
            let t = ContractionTask {
                id: TaskId(i as u64),
                a: TensorDesc { id: TensorId(a), bytes: MB },
                b: TensorDesc { id: TensorId(b), bytes: MB },
                out: TensorDesc { id: TensorId(30_000 + i as u64), bytes: MB },
                flops: 1,
            };
            let predicted = machine.would_evict(GpuId(0), &t);
            let before = machine.stats().total_evictions();
            machine.execute(&t, GpuId(0)).unwrap();
            let evicted = machine.stats().total_evictions() - before;
            if !predicted {
                prop_assert_eq!(evicted, 0, "predicted no eviction but evicted");
            } else {
                prop_assert!(evicted > 0, "predicted eviction but none happened");
            }
        }
    }
}
