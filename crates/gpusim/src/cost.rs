//! Machine configuration and the execution cost model.

/// Timing model of one simulated device and its interconnect.
///
/// Default figures are MI100/PCIe-4-like *ratios* — what matters for
/// reproducing the paper's curves is the relative weight of compute vs
/// memory operations, not absolute silicon speed (see DESIGN.md §6.4; a
/// sensitivity test perturbs these by 2× and checks orderings hold).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Sustained device throughput for batched complex GEMM, in GFLOP/s
    /// (MI100 peak FP32 is 23 TF; sustained batched complex GEMM lands
    /// near 10 TF).
    pub device_gflops: f64,
    /// Host→device bandwidth in GiB/s (PCIe x16 effective with pageable
    /// staging ≈ 12 GiB/s — memory operations dominate small-tensor
    /// contractions, as the paper observes in Sec. V-C).
    pub h2d_gib_s: f64,
    /// Device→device bandwidth in GiB/s (peer copies over the bridge).
    pub d2d_gib_s: f64,
    /// Fixed latency per transfer, in microseconds.
    pub transfer_latency_us: f64,
    /// Fixed latency per device allocation, in microseconds.
    pub alloc_latency_us: f64,
    /// Fixed latency per eviction (unmap + bookkeeping), in microseconds.
    pub evict_latency_us: f64,
    /// Whether device→device copies also occupy the source device's
    /// timeline (real peer DMA consumes source bandwidth). On by default;
    /// an ablation bench flips it off.
    pub d2d_charges_source: bool,
    /// Asynchronous data copy (the paper's future-work extension,
    /// Sec. VII): when on, each device has an independent DMA engine, so
    /// the transfers/allocations of the next contraction overlap with the
    /// current kernel; a kernel still waits for its own operands. Off by
    /// default — the paper's evaluated system is synchronous.
    pub async_copy: bool,
    /// Host-link contention: all devices share one host↔device
    /// interconnect, so concurrent H2D transfers serialise on it (each
    /// transfer also occupies a shared link timeline). Off by default to
    /// keep the per-device model easy to reason about; flipping it on makes
    /// memory operations even more dominant, widening every reuse gap.
    pub shared_h2d_link: bool,
    /// Staging-buffer depth for asynchronous copies. `0` means the DMA
    /// engine may run arbitrarily far ahead of the compute queue
    /// (unbounded lookahead — the idealised model). `k ≥ 1` models `k`
    /// staging buffers: the transfer for task `i` cannot start before the
    /// kernel of task `i - k` has finished, because its buffer is still in
    /// use (`k = 2` is classic double buffering). Ignored when
    /// `async_copy` is off.
    pub prefetch_tasks: usize,
}

impl CostModel {
    /// MI100-like default ratios.
    pub fn mi100_like() -> Self {
        CostModel {
            device_gflops: 10_000.0,
            h2d_gib_s: 12.0,
            d2d_gib_s: 25.0,
            transfer_latency_us: 10.0,
            alloc_latency_us: 5.0,
            evict_latency_us: 5.0,
            d2d_charges_source: true,
            async_copy: false,
            shared_h2d_link: false,
            prefetch_tasks: 0,
        }
    }

    /// The same model with host-link contention enabled.
    pub fn with_shared_h2d_link(mut self) -> Self {
        self.shared_h2d_link = true;
        self
    }

    /// The same model with asynchronous copies enabled.
    pub fn with_async_copy(mut self) -> Self {
        self.async_copy = true;
        self
    }

    /// The same model with a bounded staging window of `k` tasks for the
    /// DMA engine (`0` restores unbounded lookahead).
    pub fn with_prefetch_tasks(mut self, k: usize) -> Self {
        self.prefetch_tasks = k;
        self
    }

    /// Seconds to run a kernel of `flops` floating-point operations.
    #[inline]
    pub fn compute_secs(&self, flops: u64) -> f64 {
        flops as f64 / (self.device_gflops * 1e9)
    }

    /// Seconds for a host→device transfer of `bytes`.
    #[inline]
    pub fn h2d_secs(&self, bytes: u64) -> f64 {
        self.transfer_latency_us * 1e-6 + bytes as f64 / (self.h2d_gib_s * GIB)
    }

    /// Seconds for a device→device transfer of `bytes`.
    #[inline]
    pub fn d2d_secs(&self, bytes: u64) -> f64 {
        self.transfer_latency_us * 1e-6 + bytes as f64 / (self.d2d_gib_s * GIB)
    }

    /// Seconds to allocate `bytes` on the device.
    #[inline]
    pub fn alloc_secs(&self, _bytes: u64) -> f64 {
        self.alloc_latency_us * 1e-6
    }

    /// Seconds to evict a resident tensor. Device-created tensors
    /// (`writeback = true`) pay a device→host copy so the data survives.
    #[inline]
    pub fn evict_secs(&self, bytes: u64, writeback: bool) -> f64 {
        let base = self.evict_latency_us * 1e-6;
        if writeback {
            base + bytes as f64 / (self.h2d_gib_s * GIB)
        } else {
            base
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::mi100_like()
    }
}

pub(crate) const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Configuration of the whole simulated node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of devices.
    pub num_gpus: usize,
    /// Device memory capacity in bytes (per GPU).
    pub mem_bytes: u64,
    /// Shared timing model.
    pub cost: CostModel,
    /// Victim-selection policy under memory pressure.
    pub eviction: crate::memory::EvictionPolicy,
}

impl MachineConfig {
    /// The paper's platform: `n` MI100-like devices with 32 GiB each.
    pub fn mi100_like(num_gpus: usize) -> Self {
        assert!(num_gpus > 0, "need at least one GPU");
        MachineConfig {
            num_gpus,
            mem_bytes: 32 * (1u64 << 30),
            cost: CostModel::mi100_like(),
            eviction: crate::memory::EvictionPolicy::Lru,
        }
    }

    /// Override the per-device memory capacity.
    pub fn with_mem_bytes(mut self, bytes: u64) -> Self {
        self.mem_bytes = bytes;
        self
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Override the eviction policy.
    pub fn with_eviction(mut self, policy: crate::memory::EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// Size device memory so the given working set oversubscribes it by
    /// `rate` (e.g. `1.5` ⇒ the working set is 150 % of aggregate memory —
    /// the paper's Fig. 11 x-axis).
    pub fn with_oversubscription(mut self, working_set_bytes: u64, rate: f64) -> Self {
        assert!(rate > 0.0, "oversubscription rate must be positive");
        let aggregate = (working_set_bytes as f64 / rate).ceil() as u64;
        self.mem_bytes = (aggregate / self.num_gpus as u64).max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_secs_scales_linearly() {
        let c = CostModel::mi100_like();
        let t1 = c.compute_secs(1_000_000_000);
        let t2 = c.compute_secs(2_000_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
        // 10 TF device: 1 GF takes 0.1 ms
        assert!((t1 - 0.0001).abs() < 1e-9);
    }

    #[test]
    fn transfers_include_latency() {
        let c = CostModel::mi100_like();
        assert!(c.h2d_secs(0) > 0.0);
        assert!(c.d2d_secs(0) > 0.0);
        // d2d is faster than h2d for large payloads
        let big = 1 << 30;
        assert!(c.d2d_secs(big) < c.h2d_secs(big));
    }

    #[test]
    fn eviction_writeback_costs_more() {
        let c = CostModel::mi100_like();
        let bytes = 64 << 20;
        assert!(c.evict_secs(bytes, true) > c.evict_secs(bytes, false));
        assert!((c.evict_secs(bytes, false) - 5e-6).abs() < 1e-12);
    }

    #[test]
    fn mi100_config_defaults() {
        let m = MachineConfig::mi100_like(8);
        assert_eq!(m.num_gpus, 8);
        assert_eq!(m.mem_bytes, 32 << 30);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        let _ = MachineConfig::mi100_like(0);
    }

    #[test]
    fn oversubscription_sizing() {
        let ws = 100u64 << 20; // 100 MiB working set
        let m = MachineConfig::mi100_like(4).with_oversubscription(ws, 2.0);
        // aggregate memory = 50 MiB, per GPU = 12.5 MiB
        assert_eq!(m.mem_bytes, (ws / 2) / 4);
        // rate 1.0: working set just fits
        let m1 = MachineConfig::mi100_like(4).with_oversubscription(ws, 1.0);
        assert_eq!(m1.mem_bytes * 4, ws);
    }

    #[test]
    fn builder_overrides() {
        let m = MachineConfig::mi100_like(2)
            .with_mem_bytes(1024)
            .with_eviction(crate::memory::EvictionPolicy::Fifo);
        assert_eq!(m.mem_bytes, 1024);
        assert_eq!(m.eviction, crate::memory::EvictionPolicy::Fifo);
    }
}
